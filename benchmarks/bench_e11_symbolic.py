"""E11 — The symbolic (BDD) backend against the explicit engines.

Two workloads compare ``"bdd"`` with the explicit backends
(bitset/frozenset, and matrix when NumPy is present) through the
``engine_backend`` fixture, which enumerates ``available_backends()``:

* the e7 knowledge-evaluation workload — nested K/M over the two-agent
  observability grid — at 256 and 1024 worlds, the head-to-head the
  symbolic backend was built for: the grid's relations are observational
  equivalences over index bits, which compress to small relation BDDs, so
  the symbolic cost tracks BDD size rather than world count;
* a muddy-children guard table at ``n >= 10``: the round-0 view after the
  father's announcement (all ``2^n - 1`` muddiness patterns with at least
  one muddy child, built directly as an epistemic structure — the full
  variable context enumerates an intractable product space at this size),
  with every clause guard ``K_i muddy_i | K_i !muddy_i`` evaluated in one
  batched engine pass and decided per local-state class through
  ``local_guard_value`` — the interpretation-layer inner loop the paper's
  ``Pg^I`` functional runs round after round.

Both workloads assert the classical expected answers (at round 0 exactly
the ``k = 1`` children know their status), so the benchmark doubles as an
equivalence check at sizes the unit suite does not visit.
"""

import pytest

from repro.engine import Evaluator, backend_by_name, local_guard_value
from repro.kripke import structure_from_labels
from repro.logic import parse
from repro.protocols.muddy_children import child, knows_own_status

from bench_e7_model_checking import grid_structure


def muddy_round0_structure(n):
    """The epistemic structure of the muddy-children round-0 view: one world
    per muddiness pattern with at least one muddy child; child ``i``
    observes every ``muddy_j`` with ``j != i``."""
    labelling = {
        pattern: {f"muddy{i}" for i in range(n) if (pattern >> i) & 1}
        for pattern in range(1, 2**n)
    }
    observables = {
        child(i): {f"muddy{j}" for j in range(n) if j != i} for i in range(n)
    }
    return structure_from_labels(labelling, observables)


def muddy_guard_table(structure, n, backend):
    """Evaluate every child's clause guard in one batched pass and decide
    it per local-state (indistinguishability) class; returns the list of
    ``(agent, class size, guard value)`` entries."""
    evaluator = Evaluator(structure, backend)
    guards = [knows_own_status(i) for i in range(n)]
    evaluator.extensions(guards)  # one batched engine pass for all guards
    entries = []
    for i in range(n):
        agent = child(i)
        for cls in structure.equivalence_classes(agent):
            entries.append(
                (agent, len(cls), local_guard_value(evaluator, cls, guards[i]))
            )
    return entries


@pytest.mark.parametrize("bits", [8, 10])
def test_bench_symbolic_knowledge_eval(benchmark, table_report, engine_backend, bits):
    structure = grid_structure(bits)
    formula = parse("K[a] b0 & !K[a] b1 & M[b] (b1 & !b0)")
    backend = backend_by_name(engine_backend)

    # A fresh evaluator per round (the persistent one would answer from its
    # cache after the first round); the structure-level encodings and
    # relation BDDs stay memoised, matching how repeated queries behave.
    result = benchmark(lambda: Evaluator(structure, backend).extension(formula))
    reference = Evaluator(structure, backend_by_name("frozenset")).extension(formula)
    assert result == reference
    table_report(
        f"E11 symbolic knowledge evaluation ({2**bits} worlds, {engine_backend})",
        [(2**bits, len(result))],
        header=("worlds", "|extension|"),
    )


@pytest.mark.parametrize("n", [10])
def test_bench_muddy_children_guard_table(benchmark, table_report, engine_backend, n):
    structure = muddy_round0_structure(n)
    backend = backend_by_name(engine_backend)

    entries = benchmark(muddy_guard_table, structure, n, backend)
    # Round 0 after the announcement: a child knows its status iff it sees
    # nobody muddy (it is the single muddy one) — exactly n true entries,
    # one per child, each a singleton class; everyone else cannot know.
    known = [entry for entry in entries if entry[2] is True]
    assert len(known) == n
    assert all(size == 1 for _, size, _ in known)
    assert all(value is False for _, _, value in entries if value is not True)
    table_report(
        f"E11 muddy-children guard table (n={n}, {engine_backend})",
        [(n, 2**n - 1, len(entries))],
        header=("children", "worlds", "table entries"),
    )
