"""E2 — The variable-setting family: zero / one / several implementations.

Paper artefacts reproduced: the classification of each family member and the
reachable value sets of its implementations; the period-2 oscillation of
plain iteration on the cyclic program and its convergence on the
cycle-breaking variant.
"""

import pytest

from repro.interpretation import enumerate_implementations, iterate_interpretation
from repro.protocols import variable_setting as vs


@pytest.mark.parametrize("name", sorted(vs.PROGRAM_FAMILY))
def test_bench_search_classification(benchmark, table_report, name):
    context = vs.context()
    factory, expected = vs.PROGRAM_FAMILY[name]
    program = factory()
    result = benchmark(lambda: enumerate_implementations(program, context))
    assert result.classification == expected
    found = sorted(
        sorted(state["x"] for state in system.states) for _, system in result
    )
    table_report(
        f"E2 variable setting: {name}",
        [(name, result.classification, expected, found)],
        header=("program", "measured", "paper", "reachable x values"),
    )


def test_bench_cyclic_iteration_oscillates(benchmark):
    context = vs.context()
    program = vs.cyclic_program()
    result = benchmark(lambda: iterate_interpretation(program, context))
    assert not result.converged
    assert result.cycle_length == 2


def test_bench_cycle_breaking_iteration_converges(benchmark):
    context = vs.context()
    program = vs.cycle_breaking_program()
    result = benchmark(lambda: iterate_interpretation(program, context))
    assert result.converged
    assert {state["x"] for state in result.system.states} == {0, 1, 2}
