"""E6 — Cost of the fixed-point interpretation as the state space grows.

The workload is a parametric chain protocol: one agent advances a counter of
size ``n`` but can only observe a coarse view of it (the counter modulo 4);
a second, blind observer's knowledge guard controls an auxiliary flag.  The
experiment measures iterations and wall-clock of the interpretation as ``n``
grows, and checks the number of reachable states is linear in ``n``.
"""

import pytest

from repro.interpretation import iterate_interpretation
from repro.logic.formula import Knows, Prop, disj
from repro.modeling import StateSpace, boolean, ite, ranged, var
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems import variable_context


def chain_context(n):
    counter = ranged("c", 0, n)
    flag = boolean("flag")
    space = StateSpace([counter, flag])
    return variable_context(
        f"chain-{n}",
        space,
        observables={"walker": ["c"], "observer": ["flag"]},
        actions={
            "walker": {"step": {"c": ite(var(counter) < n, var(counter) + 1, var(counter))}},
            "observer": {"raise_flag": {"flag": True}},
        },
        initial=(var(counter) == 0) & (~var(flag)),
    )


def chain_program(n):
    walker = AgentProgram(
        "walker",
        [Clause(Knows("walker", disj([Prop(f"c={v}") for v in range(n)])), "step")],
    )
    # The blind observer raises the flag once it knows the walker has passed
    # the halfway mark — which it can only learn if the flag-free half-states
    # become unreachable, which never happens: the guard stays false and the
    # interpretation must discover that.
    observer = AgentProgram(
        "observer",
        [
            Clause(
                Knows("observer", disj([Prop(f"c={v}") for v in range(n // 2, n + 1)])),
                "raise_flag",
            )
        ],
    )
    return KnowledgeBasedProgram([walker, observer])


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_bench_fixed_point_scaling(benchmark, table_report, n):
    context = chain_context(n)
    program = chain_program(n)
    result = benchmark.pedantic(
        lambda: iterate_interpretation(program, context), rounds=1, iterations=1
    )
    assert result.converged
    # The observer never learns anything, so the flag stays down and the
    # reachable states are exactly the n+1 counter values.
    assert len(result.system) == n + 1
    table_report(
        f"E6 fixed-point scaling (n={n})",
        [(n, len(result.system), result.iterations)],
        header=("chain length", "|states|", "iterations"),
    )
