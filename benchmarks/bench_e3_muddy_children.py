"""E3 — Muddy children: with ``k`` muddy children all muddy ones answer *yes*
simultaneously in round ``k`` (and know in round ``k-1``); scaling of the
interpretation with the number of children.
"""

import pytest

from repro.protocols import muddy_children as mc


@pytest.mark.parametrize("n", [2, 3, 4])
def test_bench_interpretation_scaling(benchmark, table_report, engine_backend, n):
    result = benchmark.pedantic(lambda: mc.solve(n), rounds=1, iterations=1)
    assert result.converged
    rows = []
    for k in range(1, n + 1):
        pattern = tuple(i < k for i in range(n))
        rounds = mc.announcement_rounds(result.system, pattern)
        muddy_rounds = {rounds[i] for i in range(n) if pattern[i]}
        clean_rounds = {rounds[i] for i in range(n) if not pattern[i]}
        assert muddy_rounds == {k}
        assert clean_rounds <= {k + 1}
        rows.append((n, k, sorted(muddy_rounds), sorted(clean_rounds), len(result.system)))
    table_report(
        f"E3 muddy children (n={n})",
        rows,
        header=("n", "k muddy", "muddy announce round", "clean announce round", "|states|"),
    )


@pytest.mark.parametrize("n", [2, 3])
def test_bench_knowledge_round_check(benchmark, engine_backend, n):
    solution = mc.solve(n)

    def measure():
        results = {}
        for pattern in mc.all_patterns(n):
            results[pattern] = mc.knowledge_rounds(solution.system, pattern)
        return results

    results = benchmark(measure)
    for pattern, rounds in results.items():
        k = sum(pattern)
        for i, muddy in enumerate(pattern):
            assert rounds[i] == (k - 1 if muddy else k)
