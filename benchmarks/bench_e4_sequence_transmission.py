"""E4 — Sequence transmission: the knowledge-based specification and the
alternating-bit protocol.

Reproduced shape: the implementation of the knowledge-based program sends bit
``i`` exactly while the sender has not learnt that the receiver holds it
(sequential numbering); the alternating-bit protocol satisfies the safety
property (the received string is always a prefix of the sent one) and can
always complete, and receiving a matching acknowledgement gives the sender
knowledge.
"""

import pytest

from repro.logic.formula import Prop
from repro.protocols import sequence_transmission as st
from repro.temporal import AG, EF, CTLKModelChecker


@pytest.mark.parametrize("length", [1, 2, 3])
def test_bench_kb_interpretation(benchmark, table_report, length):
    result = benchmark.pedantic(lambda: st.solve_kb(length), rounds=1, iterations=1)
    assert result.converged
    context = result.system.context
    for state in result.system.states:
        actions = result.protocol.actions(st.SENDER, context.local_state(st.SENDER, state))
        if state.sacked < length:
            assert actions == frozenset({st.send_action(state.sacked)})
    table_report(
        f"E4 sequence transmission KB (m={length})",
        [(length, len(result.system), result.iterations)],
        header=("message length", "|states|", "iterations"),
    )


@pytest.mark.parametrize("length", [1, 2, 3])
def test_bench_abp_generation_and_safety(benchmark, table_report, length):
    def build_and_check():
        system = st.abp_system(length)
        checker = CTLKModelChecker(system)
        return (
            system,
            checker.valid(AG(st.prefix_ok_formula())),
            checker.valid(EF(Prop("all_received"))),
        )

    system, safe, live = benchmark.pedantic(build_and_check, rounds=1, iterations=1)
    assert safe and live
    table_report(
        f"E4 alternating bit (m={length})",
        [(length, len(system), safe, live)],
        header=("message length", "|states|", "AG prefix_ok", "EF all_received"),
    )
