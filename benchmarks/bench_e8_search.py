"""E8 — Exhaustive implementation search: classifying programs with none, a
unique, or several implementations, and how the search scales with the size
of the global state space.
"""

import pytest

from repro.interpretation import enumerate_implementations
from repro.logic.formula import Knows, Prop, disj
from repro.modeling import StateSpace, ranged, var
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.protocols import variable_setting as vs
from repro.systems import variable_context


def test_bench_family_search(benchmark, table_report):
    context = vs.context()

    def classify_all():
        return {
            name: enumerate_implementations(factory(), context).classification
            for name, (factory, _) in vs.PROGRAM_FAMILY.items()
        }

    classes = benchmark(classify_all)
    expected = {name: expected for name, (_, expected) in vs.PROGRAM_FAMILY.items()}
    assert classes == expected
    table_report(
        "E8 implementation search over the variable-setting family",
        sorted(classes.items()),
        header=("program", "classification"),
    )


def _wide_setting(domain_size):
    """A one-agent setting over ``x in 0..domain_size``: the blind agent may
    set any non-zero value ``v`` as long as it knows ``x`` is none of the
    *other* non-zero values (the many-valued generalisation of the paper's
    cyclic example, which has one implementation per value)."""
    x = ranged("x", 0, domain_size)
    space = StateSpace([x])
    context = variable_context(
        f"wide-{domain_size}",
        space,
        observables={"a": []},
        actions={"a": {f"set{v}": {"x": v} for v in range(1, domain_size + 1)}},
        initial=(var(x) == 0),
    )
    clauses = []
    for v in range(1, domain_size + 1):
        others_excluded = None
        for w in range(1, domain_size + 1):
            if w == v:
                continue
            term = var(x) != w
            others_excluded = term if others_excluded is None else (others_excluded & term)
        clauses.append(Clause(Knows("a", others_excluded.to_formula()), f"set{v}"))
    program = KnowledgeBasedProgram([AgentProgram("a", clauses)])
    return context, program


@pytest.mark.parametrize("domain_size", [3, 5, 7])
def test_bench_search_scaling(benchmark, table_report, domain_size):
    context, program = _wide_setting(domain_size)
    result = benchmark.pedantic(
        lambda: enumerate_implementations(program, context, max_free_states=domain_size),
        rounds=1,
        iterations=1,
    )
    # Exactly one value can be justified at a time, and leaving every value
    # unreachable is self-defeating, so there is one implementation per value.
    assert result.classification == "multiple"
    assert len(result.implementations) == domain_size
    table_report(
        f"E8 search scaling (domain {domain_size})",
        [(domain_size, result.candidates_checked, len(result.implementations))],
        header=("non-zero values", "candidates", "implementations"),
    )
