"""E10 — Batched multi-guard evaluation.

The inner loop of knowledge-based-program interpretation evaluates many
modal guards against the same agent relations.  This workload measures the
scalar path (one engine pass per guard through a shared evaluator) against
the batched path (``Evaluator.extensions``: epistemic operands grouped per
operator and agent and dispatched through the backend ``*_many`` calls) on
guard suites shaped like program clause guards, over observability
structures of 256 and 1024 worlds.

On the matrix backend the batched path stacks all same-relation operands as
columns of one bit-packed matrix, so ``k`` guards cost one traversal of the
relation instead of ``k``; on bitset/frozenset the generic scalar-loop
fallback makes both paths equivalent (measured here to confirm the batch
API adds no overhead).
"""

import pytest

from repro.engine import Evaluator, backend_by_name
from repro.logic.formula import And, Knows, Not, Or, Possible, Prop

from bench_e7_model_checking import grid_structure


def guard_suite(bits):
    """A guard-heavy suite: four modal guards per bit (``4 * bits`` total),
    all against the two agents' observability relations."""
    guards = []
    for i in range(bits):
        p = Prop(f"b{i}")
        q = Prop(f"b{(i + 1) % bits}")
        guards.append(Knows("a", p))
        guards.append(Knows("a", Or((p, q))))
        guards.append(Possible("b", And((p, Not(q)))))
        guards.append(Knows("b", Not(p)))
    return guards


@pytest.mark.parametrize("bits", [8, 10])
def test_bench_guard_eval_scalar(benchmark, table_report, engine_backend, bits):
    structure = grid_structure(bits)
    guards = guard_suite(bits)
    backend = backend_by_name(engine_backend)

    # A fresh evaluator per round (the persistent one would answer from its
    # cache after the first round); subformulas shared between guards are
    # still only computed once, as in the interpretation loops.
    def scalar():
        evaluator = Evaluator(structure, backend)
        return [evaluator.extension(guard) for guard in guards]

    result = benchmark(scalar)
    assert len(result) == len(guards)
    table_report(
        f"E10 scalar guard evaluation ({2**bits} worlds, {engine_backend})",
        [(2**bits, len(guards))],
        header=("worlds", "guards"),
    )


@pytest.mark.parametrize("bits", [8, 10])
def test_bench_guard_eval_batched(benchmark, table_report, engine_backend, bits):
    structure = grid_structure(bits)
    guards = guard_suite(bits)
    backend = backend_by_name(engine_backend)

    def batched():
        return Evaluator(structure, backend).extensions(guards)

    result = benchmark(batched)
    # The batched path must agree with the scalar path exactly.
    evaluator = Evaluator(structure, backend)
    assert result == [evaluator.extension(guard) for guard in guards]
    table_report(
        f"E10 batched guard evaluation ({2**bits} worlds, {engine_backend})",
        [(2**bits, len(guards))],
        header=("worlds", "guards"),
    )
