"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment of EXPERIMENTS.md (the
paper's worked examples, plus scaling studies of the algorithms the paper
leaves implicit).  Every module both *measures* (via pytest-benchmark) and
*checks* the qualitative shape the paper reports, so a benchmark run doubles
as a reproduction run.
"""

import pytest


def report(title, rows, header=None):
    """Print a small aligned table into the captured benchmark output."""
    lines = [f"\n== {title} =="]
    if header:
        lines.append(" | ".join(str(cell) for cell in header))
    for row in rows:
        lines.append(" | ".join(str(cell) for cell in row))
    print("\n".join(lines))


@pytest.fixture(scope="session")
def table_report():
    return report
