"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment of EXPERIMENTS.md (the
paper's worked examples, plus scaling studies of the algorithms the paper
leaves implicit).  Every module both *measures* (via pytest-benchmark) and
*checks* the qualitative shape the paper reports, so a benchmark run doubles
as a reproduction run.
"""

import pytest

from repro.engine import available_backends, use_backend


@pytest.fixture(params=available_backends())
def engine_backend(request):
    """Run the benchmark once per *registered, available* world-set backend.

    The parameter list is taken from the live registry, so a newly
    registered backend (e.g. ``matrix`` when NumPy is installed) is measured
    automatically, and optional-dependency backends drop out cleanly when
    their dependency is missing.  The fixture switches the process-default
    backend for the duration of the test, so every structure/evaluator the
    workload creates routes through the parametrised backend; it also
    returns the backend name for workloads that construct evaluators
    explicitly.  Benchmark ids gain a ``[bitset]``/``[frozenset]``/...
    suffix, which makes the relative speed of the engines visible directly
    in CI output.
    """
    with use_backend(request.param):
        yield request.param


def report(title, rows, header=None):
    """Print a small aligned table into the captured benchmark output."""
    lines = [f"\n== {title} =="]
    if header:
        lines.append(" | ".join(str(cell) for cell in header))
    for row in rows:
        lines.append(" | ".join(str(cell) for cell in row))
    print("\n".join(lines))


@pytest.fixture(scope="session")
def table_report():
    return report
