"""E13 — Symbolic temporal-epistemic checking and dynamic reordering.

PR 6 closes the symbolic pipeline: CTLK model checking now runs as BDD
pre-image fixed points over the compiled transition relation of a
symbolically constructed system, and the ROBDD kernel can re-sift its
variable order while the diagrams grow.  Three studies:

* **Muddy children at symbolic-only sizes** (``n ∈ {10, 14, 20}``;
  ``StateSpace.size() ≈ 5·10^14`` at ``n = 20``): construct the
  implementation and check the classical temporal-epistemic battery —
  everyone eventually answers, answering *yes* is knowing, and the father's
  announcement is common knowledge throughout.  The explicit checker cannot
  enumerate any of these systems.

* **Dining-cryptographers rings** (a second shape of workload: XOR
  announcements around a ring): anonymity and common knowledge of "someone
  paid" as ``AG``-formulas over the one-round system, under the good
  (per-position interleaved) variable order.

* **Dynamic reordering on an adversarial order**: the same ring compiled
  under :func:`~repro.protocols.dining_cryptographers.blocked_variable_order`
  (all ``say`` bits above the coins they depend on) with sifting off
  vs. on.  Without reordering the run allocates ~4x the nodes and the
  checking phase dominates end-to-end time ~5x; one growth-triggered sift
  recovers the interleaved order mid-construction.  The recorded
  ``peak_nodes`` (total unique-table allocations, a high-water measure)
  make the effect visible in the committed ``BENCH_6.json``.

Every workload asserts its qualitative answers, so the benchmark doubles as
a correctness check at sizes the unit suite only touches once.
"""

import pytest

from repro.interpretation import construct_by_rounds
from repro.logic.formula import And, CommonKnows, Implies, Knows, Not, Prop, disj
from repro.protocols import dining_cryptographers as dc
from repro.protocols import muddy_children as mc
from repro.temporal import AF, AG
from repro.temporal.ctlk import CTLKModelChecker
from repro.temporal.symbolic import SymbolicCTLKModelChecker

#: Reachable states of the dining-cryptographers system by ring size: the
#: ``n + 1`` payer choices x ``2^n`` coin patterns, before and after the
#: simultaneous announcement round.
EXPECTED_DINING_STATES = {8: 4608, 10: 22528}


def _muddy_ctlk(n):
    """Construct muddy-children ``n`` symbolically and check the classical
    temporal-epistemic properties; returns observability metrics."""
    model = mc.symbolic_model(n)
    result = construct_by_rounds(mc.program(n).check_against_context(model), model)
    assert result.verified is True
    checker = CTLKModelChecker(result.system)
    assert isinstance(checker, SymbolicCTLKModelChecker)
    group = tuple(mc.child(i) for i in range(n))
    said_all = disj([mc.said_prop(i) for i in range(n)])
    someone_muddy = disj([mc.muddy_prop(i) for i in range(n)])
    # Everyone eventually answers yes, on every path.
    assert checker.valid(AF(said_all))
    # Answering yes means knowing one's own status.
    assert checker.valid(AG(Implies(mc.said_prop(0), mc.knows_own_status(0))))
    # The father's announcement stays common knowledge forever.
    assert checker.valid(AG(CommonKnows(group, someone_muddy)))
    info = model.encoding.bdd.cache_info()
    return {
        "states": result.system.state_count(),
        "peak_nodes": info["nodes"],
        "reorders": info["reorder_stats"]["reorders"],
    }


def _dining_ctlk(n, blocked=False, reorder=False, threshold=2048):
    """Construct the dining-cryptographers ring symbolically and check the
    protocol's temporal-epistemic properties; returns observability
    metrics.  ``blocked`` compiles under the adversarial variable order,
    ``reorder`` arms growth-triggered sifting."""
    order = dc.blocked_variable_order(n) if blocked else None
    model = dc.symbolic_model(n, variable_order=order)
    if reorder:
        model.encoding.bdd.enable_reordering(
            groups=model.encoding.reorder_groups(), threshold=threshold
        )
    result = construct_by_rounds(dc.program(n).check_against_context(model), model)
    assert result.verified is True
    assert result.system.state_count() == EXPECTED_DINING_STATES[n]
    checker = CTLKModelChecker(result.system)
    group = tuple(dc.crypto(i) for i in range(n))
    someone = dc.someone_paid_formula(n)
    done = Prop("done")
    # The announcement round always completes.
    assert checker.valid(AF(done))
    # Afterwards, a paid dinner is common knowledge...
    assert checker.valid(
        AG(Implies(And((done, someone)), CommonKnows(group, someone)))
    )
    # ...yet the payer stays anonymous to every other cryptographer.
    assert checker.valid(
        AG(Implies(And((done, dc.paid_prop(0))), Not(Knows(dc.crypto(1), dc.paid_prop(0)))))
    )
    # And paying is possible in the first place.
    assert checker.reachable(And((done, dc.paid_prop(0))))
    info = model.encoding.bdd.cache_info()
    return {
        "states": result.system.state_count(),
        "peak_nodes": info["nodes"],
        "reorders": info["reorder_stats"]["reorders"],
    }


@pytest.mark.parametrize("n", [10, 14])
def test_bench_muddy_symbolic_ctlk(benchmark, table_report, n):
    metrics = benchmark(lambda: _muddy_ctlk(n))
    table_report(
        f"E13 symbolic CTLK over muddy children (n={n})",
        [(n, metrics["states"], metrics["peak_nodes"])],
        header=("children", "reachable", "peak nodes"),
    )


@pytest.mark.parametrize("n", [8, 10])
def test_bench_dining_ring_ctlk(benchmark, table_report, n):
    metrics = benchmark(lambda: _dining_ctlk(n))
    assert metrics["states"] == EXPECTED_DINING_STATES[n]
    table_report(
        f"E13 symbolic CTLK over the dining ring (n={n})",
        [(n, metrics["states"], metrics["peak_nodes"])],
        header=("cryptographers", "reachable", "peak nodes"),
    )


def test_bench_adversarial_order_with_sifting(benchmark, table_report):
    metrics = benchmark(lambda: _dining_ctlk(8, blocked=True, reorder=True))
    assert metrics["reorders"] >= 1
    baseline = _dining_ctlk(8, blocked=True, reorder=False)
    good = _dining_ctlk(8, blocked=False, reorder=False)
    # Sifting recovers most of the node budget the blocked order wastes.
    assert metrics["peak_nodes"] < baseline["peak_nodes"]
    table_report(
        "E13 dynamic reordering on the blocked dining order (n=8)",
        [
            ("blocked, no reorder", baseline["peak_nodes"], baseline["reorders"]),
            ("blocked, sifting", metrics["peak_nodes"], metrics["reorders"]),
            ("ring order (reference)", good["peak_nodes"], good["reorders"]),
        ],
        header=("configuration", "peak nodes", "reorders"),
    )


def test_bench_adversarial_order_without_sifting(benchmark):
    metrics = benchmark(lambda: _dining_ctlk(8, blocked=True, reorder=False))
    assert metrics["reorders"] == 0
