"""E14 — Symbolic implementation synthesis: the search/check layer on BDDs.

PR 7 moves the last enumerating subsystem — ``check_implementation`` and
``enumerate_implementations``/``search`` — onto the symbolic substrate:
the fixed-point test ``P = Pg^{I_rep(P)}`` compares candidate and derived
protocols by canonical class-BDD node ids over the candidate's reachable
set, and the exhaustive search enumerates candidate reachable sets as BDDs
restricted to the liberal-reachable universe.  Three studies:

* **Fixed-point check, explicit vs symbolic, muddy children ``n = 7``**:
  both carriers verify the round-constructed implementation; the explicit
  check re-enumerates the 1,143-state system and tabulates every local
  state, the symbolic check is a relational-image sweep plus one
  ``enabled_sets`` comparison per agent (two orders of magnitude faster
  here).

* **Symbolic check past explicit reach (``n ∈ {10, 12}``)**: at ``n = 10``
  the explicit path needs >2 minutes just to construct the system
  (measured once outside the harness: 131 s), while the symbolic check
  confirms the 12,276-state implementation in well under a second — the
  acceptance-scale workload, recorded with its state and node counts.

* **Symbolic search**: classifying the whole variable-setting family
  (``contradictory``/``unique``/``multiple`` — the explicit partner is the
  long-standing ``e8_implementation_search``) and synthesising the unique
  bit-transmission implementation, where the liberal-reachable candidate
  universe (6 non-initial states, 64 candidates) replaces the explicit
  sweep of all ``2^14`` subsets of the global state space (a ~10 s
  search).

Every workload asserts its qualitative answers, so the benchmark doubles
as a correctness check at sizes the unit suite only touches once.
"""

import time

import pytest

from repro.interpretation import (
    check_implementation,
    construct_by_rounds,
    enumerate_implementations,
)
from repro.protocols import bit_transmission as bt
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs

#: Reachable states of the muddy-children implementation, by n (see
#: bench_e12_symbolic_construction for the counting argument).
EXPECTED_STATES = {7: 1143, 10: 12276, 12: 57330}


def _explicit_candidate(n):
    """Construct the muddy-children implementation explicitly (verification
    deferred to the timed check)."""
    program = mc.program(n)
    context = mc.context(n)
    result = construct_by_rounds(program, context, verify=False)
    return result.protocol, program, context


def _symbolic_candidate(n):
    """Construct the implementation symbolically on a fresh model
    (verification deferred to the timed check)."""
    model = mc.symbolic_model(n)
    program = mc.program(n).check_against_context(model)
    result = construct_by_rounds(program, model, verify=False)
    return result.protocol, program, model


def _checked(candidate, n):
    """Run the fixed-point check on a candidate triple, asserting the
    verdict and the system size; returns observability metrics."""
    protocol, program, context = candidate
    start = time.perf_counter()
    report = check_implementation(protocol, program, context)
    elapsed = time.perf_counter() - start
    assert report.is_implementation
    states = (
        report.system.state_count()
        if hasattr(report.system, "state_count")
        else len(report.system)
    )
    assert states == EXPECTED_STATES[n]
    return {"states": states, "check_seconds": elapsed}


def test_bench_explicit_check(benchmark, table_report):
    n = 7
    metrics = benchmark.pedantic(
        lambda: _checked(_explicit_candidate(n), n), rounds=2, iterations=1
    )
    table_report(
        f"E14 explicit fixed-point check (muddy n={n})",
        [(n, metrics["states"], f"{metrics['check_seconds'] * 1000:.1f}")],
        header=("children", "reachable", "check ms"),
    )


@pytest.mark.parametrize("n", [7, 10, 12])
def test_bench_symbolic_check(benchmark, table_report, n):
    metrics = benchmark.pedantic(
        lambda: _checked(_symbolic_candidate(n), n), rounds=2, iterations=1
    )
    table_report(
        f"E14 symbolic fixed-point check (muddy n={n})",
        [(n, metrics["states"], f"{metrics['check_seconds'] * 1000:.1f}")],
        header=("children", "reachable", "check ms"),
    )


def test_bench_symbolic_search_family(benchmark, table_report):
    def classify_all():
        return {
            name: enumerate_implementations(factory(), vs.symbolic_model()).classification
            for name, (factory, _) in vs.PROGRAM_FAMILY.items()
        }

    classes = benchmark(classify_all)
    assert classes == {name: expected for name, (_, expected) in vs.PROGRAM_FAMILY.items()}
    table_report(
        "E14 symbolic implementation search over the variable-setting family",
        sorted(classes.items()),
        header=("program", "classification"),
    )


def test_bench_symbolic_search_bit_transmission(benchmark, table_report):
    def synthesise():
        return enumerate_implementations(bt.program(), bt.symbolic_model())

    result = benchmark(synthesise)
    assert result.classification == "unique"
    _, system = result.unique()
    assert system.state_count() == 6
    table_report(
        "E14 symbolic synthesis of the bit-transmission protocol",
        [(result.candidates_checked, 2 ** 14, system.state_count())],
        header=("candidates (symbolic)", "candidates (explicit)", "reachable"),
    )
