"""E7 — Cost of epistemic and temporal-epistemic model checking as the
structure grows.

Workloads: (a) pure knowledge evaluation (nested K, common knowledge) over
observability structures of growing size; (b) CTLK checking over the
alternating-bit systems.
"""

import pytest

from repro.engine import Evaluator, backend_by_name
from repro.kripke import structure_from_labels
from repro.logic import parse
from repro.protocols import sequence_transmission as st
from repro.temporal import AG, EF, CTLKModelChecker


def grid_structure(bits):
    """An observability structure over ``2^bits`` worlds: agent ``a`` sees the
    even-indexed bits, agent ``b`` the odd-indexed ones."""
    worlds = range(2 ** bits)
    labelling = {
        w: {f"b{i}" for i in range(bits) if (w >> i) & 1} for w in worlds
    }
    observables = {
        "a": {f"b{i}" for i in range(0, bits, 2)},
        "b": {f"b{i}" for i in range(1, bits, 2)},
    }
    return structure_from_labels(labelling, observables)


@pytest.mark.parametrize("bits", [6, 8, 10])
def test_bench_knowledge_evaluation(benchmark, table_report, engine_backend, bits):
    structure = grid_structure(bits)
    formula = parse("K[a] b0 & !K[a] b1 & M[b] (b1 & !b0)")
    backend = backend_by_name(engine_backend)

    # A fresh evaluator per round: the persistent per-structure evaluator
    # would otherwise answer every round after the first from its cache.
    result = benchmark(lambda: Evaluator(structure, backend).extension(formula))
    assert isinstance(result, frozenset)
    table_report(
        f"E7 knowledge evaluation ({2**bits} worlds, {engine_backend})",
        [(2 ** bits, len(result))],
        header=("worlds", "|extension|"),
    )


@pytest.mark.parametrize("bits", [6, 8])
def test_bench_common_knowledge(benchmark, engine_backend, bits):
    structure = grid_structure(bits)
    formula = parse("C[a,b] (b0 | !b0)")
    backend = backend_by_name(engine_backend)
    result = benchmark(lambda: Evaluator(structure, backend).extension(formula))
    assert len(result) == 2 ** bits


@pytest.mark.parametrize("length", [2, 3])
def test_bench_ctlk_checking(benchmark, table_report, engine_backend, length):
    system = st.abp_system(length)
    formulas = [
        AG(st.prefix_ok_formula()),
        EF(st.sender_knows_received(0)),
        AG(st.sender_knows_received(0) | ~st.sender_knows_received(0)),
    ]

    def check():
        checker = CTLKModelChecker(system)
        return [checker.valid(formula) for formula in formulas]

    values = benchmark(check)
    assert values[0] is True and values[1] is True and values[2] is True
    table_report(
        f"E7 CTLK over alternating bit (m={length})",
        [(length, len(system), values)],
        header=("message length", "|states|", "validities"),
    )
