"""E5 — The uniqueness-condition chain: synchrony => witnesses => dependence
on the past => at most one implementation, evaluated on every example system.
"""

from repro.interpretation import (
    enumerate_implementations,
    sufficient_conditions_report,
)
from repro.protocols import bit_transmission as bt
from repro.protocols import muddy_children as mc
from repro.protocols import unexpected_examination as ue
from repro.protocols import variable_setting as vs


def test_bench_condition_chain_across_examples(benchmark, table_report):
    workloads = {
        "bit transmission": (bt.program(), bt.context(), bt.solve("iterate").system),
        "muddy children (n=3)": (mc.program(3), mc.context(3), mc.solve(3).system),
        "unexpected examination": (ue.program(), ue.context(), ue.solve().system),
    }

    def evaluate():
        return {
            name: sufficient_conditions_report(program, context, [system])
            for name, (program, context, system) in workloads.items()
        }

    reports = benchmark(evaluate)
    rows = []
    for name, report in reports.items():
        rows.append(
            (
                name,
                report["synchronous"],
                report["provides_witnesses"],
                report["depends_on_past"],
            )
        )
    # Paper shape: bit transmission provides witnesses but is asynchronous;
    # the synchronous examples satisfy the whole chain.
    assert reports["bit transmission"]["synchronous"] is False
    assert reports["bit transmission"]["provides_witnesses"] is True
    assert reports["muddy children (n=3)"]["synchronous"] is True
    assert reports["unexpected examination"]["synchronous"] is True
    table_report(
        "E5 uniqueness conditions",
        rows,
        header=("system", "synchronous", "witnesses", "depends on past"),
    )


def test_bench_conditions_fail_for_cyclic_program(benchmark, table_report):
    context = vs.context()
    program = vs.cyclic_program()

    def evaluate():
        from repro.interpretation import depends_on_past
        from repro.systems import represent

        systems = [
            represent(context, protocol)
            for protocol, _ in enumerate_implementations(program, context)
        ]
        return systems, depends_on_past(program, systems)

    systems, past = benchmark(evaluate)
    assert len(systems) == 2
    assert past is False
    table_report(
        "E5 cyclic variable setting",
        [("cyclic", len(systems), past)],
        header=("program", "#implementations", "depends on past"),
    )
