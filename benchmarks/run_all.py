#!/usr/bin/env python
"""Run the benchmark workloads once per backend and emit a JSON perf summary.

This is the driver future PRs use to track the performance trajectory
without the pytest-benchmark machinery: each workload is timed with
``time.perf_counter`` (best of ``--repeats`` runs) for every registered
world-set backend, and the results are written as a single JSON document.

Usage::

    python benchmarks/run_all.py                  # print JSON to stdout
    python benchmarks/run_all.py -o perf.json     # write to a file
    python benchmarks/run_all.py --repeats 5 --backends bitset

The workload sizes are the largest tier of the corresponding ``bench_e*``
modules, kept small enough that a full run stays under a minute per backend.
"""

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro import obs  # noqa: E402
from repro.engine import available_backends, use_backend  # noqa: E402
from repro.obs import registry as obs_registry  # noqa: E402
from repro.obs.sinks import AggregateSink  # noqa: E402


def _workloads():
    """Return ``[(name, setup, run)]`` or ``[(name, setup, run, backends)]``
    entries; ``setup`` builds shared inputs once per backend, ``run`` is the
    timed body, and the optional ``backends`` tuple restricts the workload
    to specific backends (for workloads that pin their own engine, like the
    symbolic construction, measuring them once is enough)."""
    from bench_e7_model_checking import grid_structure
    from repro.engine import Evaluator, get_default_backend
    from repro.interpretation import enumerate_implementations, iterate_interpretation
    from repro.logic import parse
    from repro.protocols import muddy_children as mc
    from repro.protocols import sequence_transmission as st
    from repro.protocols import variable_setting as vs
    from repro.temporal import AG, EF, CTLKModelChecker

    def e3_setup():
        return None

    def e3_run(_):
        result = mc.solve(3)
        assert result.converged

    def e6_setup():
        from bench_e6_fixed_point import chain_context, chain_program

        return chain_context(32), chain_program(32)

    def e6_run(inputs):
        context, program = inputs
        result = iterate_interpretation(program, context)
        assert result.converged

    def e7_knowledge_setup():
        return grid_structure(10), parse("K[a] b0 & !K[a] b1 & M[b] (b1 & !b0)")

    def e7_knowledge_run(inputs):
        structure, formula = inputs
        Evaluator(structure, get_default_backend()).extension(formula)

    def e7_common_setup():
        return grid_structure(8), parse("C[a,b] (b0 | !b0)")

    def e7_ctlk_setup():
        system = st.abp_system(3)
        formulas = [
            AG(st.prefix_ok_formula()),
            EF(st.sender_knows_received(0)),
        ]
        return system, formulas

    def e7_ctlk_run(inputs):
        system, formulas = inputs
        checker = CTLKModelChecker(system)
        assert all(checker.valid(formula) for formula in formulas)

    def e8_setup():
        return vs.context()

    def e8_run(context):
        for _, (factory, expected) in sorted(vs.PROGRAM_FAMILY.items()):
            assert enumerate_implementations(factory(), context).classification == expected

    from bench_e10_batched_guards import guard_suite

    def e10_setup_256():
        return grid_structure(8), guard_suite(8)

    def e10_setup_1024():
        return grid_structure(10), guard_suite(10)

    def e10_scalar_run(inputs):
        structure, guards = inputs
        evaluator = Evaluator(structure, get_default_backend())
        for guard in guards:
            evaluator.extension(guard)

    def e10_batched_run(inputs):
        structure, guards = inputs
        Evaluator(structure, get_default_backend()).extensions(guards)

    from bench_e11_symbolic import muddy_guard_table, muddy_round0_structure

    def e11_setup():
        return muddy_round0_structure(10)

    def e11_run(structure):
        entries = muddy_guard_table(structure, 10, get_default_backend())
        assert sum(1 for entry in entries if entry[2] is True) == 10

    # E12 — enumeration-free symbolic construction.  The symbolic workloads
    # pin the "bdd" engine internally (no other engine can avoid
    # enumeration), so they are measured under that backend only; the
    # explicit head-to-head partner runs under bitset, the fast explicit
    # default.
    from bench_e12_symbolic_construction import EXPECTED_STATES, _check, _solve_symbolic

    def e12_explicit_run(_):
        result = mc.solve(7)
        assert result.verified and len(result.system.states) == EXPECTED_STATES[7]

    def e12_symbolic_run_for(n):
        def run(_):
            result, _model = _solve_symbolic(n)
            _check(result, n)

        return run

    # E13 — symbolic CTLK checking end-to-end, plus the dynamic-reordering
    # legs on the adversarial dining-cryptographers order.  Like E12, the
    # workloads pin the "bdd" engine internally; their returned metrics
    # (peak node allocations, reorder counts) land in the JSON next to the
    # timings, so the committed snapshot shows sifting's node reduction.
    from bench_e13_symbolic_ctlk import _dining_ctlk, _muddy_ctlk

    def e13_muddy_run_for(n):
        return lambda _: _muddy_ctlk(n)

    def e13_dining_run_for(n, **kwargs):
        return lambda _: _dining_ctlk(n, **kwargs)

    # E14 — symbolic implementation synthesis.  Each check workload builds a
    # fresh model and implementation and runs the fixed-point test against
    # it (the timed body is construct + check; the check's own share lands
    # in the metrics).  The explicit partner runs under bitset at n=7 — the
    # largest size where it finishes in seconds; n in {10, 12} is symbolic
    # territory only.  The symbolic search partner of
    # e8_implementation_search classifies the same program family on BDD
    # candidates.
    from bench_e14_symbolic_synthesis import (
        _checked,
        _explicit_candidate,
        _symbolic_candidate,
    )
    from repro.protocols import bit_transmission as bt

    def e14_explicit_check_run(_):
        return _checked(_explicit_candidate(7), 7)

    def e14_symbolic_check_run_for(n):
        return lambda _: _checked(_symbolic_candidate(n), n)

    def e14_symbolic_family_run(_):
        for name, (factory, expected) in sorted(vs.PROGRAM_FAMILY.items()):
            result = enumerate_implementations(factory(), vs.symbolic_model())
            assert result.classification == expected

    def e14_symbolic_bt_search_run(_):
        result = enumerate_implementations(bt.program(), bt.symbolic_model())
        assert result.classification == "unique"
        return {"candidates": result.candidates_checked}

    # E15 — the declarative spec layer and the two spec-only zoo members.
    # Parsing/lowering the whole bundled zoo is engine-independent, so it is
    # measured once (under bitset); the two constructions are symbolic-only
    # workloads at sizes the explicit path cannot enumerate.
    from bench_e15_spec_zoo import (
        _lower_zoo,
        _solve_coordinated_attack,
        _solve_leader_election,
    )

    def e15_zoo_run(_):
        _lower_zoo()

    def e15_coordinated_attack_run(_):
        _solve_coordinated_attack(12)

    def e15_leader_election_run(_):
        _solve_leader_election(7)

    return [
        ("e3_muddy_children_solve", e3_setup, e3_run),
        ("e6_fixed_point_chain32", e6_setup, e6_run),
        ("e7_knowledge_eval_1024_worlds", e7_knowledge_setup, e7_knowledge_run),
        ("e7_common_knowledge_256_worlds", e7_common_setup, e7_knowledge_run),
        ("e7_ctlk_abp3", e7_ctlk_setup, e7_ctlk_run),
        ("e8_implementation_search", e8_setup, e8_run),
        ("e10_guard_eval_scalar_256_worlds", e10_setup_256, e10_scalar_run),
        ("e10_guard_eval_batched_256_worlds", e10_setup_256, e10_batched_run),
        ("e10_guard_eval_scalar_1024_worlds", e10_setup_1024, e10_scalar_run),
        ("e10_guard_eval_batched_1024_worlds", e10_setup_1024, e10_batched_run),
        ("e11_muddy_guard_table_n10", e11_setup, e11_run),
        ("e12_explicit_construct_muddy_n7", e3_setup, e12_explicit_run, ("bitset",)),
        ("e12_symbolic_construct_muddy_n7", e3_setup, e12_symbolic_run_for(7), ("bdd",)),
        ("e12_symbolic_construct_muddy_n10", e3_setup, e12_symbolic_run_for(10), ("bdd",)),
        ("e12_symbolic_construct_muddy_n12", e3_setup, e12_symbolic_run_for(12), ("bdd",)),
        ("e13_symbolic_ctlk_muddy_n10", e3_setup, e13_muddy_run_for(10), ("bdd",)),
        ("e13_symbolic_ctlk_muddy_n14", e3_setup, e13_muddy_run_for(14), ("bdd",)),
        ("e13_symbolic_ctlk_muddy_n20", e3_setup, e13_muddy_run_for(20), ("bdd",)),
        ("e13_symbolic_ctlk_dining_n10", e3_setup, e13_dining_run_for(10), ("bdd",)),
        (
            "e13_dining_blocked_order_n8",
            e3_setup,
            e13_dining_run_for(8, blocked=True),
            ("bdd",),
        ),
        (
            "e13_dining_blocked_order_sift_n8",
            e3_setup,
            e13_dining_run_for(8, blocked=True, reorder=True),
            ("bdd",),
        ),
        ("e14_explicit_check_muddy_n7", e3_setup, e14_explicit_check_run, ("bitset",)),
        (
            "e14_symbolic_check_muddy_n7",
            e3_setup,
            e14_symbolic_check_run_for(7),
            ("bdd",),
        ),
        (
            "e14_symbolic_check_muddy_n10",
            e3_setup,
            e14_symbolic_check_run_for(10),
            ("bdd",),
        ),
        (
            "e14_symbolic_check_muddy_n12",
            e3_setup,
            e14_symbolic_check_run_for(12),
            ("bdd",),
        ),
        ("e14_symbolic_search_family", e3_setup, e14_symbolic_family_run, ("bdd",)),
        (
            "e14_symbolic_search_bit_transmission",
            e3_setup,
            e14_symbolic_bt_search_run,
            ("bdd",),
        ),
        ("e15_spec_layer_lower_zoo", e3_setup, e15_zoo_run, ("bitset",)),
        (
            "e15_symbolic_construct_coordinated_attack_n12",
            e3_setup,
            e15_coordinated_attack_run,
            ("bdd",),
        ),
        (
            "e15_symbolic_construct_leader_election_n7",
            e3_setup,
            e15_leader_election_run,
            ("bdd",),
        ),
    ]


def time_workload(setup, run, repeats):
    """Best-of-``repeats`` wall time, plus the metrics dict of the fastest
    run when the workload returns one (peak node counts etc.)."""
    inputs = setup()
    best = None
    metrics = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = run(inputs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            metrics = outcome if isinstance(outcome, dict) else None
    return best, metrics


def collect_metrics(setup, run):
    """One extra *non-timed* run per workload with the observability layer
    armed: the timed runs above execute with instrumentation disabled (its
    no-op fast path), then this pass aggregates the workload's counters and
    gauge peaks plus the BDD-manager registry delta (peak nodes, cache hit
    rates, reorder/GC activity of every manager the run created)."""
    inputs = setup()
    sink = AggregateSink()
    mark = obs_registry.checkpoint()
    obs.add_sink(sink)
    try:
        run(inputs)
    finally:
        obs.remove_sink(sink)
    metrics = sink.metrics()
    metrics.update(obs_registry.bdd_metrics(since=mark))
    for name, stats in sink.spans.items():
        metrics[f"span.{name}.count"] = stats["count"]
        metrics[f"span.{name}.seconds"] = round(stats["total"], 6)
    return metrics


REGRESSION_THRESHOLD = 1.5
#: Warn when a workload's peak BDD node allocation grows beyond this factor.
NODES_THRESHOLD = 1.5
#: Warn when a workload's op-cache hit rate drops by more than this (absolute).
HIT_RATE_DROP = 0.10


def _previous_snapshot(output):
    """The most recent committed ``BENCH_*.json`` snapshot in the repo root
    (excluding the file being written), or ``None``."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        if output is not None and path.resolve() == output.resolve():
            continue
        suffix = path.stem.split("_", 1)[1]
        if suffix.isdigit():
            candidates.append((int(suffix), path))
    if not candidates:
        return None
    return max(candidates)[1]


def check_regressions(results, output):
    """Warn-only perf guard: compare this run against the latest committed
    snapshot and report every (benchmark, backend) pair that got more than
    ``REGRESSION_THRESHOLD``x slower.  Never fails the run — machines and
    loads differ; the warnings are for the human reading the CI log."""
    baseline_path = _previous_snapshot(output)
    if baseline_path is None:
        print("no previous BENCH_*.json snapshot; skipping regression check", file=sys.stderr)
        return []
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as error:
        print(f"cannot read {baseline_path.name}: {error}", file=sys.stderr)
        return []
    previous = {
        (entry["benchmark"], entry["backend"]): entry
        for entry in baseline.get("results", [])
    }
    warnings = []
    for entry in results:
        key = (entry["benchmark"], entry["backend"])
        previous_entry = previous.get(key)
        if previous_entry is None:
            continue
        before = previous_entry.get("seconds")
        if before and before > 0 and entry["seconds"] / before > REGRESSION_THRESHOLD:
            warnings.append(
                f"PERF WARNING: {key[0]} [{key[1]}] {entry['seconds'] * 1000:.1f} ms "
                f"vs {before * 1000:.1f} ms in {baseline_path.name} "
                f"({entry['seconds'] / before:.2f}x)"
            )
        metrics = entry.get("metrics") or {}
        previous_metrics = previous_entry.get("metrics") or {}
        nodes, nodes_before = metrics.get("bdd.nodes.peak"), previous_metrics.get(
            "bdd.nodes.peak"
        )
        if nodes and nodes_before and nodes / nodes_before > NODES_THRESHOLD:
            warnings.append(
                f"PERF WARNING: {key[0]} [{key[1]}] peak BDD nodes {nodes} "
                f"vs {nodes_before} in {baseline_path.name} "
                f"({nodes / nodes_before:.2f}x)"
            )
        rate, rate_before = metrics.get("bdd.cache.hit_rate"), previous_metrics.get(
            "bdd.cache.hit_rate"
        )
        if (
            rate is not None
            and rate_before is not None
            and rate_before - rate > HIT_RATE_DROP
        ):
            warnings.append(
                f"PERF WARNING: {key[0]} [{key[1]}] op-cache hit rate {rate:.3f} "
                f"vs {rate_before:.3f} in {baseline_path.name}"
            )
    if warnings:
        print(
            f"\n{len(warnings)} workload(s) slower than {baseline_path.name} "
            f"(>{REGRESSION_THRESHOLD}x, warn-only):",
            file=sys.stderr,
        )
        for line in warnings:
            print(f"  {line}", file=sys.stderr)
    else:
        print(f"no regressions vs {baseline_path.name}", file=sys.stderr)
    return warnings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", type=Path, default=None, help="write JSON here")
    parser.add_argument("--repeats", type=int, default=3, help="runs per workload (best kept)")
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends to measure (default: all registered)",
    )
    parser.add_argument(
        "--no-regression-check",
        action="store_true",
        help="skip the warn-only comparison against the committed snapshot",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="arm an ambient wall-clock budget for the whole run "
        "(repro.resilience); a stuck workload raises BudgetExceededError "
        "instead of hanging CI",
    )
    args = parser.parse_args(argv)
    backends = args.backends or available_backends()

    if args.deadline:
        from repro.resilience import Budget

        Budget(wall_seconds=args.deadline).__enter__()

    results = []
    for backend_name in backends:
        with use_backend(backend_name):
            for entry in _workloads():
                name, setup, run = entry[:3]
                only = entry[3] if len(entry) > 3 else None
                if only is not None and backend_name not in only:
                    continue
                seconds, metrics = time_workload(setup, run, args.repeats)
                entry = {"benchmark": name, "backend": backend_name, "seconds": seconds}
                snapshot = collect_metrics(setup, run)
                if metrics:
                    snapshot.update(metrics)
                if snapshot:
                    entry["metrics"] = snapshot
                results.append(entry)
                print(
                    f"  {name:<34} {backend_name:<10} {seconds * 1000:10.3f} ms",
                    file=sys.stderr,
                )

    if not args.no_regression_check:
        check_regressions(results, args.output)

    summary = {
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "results": results,
    }
    payload = json.dumps(summary, indent=2)
    if args.output is not None:
        args.output.write_text(payload + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
