"""E15 — The declarative spec layer and the spec-only zoo members.

The spec layer makes the protocol source *textual*: every zoo member is a
``.kbp`` file lowered to the explicit and symbolic models on demand.  This
experiment measures the cost of that indirection and the reach of the two
protocols that exist only as specs:

* parsing + validating + lowering the whole bundled zoo (the layer's fixed
  overhead — it must stay negligible next to model construction);
* symbolic construction of **coordinated attack** at ``n = 12`` generals
  (``2^35`` global states, far beyond enumeration): the construction
  closes with only the last general ever attacking — the epistemic
  impossibility at scale;
* symbolic construction of **leader election** at ``n = 7`` ring nodes
  (``> 2^30`` states): the single knowledge guard elects exactly the
  highest-id candidate;
* a seeded batch of the spec-level differential fuzzer (generation plus
  explicit-vs-symbolic comparison on small specs).

Each workload asserts the qualitative answers, so the benchmark doubles as
a reproduction run at sizes the unit suite only touches once.
"""

import pytest

from repro.protocols import coordinated_attack as ca
from repro.protocols import leader_election as le
from repro.spec import bundled_spec_names, load_spec, parse_spec

#: (protocol, n) -> expected reachable states of the symbolic construction.
EXPECTED_STATES = {("coordinated_attack", 12): 2**13 - 1, ("leader_election", 7): 1016}


def _lower_zoo():
    specs = [load_spec(name) for name in bundled_spec_names()]
    for spec in specs:
        spec.validate()
        spec.variable_context()
        assert spec.equivalent(parse_spec(spec.to_kbp(), source="<rt>"))
    return specs


def _solve_coordinated_attack(n):
    result = ca.solve_symbolic(n)
    assert result.verified is True
    assert result.system.state_count() == EXPECTED_STATES[("coordinated_attack", n)]
    assert ca.impossibility_holds(result.system, n)
    return result


def _solve_leader_election(n):
    result = le.solve_symbolic(n)
    assert result.verified is True
    assert result.system.state_count() == EXPECTED_STATES[("leader_election", n)]
    assert le.election_is_correct(result.system, n)
    return result


def _fuzz_batch(count, seed):
    from repro.spec.fuzz import run_fuzz

    stats = run_fuzz(count, seed=seed)
    assert stats["checked"] == count
    return stats


def test_bench_spec_layer_overhead(benchmark, table_report):
    specs = benchmark(_lower_zoo)
    table_report(
        "E15 spec layer: parse + validate + lower + round-trip the zoo",
        [(spec.name, spec.state_space().size()) for spec in specs],
        header=("protocol", "state space"),
    )


@pytest.mark.parametrize("n", [12])
def test_bench_coordinated_attack_symbolic(benchmark, table_report, n):
    result = benchmark(lambda: _solve_coordinated_attack(n))
    table_report(
        f"E15 coordinated attack, symbolic construction (n={n})",
        [(n, ca.spec(n).state_space().size(), result.system.state_count())],
        header=("generals", "state space", "reachable"),
    )


@pytest.mark.parametrize("n", [7])
def test_bench_leader_election_symbolic(benchmark, table_report, n):
    result = benchmark(lambda: _solve_leader_election(n))
    table_report(
        f"E15 leader election, symbolic construction (n={n})",
        [(n, le.spec(n).state_space().size(), result.system.state_count())],
        header=("nodes", "state space", "reachable"),
    )


def test_bench_spec_fuzzer(benchmark, table_report):
    stats = benchmark(lambda: _fuzz_batch(10, seed=5))
    table_report(
        "E15 spec fuzzer: 10 random specs, differential explicit vs symbolic",
        [(stats["checked"], stats["converged"], stats["failed_cleanly"])],
        header=("checked", "constructed", "failed identically"),
    )


def test_coordinated_attack_epistemics_not_a_timing():
    """Not a timing: the classical impossibility reading at n = 12 — the
    chain invariant pins knowledge of all_ready to the last general."""
    result = _solve_coordinated_attack(12)
    # Somebody does act on knowledge: attacks exist, all of them lawful.
    from repro.logic.formula import Not, Prop
    from repro.symbolic import FALSE

    attacked = result.system.extension_node(Prop("attacked11"))
    assert attacked != FALSE
    for i in range(11):
        assert result.system.holds_everywhere(Not(Prop(f"attacked{i}")))
