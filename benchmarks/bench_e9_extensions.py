"""E9 — Extension workloads: the unexpected examination and the dining
cryptographers, exercising interpretation and group-knowledge checking.
"""

import pytest

from repro.protocols import dining_cryptographers as dc
from repro.protocols import unexpected_examination as ue


def test_bench_unexpected_examination(benchmark, table_report):
    result = benchmark.pedantic(lambda: ue.solve(), rounds=1, iterations=1)
    assert result.converged
    rows = []
    for day in range(5):
        written = ue.exam_written_on_day(result.system, day)
        expected = day < 4
        assert written == expected
        rows.append((day, written, expected))
    assert ue.surprise_holds_when_written(result.system)
    table_report(
        "E9 unexpected examination",
        rows,
        header=("exam day", "surprise exam happens", "expected"),
    )


@pytest.mark.parametrize("n", [3, 4])
def test_bench_dining_cryptographers(benchmark, table_report, n):
    def build_and_check():
        system = dc.system(n)
        return (
            system,
            dc.anonymity_holds(system, n),
            dc.everyone_learns_whether_paid(system, n),
            dc.someone_paid_is_common_knowledge(system, n),
        )

    system, anonymous, learns, common = benchmark.pedantic(
        build_and_check, rounds=1, iterations=1
    )
    assert anonymous and learns and common
    table_report(
        f"E9 dining cryptographers (n={n})",
        [(n, len(system), anonymous, learns, common)],
        header=("cryptographers", "|states|", "anonymity", "learns", "common knowledge"),
    )
