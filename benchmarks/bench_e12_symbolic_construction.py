"""E12 — Enumeration-free symbolic model construction.

PR 4's symbolic engine still received its structures from explicit world
enumeration; this experiment measures the pipeline that removes that step:
``repro.symbolic.compile`` + ``repro.symbolic.model`` build the initial set,
the observational-equivalence relations and the transition relation of a
variable context *directly from the specification*, and
``construct_by_rounds`` runs the whole round-based KBP interpretation on
BDDs.

Two workloads over the muddy-children family (the paper's canonical
synchronous program):

* a head-to-head at ``n = 7`` (1,327,104 states): explicit and symbolic
  construction both finish, the symbolic path is expected an order of
  magnitude faster;
* the symbolic path alone at ``n = 10`` (``StateSpace.size() ≈ 1.5·10^8 ≥
  2^20``) — the scale of the acceptance criterion, where the explicit
  construction takes >2 minutes (~150x slower, measured once outside the
  harness: 131 s vs 0.85 s) and larger ``n`` does not finish at all.

Both workloads assert the classical answers (rounds to close, reachable
state counts, first-yes rounds), so the benchmark doubles as a correctness
check at sizes the unit suite only touches once.
"""

import pytest

from repro.interpretation import construct_by_rounds
from repro.protocols import muddy_children as mc

#: Reachable states of the muddy-children implementation, by n (each of the
#: ``2^n - 1`` announcement-compatible patterns traces a deterministic run
#: through ``n + 2`` rounds; states of distinct patterns never merge).
EXPECTED_STATES = {7: 1143, 10: 12276, 12: 57330}


def _solve_symbolic(n):
    model = mc.symbolic_model(n)
    program = mc.program(n).check_against_context(model)
    return construct_by_rounds(program, model), model


def _check(result, n):
    assert result.verified is True
    assert result.iterations == n + 2
    assert result.system.state_count() == EXPECTED_STATES[n]


@pytest.mark.parametrize("n", [7])
def test_bench_explicit_construction(benchmark, table_report, n):
    result = benchmark(lambda: mc.solve(n))
    assert result.verified is True
    assert len(result.system.states) == EXPECTED_STATES[n]
    table_report(
        f"E12 explicit round construction (n={n})",
        [(n, mc.context(n).spec.state_space.size(), len(result.system.states))],
        header=("children", "state space", "reachable"),
    )


@pytest.mark.parametrize("n", [7, 10])
def test_bench_symbolic_construction(benchmark, table_report, n):
    def run():
        result, _ = _solve_symbolic(n)
        return result

    result = benchmark(run)
    _check(result, n)
    _, model = _solve_symbolic(n)
    table_report(
        f"E12 symbolic (enumeration-free) round construction (n={n})",
        [
            (
                n,
                model.state_space.size(),
                result.system.state_count(),
                model.encoding.bdd.cache_info()["nodes"],
            )
        ],
        header=("children", "state space", "reachable", "BDD nodes"),
    )


def test_symbolic_construction_matches_explicit_semantics():
    """Not a timing: the n=10 symbolic result reproduces the classical
    muddy-children rounds on a sample run (k muddy -> yes in round k)."""
    n, k = 10, 4
    result, model = _solve_symbolic(n)
    _check(result, n)
    pattern = [i < k for i in range(n)]
    state = mc.initial_state_for_pattern(model, pattern)
    first_yes = {}
    for _ in range(n + 2):
        pre = state.as_dict()
        new = dict(pre)
        for effect in model.env_effects.values():
            for name, expr in effect.updates.items():
                new[name] = expr.evaluate(pre)
        for agent in model.agents:
            (action,) = result.protocol.actions(agent, model.local_state(agent, state))
            for name, expr in model.actions[agent][action].effect.updates.items():
                new[name] = expr.evaluate(pre)
        state = model.state_space.state(new)
        for i in range(n):
            if i not in first_yes and state[f"said{i}"]:
                first_yes[i] = state["round"]
    assert all(first_yes[i] == k for i in range(k))
    assert all(first_yes[i] == k + 1 for i in range(k, n))
