"""E1 — Bit transmission: unique implementation and its knowledge properties.

Paper artefacts reproduced: the reachable state space of the unique
implementation (6 of the 16 global states; the two ``ack``-without-delivery
states are unreachable), the three CTLK properties, and the fact that the
implementation provides epistemic witnesses without being synchronous.
"""

from repro.interpretation import construct_by_rounds, iterate_interpretation
from repro.protocols import bit_transmission as bt
from repro.temporal import CTLKModelChecker


def test_bench_iterative_interpretation(benchmark, table_report):
    context = bt.context()
    program = bt.program()
    result = benchmark(lambda: iterate_interpretation(program, context))
    assert result.converged
    assert len(result.system) == 6
    checker = CTLKModelChecker(result.system)
    rows = []
    for name, (formula, expected) in bt.property_formulas().items():
        value = checker.valid(formula)
        assert value == expected
        rows.append((name, value, expected))
    rows.append(("provides witnesses", result.system.provides_epistemic_witnesses(program.guards()), True))
    rows.append(("synchronous", result.system.is_synchronous(), False))
    table_report("E1 bit transmission", rows, header=("property", "measured", "paper"))


def test_bench_round_by_round_construction(benchmark):
    context = bt.context()
    program = bt.program()
    result = benchmark(lambda: construct_by_rounds(program, context))
    assert result.verified
    assert len(result.system) == 6


def test_bench_model_checking_only(benchmark):
    system = bt.solve("iterate").system
    formulas = [formula for formula, _ in bt.property_formulas().values()]

    def check():
        checker = CTLKModelChecker(system)
        return [checker.valid(formula) for formula in formulas]

    values = benchmark(check)
    assert values == [True, True, False]
