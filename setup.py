"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in environments without the ``wheel`` package
(legacy editable installs fall back to ``setup.py develop``).
"""

from setuptools import setup

setup()
