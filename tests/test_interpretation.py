"""Tests for the interpretation engine: the functional, the implementation
relation, iteration, the round-by-round construction, the exhaustive search
and the uniqueness conditions."""

import pytest

from repro.interpretation import (
    StateSetView,
    check_implementation,
    classify_program,
    construct_by_rounds,
    depends_on_past,
    derive_protocol,
    enumerate_implementations,
    guard_holds_at_local,
    guard_table,
    implements,
    iterate_interpretation,
    liberal_protocol,
    program_provides_witnesses,
    restrictive_protocol,
    sufficient_conditions_report,
)
from repro.logic import parse
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.protocols import bit_transmission, muddy_children, variable_setting
from repro.systems import represent
from repro.systems.actions import NOOP_NAME
from repro.util.errors import InterpretationError


@pytest.fixture(scope="module")
def vs_context():
    return variable_setting.context()


@pytest.fixture(scope="module")
def bt_solution():
    result = bit_transmission.solve("iterate")
    assert result.converged
    return result


class TestStateSetView:
    def test_view_over_initial_state_only(self, vs_context):
        view = StateSetView(vs_context, vs_context.initial_states)
        assert len(view.states) == 1
        # Over a single reachable state the blind agent knows everything true there.
        assert view.holds(view.states[0], parse("K[a] x=0"))

    def test_view_over_all_states(self, vs_context):
        all_states = vs_context.spec.state_space.all_states()
        view = StateSetView(vs_context, all_states)
        assert not view.holds(vs_context.initial_states[0], parse("K[a] x=0"))
        assert view.holds(vs_context.initial_states[0], parse("M[a] x=3"))

    def test_empty_view_rejected(self, vs_context):
        from repro.util.errors import ModelError

        with pytest.raises(ModelError):
            StateSetView(vs_context, [])


class TestFunctional:
    def test_derive_protocol_on_cyclic_program(self, vs_context):
        program = variable_setting.cyclic_program()
        # Over only the initial state the blind agent knows x=0, so both
        # guards hold and both set-actions are enabled.
        view = StateSetView(vs_context, vs_context.initial_states)
        protocol = derive_protocol(program, view)
        actions = protocol.actions("a", vs_context.local_state("a", vs_context.initial_states[0]))
        assert actions == frozenset({"set1", "set2"})
        # Over the full state space nothing is known, so only the fallback remains.
        full_view = StateSetView(vs_context, vs_context.spec.state_space.all_states())
        protocol_full = derive_protocol(program, full_view)
        actions_full = protocol_full.actions(
            "a", vs_context.local_state("a", vs_context.initial_states[0])
        )
        assert actions_full == frozenset({NOOP_NAME})

    def test_agent_without_program_idles(self, counter_context):
        program = KnowledgeBasedProgram([AgentProgram("someone_else", [])])
        view = StateSetView(counter_context, counter_context.initial_states)
        protocol = derive_protocol(program, view)
        local = counter_context.local_state("agent", counter_context.initial_states[0])
        assert protocol.actions("agent", local) == frozenset({NOOP_NAME})

    def test_non_local_guard_rejected(self, counter_context):
        # `flag` is not observable by the agent, so a bare `flag` guard is not
        # local once both flag values are reachable with the same counter.
        from repro.systems import constant_protocol, JointProtocol

        program = KnowledgeBasedProgram(
            [AgentProgram("agent", [Clause(parse("flag"), "inc"), Clause(parse("true"), "set_flag")])]
        )
        liberal = JointProtocol(
            {"agent": constant_protocol("agent", {"inc", "set_flag", NOOP_NAME})}
        )
        system = represent(counter_context, liberal)
        with pytest.raises(InterpretationError):
            derive_protocol(program, system)

    def test_non_local_guard_accepted_existentially(self, counter_context):
        # With require_local=False the clause is read existentially instead.
        from repro.systems import constant_protocol, JointProtocol

        program = KnowledgeBasedProgram(
            [AgentProgram("agent", [Clause(parse("flag"), "inc")])]
        )
        liberal = JointProtocol(
            {"agent": constant_protocol("agent", {"inc", "set_flag", NOOP_NAME})}
        )
        system = represent(counter_context, liberal)
        protocol = derive_protocol(program, system, require_local=False)
        local = counter_context.local_state("agent", counter_context.initial_states[0])
        assert protocol.actions("agent", local)

    def test_missing_fallback_raises_when_no_clause_enabled(self, vs_context):
        program = KnowledgeBasedProgram(
            [AgentProgram("a", [Clause(parse("K[a] x=3"), "set1")], fallback=None)]
        )
        view = StateSetView(vs_context, vs_context.initial_states)
        with pytest.raises(InterpretationError):
            derive_protocol(program, view)


class TestGuardTable:
    """The batched guards x local-class table must agree with the scalar
    :func:`guard_holds_at_local` path on every (agent, local state, clause)
    triple — non-local guards included."""

    def _assert_agrees(self, view, program, require_local=True):
        table = guard_table(view, program)
        checked = 0
        for agent_program in program:
            agent = agent_program.agent
            for local_state in view.local_states(agent):
                for clause in agent_program.clauses:
                    expected = guard_holds_at_local(
                        view, agent, local_state, clause.guard,
                        require_local=require_local,
                    )
                    actual = table.holds(
                        agent, local_state, clause.guard,
                        require_local=require_local,
                    )
                    assert actual == expected, (agent, local_state, clause.guard)
                    checked += 1
        assert checked > 0

    def test_agrees_on_bit_transmission_system(self, bt_solution):
        self._assert_agrees(bt_solution.system, bit_transmission.program())

    def test_agrees_on_bit_transmission_full_state_space(self):
        context = bit_transmission.context()
        view = StateSetView(context, context.spec.state_space.all_states())
        self._assert_agrees(view, bit_transmission.program())

    def test_agrees_on_muddy_children(self):
        result = muddy_children.solve(2)
        assert result.converged
        self._assert_agrees(result.system, muddy_children.program(2))

    def test_non_local_guard_three_valued(self):
        # A bare `sbit` guard is local to the sender (who observes the bit)
        # but non-local to the receiver over the full state space, where both
        # bit values share every receiver-local state.
        context = bit_transmission.context()
        view = StateSetView(context, context.spec.state_space.all_states())
        program = KnowledgeBasedProgram(
            [
                AgentProgram("S", [Clause(parse("sbit"), "send_ok")]),
                AgentProgram("R", [Clause(parse("sbit"), "ack_ok")]),
            ]
        )
        table = guard_table(view, program)
        guard = parse("sbit")
        for local_state in view.local_states("S"):
            assert table.value("S", local_state, guard) in (True, False)
        for local_state in view.local_states("R"):
            assert table.value("R", local_state, guard) is None
            with pytest.raises(InterpretationError):
                table.holds("R", local_state, guard)
            assert table.holds("R", local_state, guard, require_local=False) is True
        self._assert_agrees(view, program, require_local=False)

    def test_unknown_local_state_raises(self, bt_solution):
        table = guard_table(bt_solution.system, bit_transmission.program())
        with pytest.raises(InterpretationError):
            table.value("S", "no-such-local-state", parse("sbit"))

    def test_table_is_memoised_per_view_and_program(self, bt_solution):
        program = bit_transmission.program()
        first = guard_table(bt_solution.system, program)
        assert guard_table(bt_solution.system, program) is first
        # A structurally identical but distinct program object gets its own
        # table (identity keying: programs are mutable containers).
        assert guard_table(bt_solution.system, bit_transmission.program()) is not first

    def test_evaluator_less_view_falls_back_to_frozensets(self, bt_solution):
        system = bt_solution.system

        class DuckView:
            """A view exposing only the minimal protocol, no evaluator."""

            context = system.context

            @property
            def states(self):
                return system.states

            def extension(self, formula):
                return system.extension(formula)

            def local_states(self, agent):
                return system.local_states(agent)

            def states_with_local_state(self, agent, local_state):
                # Deliberately a list, not a set: duck views may return any
                # iterable of states (regression: the frozenset fallback used
                # to apply set operators to it directly).
                return list(system.states_with_local_state(agent, local_state))

        program = bit_transmission.program()
        duck_table = guard_table(DuckView(), program)
        reference = guard_table(system, program)
        for agent_program in program:
            agent = agent_program.agent
            for local_state in system.local_states(agent):
                for clause in agent_program.clauses:
                    assert duck_table.value(
                        agent, local_state, clause.guard
                    ) == reference.value(agent, local_state, clause.guard)

    def test_program_agents_outside_the_context_are_ignored(self, bt_solution):
        # Regression: the functional only consults context agents, so a
        # program mentioning an extra agent (whose guards may refer to
        # relations the view's structure does not carry) must still derive —
        # the batched pass used to evaluate every program guard eagerly and
        # raise ModelError on the unknown agent.
        program = KnowledgeBasedProgram(
            [
                AgentProgram("S", [Clause(parse("!K[S] ack"), "send_ok")]),
                AgentProgram("X", [Clause(parse("K[X] sbit"), "send_ok")]),
            ]
        )
        protocol = derive_protocol(program, bt_solution.system)
        for local_state in bt_solution.system.local_states("S"):
            assert protocol.actions("S", local_state)

    def test_ad_hoc_guard_outside_the_program(self, bt_solution):
        # Querying a guard the program never mentions goes through the same
        # uniformity logic (lazily evaluated and memoised).
        table = guard_table(bt_solution.system, bit_transmission.program())
        guard = parse("K[R] sbit | K[R] !sbit")
        for local_state in bt_solution.system.local_states("R"):
            assert table.value("R", local_state, guard) == guard_holds_at_local(
                bt_solution.system, "R", local_state, guard
            )


class TestImplementationRelation:
    def test_bit_transmission_fixed_point(self, bt_solution):
        context = bit_transmission.context()
        program = bit_transmission.program()
        report = check_implementation(bt_solution.protocol, program, bit_transmission.context())
        assert report.is_implementation
        assert not report.differences
        assert implements(bt_solution.protocol, program, context)

    def test_liberal_protocol_is_not_an_implementation(self):
        context = bit_transmission.context()
        program = bit_transmission.program()
        candidate = liberal_protocol(program, context)
        report = check_implementation(candidate, program, context)
        assert not report.is_implementation
        assert report.differences
        assert "vs program" in report.describe()

    def test_restrictive_protocol_is_not_an_implementation(self):
        context = bit_transmission.context()
        program = bit_transmission.program()
        candidate = restrictive_protocol(program, context)
        assert not implements(candidate, program, context)


class TestIteration:
    def test_bit_transmission_converges_from_both_seeds(self):
        context = bit_transmission.context()
        program = bit_transmission.program()
        liberal = iterate_interpretation(program, context, seed="liberal")
        restrictive = iterate_interpretation(program, context, seed="restrictive")
        assert liberal.converged and restrictive.converged
        assert frozenset(liberal.system.states) == frozenset(restrictive.system.states)

    def test_cyclic_program_oscillates(self, vs_context):
        result = iterate_interpretation(variable_setting.cyclic_program(), vs_context)
        assert not result.converged
        assert result.cycle_length == 2

    def test_cycle_breaking_program_converges(self, vs_context):
        result = iterate_interpretation(variable_setting.cycle_breaking_program(), vs_context)
        assert result.converged
        values = {state["x"] for state in result.system.states}
        assert values == {0, 1, 2}

    def test_explicit_seed_protocol(self, vs_context):
        program = variable_setting.cycle_breaking_program()
        seed = restrictive_protocol(program, vs_context)
        result = iterate_interpretation(program, vs_context, seed=seed)
        assert result.converged

    def test_unknown_seed_rejected(self, vs_context):
        with pytest.raises(InterpretationError):
            iterate_interpretation(variable_setting.cyclic_program(), vs_context, seed="bogus")

    def test_iteration_bound_enforced(self, vs_context):
        with pytest.raises(InterpretationError):
            iterate_interpretation(
                variable_setting.cyclic_program(), vs_context, max_iterations=1
            )


class _ReprUnstableLocal:
    """A value-equal local state whose ``repr`` differs per instance, like
    any object relying on the default (address-embedding) ``repr``."""

    _serial = 0

    def __init__(self, value):
        self.value = value
        type(self)._serial += 1
        self._token = type(self)._serial

    def __eq__(self, other):
        return isinstance(other, _ReprUnstableLocal) and other.value == self.value

    def __hash__(self):
        return hash(("_ReprUnstableLocal", self.value))

    def __repr__(self):
        return f"<local #{self._token}>"


class TestProtocolSignatureDeterminism:
    def test_signature_is_stable_across_recreated_local_states(self):
        # Regression: the signature used to sort local states with
        # ``key=repr``; equal local states recreated between functional
        # applications then sorted in creation order, so two behaviourally
        # identical protocols could produce different signatures and the
        # fixed-point test ``derived_signature == protocol_signature`` could
        # fail (or succeed) nondeterministically.
        from repro.interpretation.iteration import _protocol_signature
        from repro.systems.protocols import JointProtocol, Protocol

        class StubContext:
            agents = ("a",)

            def __init__(self, creation_order):
                self.creation_order = creation_order

            def local_states_of(self, agent, states):
                return {_ReprUnstableLocal(v) for v in self.creation_order}

        protocol = JointProtocol(
            {"a": Protocol("a", lambda local: frozenset({f"act{local.value}"}))}
        )
        values = list(range(6))
        first = _protocol_signature(protocol, StubContext(values), states=())
        # Recreate the same logical local states in the opposite order: the
        # per-instance repr tokens now anti-correlate with the values, which
        # flipped the old repr-based ordering.
        second = _protocol_signature(
            protocol, StubContext(list(reversed(values))), states=()
        )
        assert first == second

    def test_signature_orders_by_value_not_repr(self):
        from repro.interpretation.iteration import _protocol_signature
        from repro.systems.protocols import JointProtocol, Protocol

        class StubContext:
            agents = ("a",)

            def local_states_of(self, agent, states):
                return set(states)

        protocol = JointProtocol({"a": Protocol("a", lambda local: frozenset({"go"}))})
        signature = _protocol_signature(
            protocol, StubContext(), states=("s2", "s0", "s1")
        )
        ((agent, entries),) = signature
        assert agent == "a"
        assert [local for local, _ in entries] == ["s0", "s1", "s2"]


class TestConstructByRounds:
    def test_bit_transmission(self):
        result = construct_by_rounds(bit_transmission.program(), bit_transmission.context())
        assert result.verified
        assert len(result.system) == 6

    def test_matches_iterative_solution(self, bt_solution):
        rounds = construct_by_rounds(bit_transmission.program(), bit_transmission.context())
        assert frozenset(
            bit_transmission.context().labelling(s) for s in rounds.system.states
        ) == frozenset(
            bit_transmission.context().labelling(s) for s in bt_solution.system.states
        )

    def test_speculative_program_fails_verification(self, vs_context):
        result = construct_by_rounds(
            variable_setting.speculative_program(), vs_context, verify=True
        )
        assert result.verified is False


class TestSearch:
    @pytest.mark.parametrize("name", sorted(variable_setting.PROGRAM_FAMILY))
    def test_family_classification(self, vs_context, name):
        factory, expected = variable_setting.PROGRAM_FAMILY[name]
        result = enumerate_implementations(factory(), vs_context)
        assert result.classification == expected
        reachable_values = sorted(
            frozenset(state["x"] for state in system.states)
            for _, system in result
        )
        assert reachable_values == sorted(variable_setting.expected_reachable_values(name))

    def test_classify_program_wrapper(self, vs_context):
        assert classify_program(variable_setting.contradictory_program(), vs_context) == (
            "contradictory"
        )

    def test_unique_accessor(self, vs_context):
        result = enumerate_implementations(variable_setting.speculative_program(), vs_context)
        protocol, system = result.unique()
        assert implements(protocol, variable_setting.speculative_program(), vs_context)

    def test_unique_accessor_raises_for_multiple(self, vs_context):
        result = enumerate_implementations(variable_setting.cyclic_program(), vs_context)
        with pytest.raises(InterpretationError):
            result.unique()

    def test_search_size_limit(self):
        context = bit_transmission.context()
        with pytest.raises(InterpretationError):
            enumerate_implementations(
                bit_transmission.program(), context, max_free_states=3
            )

    def test_every_found_implementation_is_a_fixed_point(self, vs_context):
        for name, (factory, _) in variable_setting.PROGRAM_FAMILY.items():
            program = factory()
            for protocol, _ in enumerate_implementations(program, vs_context):
                assert implements(protocol, program, vs_context), name


class TestConditions:
    def test_bit_transmission_provides_witnesses_but_not_synchronous(self, bt_solution):
        program = bit_transmission.program()
        assert program_provides_witnesses(program, [bt_solution.system])
        assert not bt_solution.system.is_synchronous()

    def test_depends_on_past_for_unique_program(self, bt_solution):
        program = bit_transmission.program()
        assert depends_on_past(program, [bt_solution.system, bt_solution.system])

    def test_cyclic_program_violates_dependence_on_past(self, vs_context):
        program = variable_setting.cyclic_program()
        systems = [
            represent(vs_context, protocol)
            for protocol, _ in enumerate_implementations(program, vs_context)
        ]
        assert len(systems) == 2
        assert not depends_on_past(program, systems)

    def test_sufficient_conditions_report(self, bt_solution):
        report = sufficient_conditions_report(
            bit_transmission.program(), bit_transmission.context(), [bt_solution.system]
        )
        assert report["provides_witnesses"] is True
        assert report["synchronous"] is False
        assert report["at_most_one_expected"] is True

    def test_report_requires_systems(self, vs_context):
        with pytest.raises(InterpretationError):
            sufficient_conditions_report(variable_setting.cyclic_program(), vs_context, [])
