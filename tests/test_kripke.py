"""Tests for epistemic structures and their operations (:mod:`repro.kripke`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke import (
    EpistemicStructure,
    are_bisimilar,
    bisimulation_classes,
    disjoint_union,
    generated_substructure,
    product_structure,
    quotient_structure,
    restrict_to_worlds,
    single_agent_structure,
    structure_from_labels,
    structure_from_observations,
    structure_from_partition,
    union_structures,
)
from repro.logic import extension, holds, parse
from repro.util.errors import ModelError


class TestStructureValidation:
    def test_duplicate_worlds_rejected(self):
        with pytest.raises(ModelError):
            EpistemicStructure(["w", "w"], {"a": {}}, {"w": set()})

    def test_unknown_successor_rejected(self):
        with pytest.raises(ModelError):
            EpistemicStructure(["w"], {"a": {"w": {"v"}}}, {"w": set()})

    def test_unknown_labelled_world_rejected(self):
        with pytest.raises(ModelError):
            EpistemicStructure(["w"], {"a": {}}, {"w": set(), "v": {"p"}})

    def test_accessibility_for_undeclared_agent_rejected(self):
        with pytest.raises(ModelError):
            EpistemicStructure(["w"], {"a": {}, "b": {}}, {"w": set()}, agents=["a"])

    def test_unknown_agent_lookup_raises(self, two_agent_structure):
        with pytest.raises(ModelError):
            two_agent_structure.accessible("zz", "w00")

    def test_unknown_world_lookup_raises(self, two_agent_structure):
        with pytest.raises(ModelError):
            two_agent_structure.labels("zz")


class TestRelationalProperties:
    def test_observability_structures_are_s5(self, two_agent_structure):
        assert two_agent_structure.is_s5()
        assert two_agent_structure.is_euclidean()

    def test_equivalence_classes_partition_the_worlds(self, two_agent_structure):
        classes = two_agent_structure.equivalence_classes("a")
        union = set().union(*classes)
        assert union == set(two_agent_structure.worlds)
        assert sum(len(c) for c in classes) == len(two_agent_structure.worlds)

    def test_non_equivalence_relation_detected(self):
        structure = EpistemicStructure(
            ["w", "v"], {"a": {"w": {"v"}}}, {"w": set(), "v": set()}
        )
        assert not structure.is_reflexive("a")
        assert not structure.is_s5("a")
        with pytest.raises(ModelError):
            structure.equivalence_classes("a")

    def test_blind_agent_single_class(self, blind_structure):
        classes = blind_structure.equivalence_classes("a")
        assert len(classes) == 1


class TestBuilders:
    def test_structure_from_observations(self):
        structure = structure_from_observations(
            ["x", "y", "z"],
            lambda agent, world: world == "z",
            {"x": set(), "y": {"p"}, "z": {"p"}},
            agents=["a"],
        )
        assert structure.accessible("a", "x") == frozenset({"x", "y"})
        assert structure.accessible("a", "z") == frozenset({"z"})

    def test_structure_from_partition(self):
        structure = structure_from_partition(
            {"a": [["w1", "w2"], ["w3"]]},
            {"w1": set(), "w2": {"p"}, "w3": {"p"}},
        )
        assert structure.accessible("a", "w1") == frozenset({"w1", "w2"})
        assert structure.accessible("a", "w3") == frozenset({"w3"})

    def test_overlapping_partition_rejected(self):
        with pytest.raises(ModelError):
            structure_from_partition(
                {"a": [["w1", "w2"], ["w2"]]}, {"w1": set(), "w2": set()}
            )

    def test_perfect_information_agent(self):
        structure = single_agent_structure({"w1": set(), "w2": {"p"}}, blind=False)
        assert holds(structure, "w2", parse("K[a] p"))


class TestOperations:
    def test_restrict_to_worlds(self, two_agent_structure):
        restricted = restrict_to_worlds(two_agent_structure, ["w00", "w01"])
        assert set(restricted.worlds) == {"w00", "w01"}
        # Agent a cannot see q, so the two remaining worlds stay indistinguishable.
        assert restricted.accessible("a", "w00") == frozenset({"w00", "w01"})

    def test_restriction_changes_knowledge(self, two_agent_structure):
        # Over all worlds agent b does not know !p at w01; after removing the
        # p-worlds it does: knowledge depends on which worlds are reachable.
        assert not holds(two_agent_structure, "w01", parse("K[b] !p"))
        restricted = restrict_to_worlds(two_agent_structure, ["w00", "w01"])
        assert holds(restricted, "w01", parse("K[b] !p"))

    def test_restrict_to_unknown_world_rejected(self, two_agent_structure):
        with pytest.raises(ModelError):
            restrict_to_worlds(two_agent_structure, ["nope"])

    def test_generated_substructure(self, two_agent_structure):
        generated = generated_substructure(two_agent_structure, ["w00"], agents=["a"])
        # Agent a observes p, so from w00 it only reaches the !p worlds.
        assert set(generated.worlds) == {"w00", "w01"}

    def test_generated_substructure_all_agents(self, two_agent_structure):
        generated = generated_substructure(two_agent_structure, ["w00"])
        assert set(generated.worlds) == set(two_agent_structure.worlds)

    def test_union_structures(self, two_agent_structure):
        union = union_structures(two_agent_structure, two_agent_structure)
        assert union == two_agent_structure

    def test_disjoint_union(self, two_agent_structure, blind_structure):
        other = structure_from_labels(
            {w: two_agent_structure.labels(w) for w in two_agent_structure.worlds},
            {"a": {"p", "q"}, "b": set()},
        )
        combined = disjoint_union(two_agent_structure, other)
        assert len(combined) == 2 * len(two_agent_structure)
        assert holds(combined, ("L", "w10"), parse("K[a] p"))

    def test_product_structure(self, two_agent_structure):
        product = product_structure(two_agent_structure, two_agent_structure)
        assert len(product) == len(two_agent_structure) ** 2
        assert product.is_s5()


class TestBisimulation:
    def test_duplicate_worlds_are_bisimilar(self):
        labelling = {"w1": {"p"}, "w2": {"p"}, "w3": set()}
        structure = single_agent_structure(labelling, blind=True)
        assert are_bisimilar(structure, "w1", "w2")
        assert not are_bisimilar(structure, "w1", "w3")

    def test_quotient_preserves_formulas(self):
        labelling = {"w1": {"p"}, "w2": {"p"}, "w3": set()}
        structure = single_agent_structure(labelling, blind=True)
        quotient = quotient_structure(structure)
        assert len(quotient) == 2
        for formula_text in ("K[a] p", "M[a] p", "M[a] !p", "K[a] (p | !p)"):
            formula = parse(formula_text)
            for cls in quotient.worlds:
                representative = next(iter(cls))
                assert holds(quotient, cls, formula) == holds(
                    structure, representative, formula
                )

    def test_bisimulation_classes_refine_labelling(self, two_agent_structure):
        for cls in bisimulation_classes(two_agent_structure):
            labels = {two_agent_structure.labels(w) for w in cls}
            assert len(labels) == 1


@st.composite
def labelled_worlds(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return {
        f"w{i}": {p for p in ("p", "q") if draw(st.booleans())} for i in range(n)
    }


class TestKripkeProperties:
    @settings(max_examples=50, deadline=None)
    @given(labelling=labelled_worlds(), observed=st.sets(st.sampled_from(["p", "q"])))
    def test_observability_builder_yields_equivalences(self, labelling, observed):
        structure = structure_from_labels(labelling, {"a": observed})
        assert structure.is_s5()

    @settings(max_examples=50, deadline=None)
    @given(labelling=labelled_worlds())
    def test_quotient_never_larger(self, labelling):
        structure = structure_from_labels(labelling, {"a": {"p"}, "b": {"q"}})
        quotient = quotient_structure(structure)
        assert len(quotient) <= len(structure)

    @settings(max_examples=50, deadline=None)
    @given(labelling=labelled_worlds())
    def test_knowledge_monotone_under_restriction(self, labelling):
        """Removing worlds can only increase knowledge (fewer possibilities)."""
        structure = structure_from_labels(labelling, {"a": set()})
        formula = parse("K[a] p")
        full_extension = extension(structure, formula)
        worlds = list(labelling)
        kept = worlds[: max(1, len(worlds) // 2)]
        restricted = restrict_to_worlds(structure, kept)
        restricted_extension = extension(restricted, formula)
        assert full_extension & set(kept) <= restricted_extension
