"""Tests for the shared utilities (:mod:`repro.util`)."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    FormulaError,
    InterpretationError,
    ModelError,
    ParseError,
    ProgramError,
    ReproError,
    frozen_mapping,
    powerset,
    product_dicts,
    stable_unique,
)


class TestErrors:
    def test_hierarchy(self):
        for error_type in (FormulaError, ModelError, ProgramError, InterpretationError):
            assert issubclass(error_type, ReproError)
        assert issubclass(ParseError, FormulaError)

    def test_parse_error_renders_position_pointer(self):
        error = ParseError("bad token", text="p & )", position=4)
        rendered = str(error)
        assert "p & )" in rendered
        assert rendered.splitlines()[-1].strip() == "^"

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"


class TestHelpers:
    def test_frozen_mapping_is_read_only(self):
        view = frozen_mapping({"a": 1})
        assert view["a"] == 1
        with pytest.raises(TypeError):
            view["a"] = 2

    def test_powerset_counts(self):
        assert len(list(powerset([1, 2, 3]))) == 8
        assert list(powerset([])) == [()]

    def test_product_dicts(self):
        combos = list(product_dicts({"x": [0, 1], "y": ["a"]}))
        assert combos == [{"x": 0, "y": "a"}, {"x": 1, "y": "a"}]

    def test_product_dicts_empty(self):
        assert list(product_dicts({})) == [{}]

    def test_stable_unique_preserves_order(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    @given(st.lists(st.integers(min_value=0, max_value=9)))
    def test_stable_unique_properties(self, items):
        result = stable_unique(items)
        assert len(result) == len(set(items))
        assert set(result) == set(items)

    @given(st.lists(st.integers(), max_size=8))
    def test_powerset_size_property(self, items):
        assert len(list(powerset(items))) == 2 ** len(items)
