"""Tests for the shared utilities (:mod:`repro.util`)."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    FormulaError,
    InterpretationError,
    ModelError,
    ParseError,
    ProgramError,
    ReproError,
    frozen_mapping,
    powerset,
    product_dicts,
    stable_sort_key,
    stable_unique,
)


class _AddressRepr:
    """A value-equal hashable whose default ``repr`` embeds the identity —
    the shape that broke ``key=repr`` sorting."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, _AddressRepr) and other.value == self.value

    def __hash__(self):
        return hash(("_AddressRepr", self.value))


class TestErrors:
    def test_hierarchy(self):
        for error_type in (FormulaError, ModelError, ProgramError, InterpretationError):
            assert issubclass(error_type, ReproError)
        assert issubclass(ParseError, FormulaError)

    def test_parse_error_renders_position_pointer(self):
        error = ParseError("bad token", text="p & )", position=4)
        rendered = str(error)
        assert "p & )" in rendered
        assert rendered.splitlines()[-1].strip() == "^"

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"


class TestHelpers:
    def test_frozen_mapping_is_read_only(self):
        view = frozen_mapping({"a": 1})
        assert view["a"] == 1
        with pytest.raises(TypeError):
            view["a"] = 2

    def test_powerset_counts(self):
        assert len(list(powerset([1, 2, 3]))) == 8
        assert list(powerset([])) == [()]

    def test_product_dicts(self):
        combos = list(product_dicts({"x": [0, 1], "y": ["a"]}))
        assert combos == [{"x": 0, "y": "a"}, {"x": 1, "y": "a"}]

    def test_product_dicts_empty(self):
        assert list(product_dicts({})) == [{}]

    def test_stable_unique_preserves_order(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    @given(st.lists(st.integers(min_value=0, max_value=9)))
    def test_stable_unique_properties(self, items):
        result = stable_unique(items)
        assert len(result) == len(set(items))
        assert set(result) == set(items)

    @given(st.lists(st.integers(), max_size=8))
    def test_powerset_size_property(self, items):
        assert len(list(powerset(items))) == 2 ** len(items)


class TestStableSortKey:
    def test_equal_values_share_a_key_regardless_of_identity(self):
        assert stable_sort_key(_AddressRepr(7)) == stable_sort_key(_AddressRepr(7))
        assert stable_sort_key((1, "a")) == stable_sort_key((1, "a"))
        # ... unlike repr, which embeds the address for such objects:
        assert repr(_AddressRepr(7)) != repr(_AddressRepr(7))

    def test_orders_heterogeneous_builtins_without_type_errors(self):
        items = [2, "b", None, (), frozenset({1}), 1.5, b"x", {"k": 1}, True]
        result = sorted(items, key=stable_sort_key)
        assert sorted(result, key=stable_sort_key) == result
        assert result[0] is None

    def test_recursive_containers(self):
        assert stable_sort_key({("a", 1): {2, 3}}) == stable_sort_key(
            {("a", 1): {3, 2}}
        )
        assert stable_sort_key([1, [2, 3]]) == stable_sort_key((1, (2, 3)))

    def test_sorting_equal_multisets_of_opaque_objects_is_stable(self):
        first = sorted([_AddressRepr(i) for i in range(10)], key=stable_sort_key)
        second = sorted(
            [_AddressRepr(i) for i in reversed(range(10))], key=stable_sort_key
        )
        assert first == second

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=12))
    def test_opaque_object_sort_is_value_determined(self, values):
        instances = [_AddressRepr(v) for v in values]
        again = [_AddressRepr(v) for v in reversed(values)]
        assert sorted(instances, key=stable_sort_key) == sorted(
            again, key=stable_sort_key
        )
