"""Equivalence and behaviour of the world-set evaluation backends
(:mod:`repro.engine`)."""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    BitsetBackend,
    Evaluator,
    FrozensetBackend,
    available_backends,
    backend_by_name,
    evaluator_for,
    get_default_backend,
    local_guard_value,
    set_default_backend,
    use_backend,
)
from repro.kripke import EpistemicStructure, generated_substructure
from repro.logic import extension, holds
from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
)
from repro.util.errors import EngineError, ModelError

AGENTS = ("a", "b", "c")
PROPS = ("p", "q", "r")


def random_structure(rng, max_worlds=9):
    """A small random structure with arbitrary (not necessarily S5)
    relations, so the backends are exercised beyond the equivalence case."""
    n_worlds = rng.randint(1, max_worlds)
    worlds = [f"w{i}" for i in range(n_worlds)]
    agents = list(AGENTS[: rng.randint(1, len(AGENTS))])
    labelling = {
        world: {prop for prop in PROPS if rng.random() < 0.5} for world in worlds
    }
    accessibility = {
        agent: {
            world: {other for other in worlds if rng.random() < 0.35}
            for world in worlds
        }
        for agent in agents
    }
    return EpistemicStructure(worlds, accessibility, labelling, agents=agents)


def formula_suite(agents):
    """One formula per construct (plus nestings), over the given agents."""
    p, q, r = Prop("p"), Prop("q"), Prop("r")
    first = agents[0]
    group = tuple(agents)
    pair = tuple(agents[:2])
    return [
        TRUE,
        FALSE,
        p,
        Prop("unlabelled"),
        Not(p),
        And((p, q)),
        Or((p, q, r)),
        Implies(p, q),
        Iff(p, Not(q)),
        Knows(first, p),
        Knows(first, Implies(p, q)),
        Possible(first, And((p, Not(q)))),
        EveryoneKnows(pair, p),
        EveryoneKnows(group, Or((p, q))),
        CommonKnows(pair, Or((p, Not(p)))),
        CommonKnows(group, Or((p, q))),
        DistributedKnows(pair, p),
        DistributedKnows(group, Implies(p, q)),
        Knows(first, CommonKnows(pair, p)),
        Not(CommonKnows(group, And((p, q)))),
        Possible(first, DistributedKnows(pair, Not(r))),
        Iff(EveryoneKnows(pair, p), Knows(first, p)),
    ]


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_construct_agrees_on_random_structures(self, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        reference = Evaluator(structure, FrozensetBackend())
        fast = Evaluator(structure, BitsetBackend())
        for formula in formula_suite(structure.agents):
            expected = reference.extension(formula)
            actual = fast.extension(formula)
            assert actual == expected, (
                f"backends disagree on {formula} over {structure.describe()}"
            )
            for world in structure.worlds:
                assert reference.holds(world, formula) == fast.holds(world, formula)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reachability_agrees(self, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        start = {w for w in structure.worlds if rng.random() < 0.4}
        if not start:
            start = {structure.worlds[0]}
        frozen = FrozensetBackend()
        bits = BitsetBackend()
        expected = frozen.reachable(structure, start)
        actual = bits.to_frozenset(structure, bits.reachable(structure, start))
        assert actual == expected
        with use_backend("frozenset"):
            sub_frozen = generated_substructure(structure, start)
        with use_backend("bitset"):
            sub_bits = generated_substructure(structure, start)
        assert set(sub_frozen.worlds) == set(sub_bits.worlds)

    def test_public_extension_matches_both_backends(self, two_agent_structure):
        formula = Knows("a", Or((Prop("p"), Prop("q"))))
        assert extension(two_agent_structure, formula, backend="frozenset") == extension(
            two_agent_structure, formula, backend="bitset"
        )


class TestWorldIndexing:
    def test_dense_index_follows_construction_order(self, two_agent_structure):
        for expected, world in enumerate(two_agent_structure.worlds):
            assert two_agent_structure.index_of(world) == expected
            assert two_agent_structure.world_at(expected) == world
        assert two_agent_structure.world_index == {
            world: index for index, world in enumerate(two_agent_structure.worlds)
        }

    def test_unknown_world_and_index_raise(self, two_agent_structure):
        with pytest.raises(ModelError):
            two_agent_structure.index_of("nope")
        with pytest.raises(ModelError):
            two_agent_structure.world_at(len(two_agent_structure) + 5)
        with pytest.raises(ModelError):
            two_agent_structure.world_at(-1)


class TestEvaluatorCaching:
    def test_extension_is_memoised_per_structure(self, two_agent_structure):
        evaluator = evaluator_for(two_agent_structure)
        formula = Knows("a", Prop("p"))
        first = evaluator.extension(formula)
        assert first is evaluator.extension(formula)
        assert formula in evaluator.cache
        assert evaluator_for(two_agent_structure) is evaluator

    def test_distinct_backends_get_distinct_evaluators(self, two_agent_structure):
        fast = evaluator_for(two_agent_structure, "bitset")
        reference = evaluator_for(two_agent_structure, "frozenset")
        assert fast is not reference
        assert fast.backend.name == "bitset"
        assert reference.backend.name == "frozenset"

    def test_public_extension_returns_fresh_mutable_set(self, two_agent_structure):
        formula = Prop("p")
        result = extension(two_agent_structure, formula)
        assert isinstance(result, set)
        result.clear()  # must not corrupt the persistent cache
        assert extension(two_agent_structure, formula) == {
            world
            for world in two_agent_structure.worlds
            if two_agent_structure.label_holds(world, "p")
        }

    def test_clear_cache(self, two_agent_structure):
        evaluator = Evaluator(two_agent_structure)
        evaluator.extension(Prop("p"))
        assert evaluator.cache
        evaluator.clear_cache()
        assert not evaluator.cache

    def test_holds_validates_world(self, two_agent_structure):
        with pytest.raises(ModelError):
            holds(two_agent_structure, "nope", TRUE)


class TestKnowledgeLevelValidation:
    def test_unknown_state_raises_on_both_backends(self, two_agent_structure):
        from repro.analysis import knowledge_level_reached

        class SystemShim:
            structure = two_agent_structure
            states = two_agent_structure.worlds

        for backend in available_backends():
            with use_backend(backend):
                with pytest.raises(ModelError):
                    knowledge_level_reached(SystemShim(), "nope", Prop("p"), ("a", "b"))


class TestLocalGuardValue:
    def test_uniform_and_non_local_guards(self):
        structure = EpistemicStructure(
            ["u", "v", "w"],
            {"a": {"u": {"u", "v"}, "v": {"u", "v"}, "w": {"w"}}},
            {"u": {"p"}, "v": {"p"}, "w": set()},
        )
        evaluator = evaluator_for(structure)
        assert local_guard_value(evaluator, {"u", "v"}, Prop("p")) is True
        assert local_guard_value(evaluator, {"w"}, Prop("p")) is False
        assert local_guard_value(evaluator, {"u", "w"}, Prop("p")) is None


class TestBackendSelection:
    def test_registry(self):
        assert available_backends() == ["bitset", "frozenset"]
        assert backend_by_name("bitset").name == "bitset"
        with pytest.raises(EngineError):
            backend_by_name("bdd")

    def test_bitset_is_the_default(self):
        # The process default is bitset unless the suite itself is being run
        # under a REPRO_SET_BACKEND override (the CI matrix does this).
        expected = os.environ.get("REPRO_SET_BACKEND", "bitset")
        assert get_default_backend().name == expected

    def test_use_backend_restores_previous_default(self):
        before = get_default_backend()
        with use_backend("frozenset") as backend:
            assert backend.name == "frozenset"
            assert get_default_backend() is backend
        assert get_default_backend() is before

    def test_set_default_backend_accepts_instances_and_names(self):
        previous = set_default_backend("frozenset")
        try:
            assert get_default_backend().name == "frozenset"
        finally:
            set_default_backend(previous)
        assert get_default_backend() is previous


class TestEmptyGroupRelations:
    def test_empty_intersection_is_the_full_relation(self, two_agent_structure):
        # Regression: this used to crash with IndexError on per_agent[0].
        relation = two_agent_structure.group_relation((), mode="intersection")
        all_worlds = frozenset(two_agent_structure.worlds)
        assert relation == {world: all_worlds for world in two_agent_structure.worlds}

    def test_empty_union_is_the_empty_relation(self, two_agent_structure):
        relation = two_agent_structure.group_relation((), mode="union")
        assert relation == {world: frozenset() for world in two_agent_structure.worlds}

    def test_backends_agree_on_empty_group_operators(self, two_agent_structure):
        structure = two_agent_structure
        frozen = FrozensetBackend()
        bits = BitsetBackend()
        inner_worlds = frozenset(
            world for world in structure.worlds if structure.label_holds(world, "p")
        )
        inner_bits = bits.from_worlds(structure, inner_worlds)
        assert bits.to_frozenset(
            structure, bits.distributed_knows(structure, (), inner_bits)
        ) == frozen.distributed_knows(structure, (), inner_worlds)
        assert bits.to_frozenset(
            structure, bits.everyone_knows(structure, (), inner_bits)
        ) == frozen.everyone_knows(structure, (), inner_worlds)
