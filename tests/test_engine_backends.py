"""Equivalence and behaviour of the world-set evaluation backends
(:mod:`repro.engine`).

Every test that checks backend behaviour is parametrised over
``available_backends()`` — the live registry — so a newly registered
backend (e.g. the NumPy ``matrix`` backend) is pulled into the equivalence
harness automatically, and a backend whose optional dependency is missing
drops out without failures.  :class:`FrozensetBackend` is the semantic
reference every other backend is compared against.
"""

import importlib.util
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    BitsetBackend,
    Evaluator,
    FrozensetBackend,
    available_backends,
    backend_available,
    backend_by_name,
    evaluator_for,
    get_default_backend,
    local_guard_value,
    register_backend,
    registered_backends,
    set_default_backend,
    unregister_backend,
    use_backend,
)
from repro.kripke import EpistemicStructure, generated_substructure
from repro.logic import extension, holds
from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
)
from repro.util.errors import EngineError, ModelError

AGENTS = ("a", "b", "c")
PROPS = ("p", "q", "r")

# Snapshot at collection time: the registry is process-global state and some
# tests below mutate it (with cleanup), so the parametrisation lists are
# fixed here.
BACKENDS = available_backends()
HAS_NUMPY = importlib.util.find_spec("numpy") is not None

all_backends = pytest.mark.parametrize("backend_name", BACKENDS)


def random_structure(rng, max_worlds=9):
    """A small random structure with arbitrary (not necessarily S5)
    relations, so the backends are exercised beyond the equivalence case."""
    n_worlds = rng.randint(1, max_worlds)
    worlds = [f"w{i}" for i in range(n_worlds)]
    agents = list(AGENTS[: rng.randint(1, len(AGENTS))])
    labelling = {
        world: {prop for prop in PROPS if rng.random() < 0.5} for world in worlds
    }
    accessibility = {
        agent: {
            world: {other for other in worlds if rng.random() < 0.35}
            for world in worlds
        }
        for agent in agents
    }
    return EpistemicStructure(worlds, accessibility, labelling, agents=agents)


def formula_suite(agents):
    """One formula per construct (plus nestings), over the given agents."""
    p, q, r = Prop("p"), Prop("q"), Prop("r")
    first = agents[0]
    group = tuple(agents)
    pair = tuple(agents[:2])
    return [
        TRUE,
        FALSE,
        p,
        Prop("unlabelled"),
        Not(p),
        And((p, q)),
        Or((p, q, r)),
        Implies(p, q),
        Iff(p, Not(q)),
        Knows(first, p),
        Knows(first, Implies(p, q)),
        Possible(first, And((p, Not(q)))),
        EveryoneKnows(pair, p),
        EveryoneKnows(group, Or((p, q))),
        CommonKnows(pair, Or((p, Not(p)))),
        CommonKnows(group, Or((p, q))),
        DistributedKnows(pair, p),
        DistributedKnows(group, Implies(p, q)),
        Knows(first, CommonKnows(pair, p)),
        Not(CommonKnows(group, And((p, q)))),
        Possible(first, DistributedKnows(pair, Not(r))),
        Iff(EveryoneKnows(pair, p), Knows(first, p)),
    ]


class TestBackendEquivalence:
    @all_backends
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_construct_agrees_on_random_structures(self, backend_name, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        reference = Evaluator(structure, FrozensetBackend())
        candidate = Evaluator(structure, backend_by_name(backend_name))
        for formula in formula_suite(structure.agents):
            expected = reference.extension(formula)
            actual = candidate.extension(formula)
            assert actual == expected, (
                f"backend {backend_name!r} disagrees on {formula} "
                f"over {structure.describe()}"
            )
            for world in structure.worlds:
                assert reference.holds(world, formula) == candidate.holds(
                    world, formula
                )

    @all_backends
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reachability_agrees(self, backend_name, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        start = {w for w in structure.worlds if rng.random() < 0.4}
        if not start:
            start = {structure.worlds[0]}
        reference = FrozensetBackend()
        candidate = backend_by_name(backend_name)
        expected = reference.reachable(structure, start)
        actual = candidate.to_frozenset(
            structure, candidate.reachable(structure, start)
        )
        assert actual == expected
        with use_backend("frozenset"):
            sub_reference = generated_substructure(structure, start)
        with use_backend(backend_name):
            sub_candidate = generated_substructure(structure, start)
        assert set(sub_reference.worlds) == set(sub_candidate.worlds)

    @all_backends
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reachability_with_agent_subsets(self, backend_name, seed):
        # Regression scope: only the all-agents default used to be exercised.
        rng = random.Random(seed)
        structure = random_structure(rng)
        start = {w for w in structure.worlds if rng.random() < 0.4}
        if not start:
            start = {structure.worlds[0]}
        reference = FrozensetBackend()
        candidate = backend_by_name(backend_name)
        subsets = [(), structure.agents[:1], structure.agents[1:], structure.agents]
        for agents in subsets:
            expected = reference.reachable(structure, start, agents=agents)
            actual = candidate.to_frozenset(
                structure, candidate.reachable(structure, start, agents=agents)
            )
            assert actual == expected, (
                f"backend {backend_name!r} disagrees on reachable with "
                f"agents={agents!r}"
            )

    @all_backends
    def test_reachable_with_empty_agent_tuple_is_the_start_set(
        self, backend_name, two_agent_structure
    ):
        # The union over no agents is the empty relation, so the closure of
        # any start set under it is the start set itself.
        backend = backend_by_name(backend_name)
        start = {two_agent_structure.worlds[0], two_agent_structure.worlds[2]}
        result = backend.to_frozenset(
            two_agent_structure,
            backend.reachable(two_agent_structure, start, agents=()),
        )
        assert result == frozenset(start)

    @all_backends
    def test_reachable_with_single_agent_follows_only_that_relation(
        self, backend_name, two_agent_structure
    ):
        # Agent ``a`` observes ``p``: from w00 it reaches exactly {w00, w01}.
        backend = backend_by_name(backend_name)
        result = backend.to_frozenset(
            two_agent_structure,
            backend.reachable(two_agent_structure, {"w00"}, agents=("a",)),
        )
        assert result == frozenset({"w00", "w01"})

    def test_public_extension_matches_all_backends(self, two_agent_structure):
        formula = Knows("a", Or((Prop("p"), Prop("q"))))
        reference = extension(two_agent_structure, formula, backend="frozenset")
        for backend_name in BACKENDS:
            assert (
                extension(two_agent_structure, formula, backend=backend_name)
                == reference
            )


class TestBatchedEvaluation:
    """`Evaluator.extensions` and the backend ``*_many`` operators must agree
    with the scalar path on every backend — including the generic
    scalar-loop fallback used by bitset/frozenset."""

    @all_backends
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_extensions_match_per_formula_extension(self, backend_name, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        formulas = formula_suite(structure.agents)
        batched = Evaluator(structure, backend_by_name(backend_name)).extensions(
            formulas
        )
        scalar = Evaluator(structure, backend_by_name(backend_name))
        assert batched == [scalar.extension(formula) for formula in formulas]
        reference = Evaluator(structure, FrozensetBackend())
        assert batched == [reference.extension(formula) for formula in formulas]

    @all_backends
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_batch_operators_agree_with_scalar(self, backend_name, seed):
        rng = random.Random(seed)
        structure = random_structure(rng)
        backend = backend_by_name(backend_name)
        inner_worlds = [
            frozenset(w for w in structure.worlds if rng.random() < 0.5)
            for _ in range(4)
        ]
        inners = [backend.from_worlds(structure, worlds) for worlds in inner_worlds]
        agent = structure.agents[0]
        group = structure.agents
        cases = [
            (backend.knows_many(structure, agent, inners), backend.knows, (agent,)),
            (
                backend.possible_many(structure, agent, inners),
                backend.possible,
                (agent,),
            ),
            (
                backend.everyone_knows_many(structure, group, inners),
                backend.everyone_knows,
                (group,),
            ),
            (
                backend.common_knows_many(structure, group, inners),
                backend.common_knows,
                (group,),
            ),
            (
                backend.distributed_knows_many(structure, group, inners),
                backend.distributed_knows,
                (group,),
            ),
        ]
        for batched, scalar, args in cases:
            assert len(batched) == len(inners)
            for result, inner in zip(batched, inners):
                expected = scalar(structure, *args, inner)
                assert backend.to_frozenset(structure, result) == backend.to_frozenset(
                    structure, expected
                ), f"{scalar.__name__} disagrees on backend {backend_name!r}"

    @all_backends
    def test_empty_batch_returns_empty_list(self, backend_name, two_agent_structure):
        backend = backend_by_name(backend_name)
        assert backend.knows_many(two_agent_structure, "a", []) == []
        assert backend.possible_many(two_agent_structure, "a", []) == []
        assert backend.common_knows_many(two_agent_structure, ("a", "b"), []) == []

    @all_backends
    def test_extensions_reuses_and_fills_the_cache(
        self, backend_name, two_agent_structure
    ):
        evaluator = Evaluator(two_agent_structure, backend_by_name(backend_name))
        formulas = [Knows("a", Prop("p")), Knows("a", Prop("q"))]
        results = evaluator.extensions(formulas)
        assert all(formula in evaluator.cache for formula in formulas)
        # A second batched call (and the scalar path) answer from the cache.
        assert evaluator.extensions(formulas) == results
        assert [evaluator.extension(formula) for formula in formulas] == results

    def test_same_relation_operands_share_one_batch_call(self, two_agent_structure):
        calls = []

        class CountingBackend(FrozensetBackend):
            name = "counting"

            def knows_many(self, structure, agent, inners):
                calls.append((agent, len(inners)))
                return super().knows_many(structure, agent, inners)

        evaluator = Evaluator(two_agent_structure, CountingBackend())
        # Three K[a] nodes at the innermost level batch into one call; the
        # nested K[a] on top of one of them forms a second level (its operand
        # must be resolved first), hence a second call.
        formulas = [
            Knows("a", Prop("p")),
            Knows("a", Prop("q")),
            Knows("a", Knows("a", Prop("p"))),
            Knows("b", Prop("p")),
        ]
        evaluator.extensions(formulas)
        # The shared subformula K[a] p is hash-consed: it lands in exactly one
        # batch even though two input formulas contain it.
        assert [count for agent, count in calls if agent == "a"] == [2, 1]
        assert [count for agent, count in calls if agent == "b"] == [1]

    def test_extensions_handles_shared_and_duplicate_formulas(
        self, two_agent_structure
    ):
        evaluator = evaluator_for(two_agent_structure)
        formula = Knows("a", Prop("p"))
        results = evaluator.extensions([formula, formula, Prop("p")])
        assert results[0] == results[1] == evaluator.extension(formula)
        assert results[2] == evaluator.extension(Prop("p"))


class TestWorldIndexing:
    def test_dense_index_follows_construction_order(self, two_agent_structure):
        for expected, world in enumerate(two_agent_structure.worlds):
            assert two_agent_structure.index_of(world) == expected
            assert two_agent_structure.world_at(expected) == world
        assert two_agent_structure.world_index == {
            world: index for index, world in enumerate(two_agent_structure.worlds)
        }

    def test_unknown_world_and_index_raise(self, two_agent_structure):
        with pytest.raises(ModelError):
            two_agent_structure.index_of("nope")
        with pytest.raises(ModelError):
            two_agent_structure.world_at(len(two_agent_structure) + 5)
        with pytest.raises(ModelError):
            two_agent_structure.world_at(-1)


class TestEvaluatorCaching:
    def test_extension_is_memoised_per_structure(self, two_agent_structure):
        evaluator = evaluator_for(two_agent_structure)
        formula = Knows("a", Prop("p"))
        first = evaluator.extension(formula)
        assert first is evaluator.extension(formula)
        assert formula in evaluator.cache
        assert evaluator_for(two_agent_structure) is evaluator

    def test_distinct_backends_get_distinct_evaluators(self, two_agent_structure):
        evaluators = [
            evaluator_for(two_agent_structure, name) for name in BACKENDS
        ]
        assert len({id(evaluator) for evaluator in evaluators}) == len(BACKENDS)
        for name, evaluator in zip(BACKENDS, evaluators):
            assert evaluator.backend.name == name

    def test_public_extension_returns_fresh_mutable_set(self, two_agent_structure):
        formula = Prop("p")
        result = extension(two_agent_structure, formula)
        assert isinstance(result, set)
        result.clear()  # must not corrupt the persistent cache
        assert extension(two_agent_structure, formula) == {
            world
            for world in two_agent_structure.worlds
            if two_agent_structure.label_holds(world, "p")
        }

    def test_clear_cache(self, two_agent_structure):
        evaluator = Evaluator(two_agent_structure)
        evaluator.extension(Prop("p"))
        assert evaluator.cache
        evaluator.clear_cache()
        assert not evaluator.cache

    @all_backends
    def test_cache_info_reports_cache_sizes(self, backend_name, two_agent_structure):
        evaluator = Evaluator(two_agent_structure, backend_by_name(backend_name))
        info = evaluator.cache_info()
        assert info["formulas"] == 0 and info["frozensets"] == 0
        assert isinstance(info["backend"], dict)
        formula = Knows("a", Or((Prop("p"), Prop("q"))))
        evaluator.extension(formula)
        info = evaluator.cache_info()
        # K[a](p|q), p|q, p, q all cached; only the queried root materialised.
        assert info["formulas"] == 4
        assert info["frozensets"] == 1
        evaluator.clear_cache()
        info = evaluator.cache_info()
        assert info["formulas"] == 0 and info["frozensets"] == 0

    def test_bdd_cache_info_exposes_shared_apply_caches(self, two_agent_structure):
        evaluator = Evaluator(two_agent_structure, backend_by_name("bdd"))
        evaluator.extension(Knows("a", Prop("p")))
        before = evaluator.cache_info()["backend"]
        assert before["nodes"] > 0
        assert before["ite_cache"] + before["op_cache"] > 0
        evaluator.clear_cache()
        after = evaluator.cache_info()["backend"]
        # The operation memos are dropped (including the mask codec memos,
        # which grow with every distinct world-set a long-lived evaluator
        # touches), the unique table survives, and previously computed
        # world-set values stay valid.
        assert after["ite_cache"] == 0 and after["op_cache"] == 0
        assert after["set_memo"] == 0 and after["mask_memo"] == 0
        assert after["nodes"] == before["nodes"]
        reference = Evaluator(two_agent_structure, FrozensetBackend())
        formula = Knows("a", Prop("p"))
        assert evaluator.extension(formula) == reference.extension(formula)

    def test_holds_validates_world(self, two_agent_structure):
        with pytest.raises(ModelError):
            holds(two_agent_structure, "nope", TRUE)


class TestKnowledgeLevelValidation:
    def test_unknown_state_raises_on_every_backend(self, two_agent_structure):
        from repro.analysis import knowledge_level_reached

        class SystemShim:
            structure = two_agent_structure
            states = two_agent_structure.worlds

        for backend in BACKENDS:
            with use_backend(backend):
                with pytest.raises(ModelError):
                    knowledge_level_reached(SystemShim(), "nope", Prop("p"), ("a", "b"))

    @all_backends
    def test_knowledge_levels_agree(self, backend_name, two_agent_structure):
        from repro.analysis import knowledge_level_reached

        class SystemShim:
            structure = two_agent_structure
            states = two_agent_structure.worlds

        formula = Or((Prop("p"), Not(Prop("p"))))
        with use_backend("frozenset"):
            expected = knowledge_level_reached(SystemShim(), "w00", formula, ("a", "b"))
        with use_backend(backend_name):
            actual = knowledge_level_reached(SystemShim(), "w00", formula, ("a", "b"))
        assert actual == expected


class TestLocalGuardValue:
    @all_backends
    def test_uniform_and_non_local_guards(self, backend_name):
        structure = EpistemicStructure(
            ["u", "v", "w"],
            {"a": {"u": {"u", "v"}, "v": {"u", "v"}, "w": {"w"}}},
            {"u": {"p"}, "v": {"p"}, "w": set()},
        )
        evaluator = evaluator_for(structure, backend_name)
        assert local_guard_value(evaluator, {"u", "v"}, Prop("p")) is True
        assert local_guard_value(evaluator, {"w"}, Prop("p")) is False
        assert local_guard_value(evaluator, {"u", "w"}, Prop("p")) is None

    @all_backends
    def test_empty_witness_class_is_vacuously_true(self, backend_name):
        # Regression: the empty class used to fall through to ``False``
        # because the none-inside test ran before the all-inside test.  The
        # guard holds at every world of an empty class, so the uniform value
        # is ``True`` — matching the convention that ``K_a phi`` holds at a
        # local state no reachable global state carries.
        structure = EpistemicStructure(
            ["u"], {"a": {"u": {"u"}}}, {"u": set()}
        )
        evaluator = evaluator_for(structure, backend_name)
        assert local_guard_value(evaluator, (), Prop("p")) is True
        assert local_guard_value(evaluator, (), FALSE) is True


class TestBackendRegistry:
    def test_builtins_are_registered(self):
        names = available_backends()
        assert {"bitset", "frozenset", "bdd"} <= set(names)
        assert names == sorted(names)
        assert backend_by_name("bitset").name == "bitset"
        with pytest.raises(EngineError):
            backend_by_name("no-such-backend")

    def test_bdd_backend_needs_no_optional_dependency(self):
        # The symbolic backend is pure Python: unlike "matrix" it must be
        # available unconditionally.
        assert backend_available("bdd")
        assert backend_by_name("bdd").name == "bdd"

    def test_matrix_backend_listed_iff_numpy_importable(self):
        assert "matrix" in registered_backends()
        assert ("matrix" in available_backends()) == HAS_NUMPY
        assert backend_available("matrix") == HAS_NUMPY

    def test_register_backend_lazy_singleton(self):
        instantiations = []

        class DummyBackend(FrozensetBackend):
            name = "dummy"

            def __init__(self):
                instantiations.append(self)

        register_backend("dummy", DummyBackend)
        try:
            assert "dummy" in available_backends()
            assert not instantiations  # lazy: nothing built at registration
            first = backend_by_name("dummy")
            assert backend_by_name("dummy") is first  # memoised singleton
            assert len(instantiations) == 1
        finally:
            unregister_backend("dummy")
        assert "dummy" not in available_backends()
        assert "dummy" not in registered_backends()

    def test_duplicate_registration_requires_replace(self):
        register_backend("dummy2", FrozensetBackend)
        try:
            with pytest.raises(EngineError, match="dummy2"):
                register_backend("dummy2", BitsetBackend)
            # The rejected re-registration must not have clobbered the
            # original entry (a typo'd name would otherwise silently swap a
            # backend out from under its users).
            assert isinstance(backend_by_name("dummy2"), FrozensetBackend)
            register_backend("dummy2", BitsetBackend, replace=True)
            assert isinstance(backend_by_name("dummy2"), BitsetBackend)
        finally:
            unregister_backend("dummy2")

    def test_builtin_names_are_guarded_against_shadowing(self):
        # A plugin accidentally reusing a built-in name must be rejected,
        # not silently replace the engine.
        for name in ("bitset", "frozenset", "matrix", "bdd"):
            with pytest.raises(EngineError):
                register_backend(name, FrozensetBackend)

    def test_unavailable_backend_is_hidden_and_refuses_instantiation(self):
        register_backend("phantom", FrozensetBackend, available=lambda: False)
        try:
            assert "phantom" not in available_backends()
            assert "phantom" in registered_backends()
            assert not backend_available("phantom")
            with pytest.raises(EngineError):
                backend_by_name("phantom")
        finally:
            unregister_backend("phantom")

    def test_failing_availability_predicate_counts_as_unavailable(self):
        def broken():
            raise RuntimeError("dependency probe exploded")

        register_backend("broken", FrozensetBackend, available=broken)
        try:
            assert "broken" not in available_backends()
            assert not backend_available("broken")
        finally:
            unregister_backend("broken")

    def test_unregistering_unknown_or_default_backend_raises(self):
        with pytest.raises(EngineError):
            unregister_backend("no-such-backend")
        default_name = get_default_backend().name
        with pytest.raises(EngineError):
            unregister_backend(default_name)
        assert default_name in available_backends()


class TestBackendSelection:
    def test_default_backend_matches_environment(self):
        # The process default is bitset unless the suite itself is being run
        # under a REPRO_SET_BACKEND override (the CI matrix does this).
        expected = os.environ.get("REPRO_SET_BACKEND", "bitset")
        assert get_default_backend().name == expected

    def test_use_backend_restores_previous_default(self):
        before = get_default_backend()
        with use_backend("frozenset") as backend:
            assert backend.name == "frozenset"
            assert get_default_backend() is backend
        assert get_default_backend() is before

    def test_set_default_backend_accepts_instances_and_names(self):
        previous = set_default_backend("frozenset")
        try:
            assert get_default_backend().name == "frozenset"
        finally:
            set_default_backend(previous)
        assert get_default_backend() is previous


class TestLazyNumpyImport:
    def test_importing_the_engine_does_not_import_numpy(self):
        # The matrix backend's module (and NumPy) must only load when the
        # backend is actually requested, never as a side effect of importing
        # the engine — environments without NumPy rely on this.
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env.pop("REPRO_SET_BACKEND", None)  # a matrix default would import numpy
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys; import repro.engine; "
            "assert 'numpy' not in sys.modules, 'numpy imported eagerly'; "
            "assert 'repro.engine.matrix' not in sys.modules; "
            # A star-import must not resolve MatrixBackend through
            # __getattr__ either — that would pull NumPy in eagerly and
            # crash outright in NumPy-less environments.
            "exec('from repro.engine import *'); "
            "assert 'numpy' not in sys.modules, 'star-import pulled numpy in'"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_matrix_backend_attribute_loads_lazily(self):
        from repro.engine import MatrixBackend

        assert backend_by_name("matrix").__class__ is MatrixBackend

    def test_unknown_engine_attribute_raises(self):
        import repro.engine

        with pytest.raises(AttributeError):
            repro.engine.does_not_exist


class TestEmptyGroupRelations:
    def test_empty_intersection_is_the_full_relation(self, two_agent_structure):
        # Regression: this used to crash with IndexError on per_agent[0].
        relation = two_agent_structure.group_relation((), mode="intersection")
        all_worlds = frozenset(two_agent_structure.worlds)
        assert relation == {world: all_worlds for world in two_agent_structure.worlds}

    def test_empty_union_is_the_empty_relation(self, two_agent_structure):
        relation = two_agent_structure.group_relation((), mode="union")
        assert relation == {world: frozenset() for world in two_agent_structure.worlds}

    @all_backends
    def test_backends_agree_on_empty_group_operators(
        self, backend_name, two_agent_structure
    ):
        structure = two_agent_structure
        reference = FrozensetBackend()
        candidate = backend_by_name(backend_name)
        inner_worlds = frozenset(
            world for world in structure.worlds if structure.label_holds(world, "p")
        )
        inner = candidate.from_worlds(structure, inner_worlds)
        assert candidate.to_frozenset(
            structure, candidate.distributed_knows(structure, (), inner)
        ) == reference.distributed_knows(structure, (), inner_worlds)
        assert candidate.to_frozenset(
            structure, candidate.everyone_knows(structure, (), inner)
        ) == reference.everyone_knows(structure, (), inner_worlds)
