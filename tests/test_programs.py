"""Tests for standard and knowledge-based program syntax (:mod:`repro.programs`)."""

import pytest

from repro.logic import parse
from repro.logic.formula import Knows, Prop
from repro.modeling import ranged, var
from repro.programs import (
    AgentProgram,
    Clause,
    KnowledgeBasedProgram,
    StandardAgentProgram,
    StandardProgram,
)
from repro.systems.actions import NOOP_NAME
from repro.util.errors import ProgramError


class TestClause:
    def test_formula_guard(self):
        clause = Clause(parse("K[a] p"), "go")
        assert clause.guard == Knows("a", Prop("p"))
        assert clause.action == "go"

    def test_expression_guard_is_compiled(self):
        x = ranged("x", 0, 2)
        clause = Clause(var(x) != 1, "go")
        assert clause.guard.atoms() == {"x=0", "x=2"}

    def test_invalid_guard_rejected(self):
        with pytest.raises(ProgramError):
            Clause(42, "go")

    def test_empty_action_rejected(self):
        with pytest.raises(ProgramError):
            Clause(parse("p"), "")

    def test_equality(self):
        assert Clause(parse("p"), "go") == Clause(parse("p"), "go")
        assert Clause(parse("p"), "go") != Clause(parse("q"), "go")


class TestAgentProgram:
    def test_actions_include_fallback(self):
        program = AgentProgram("a", [(parse("K[a] p"), "go")])
        assert program.actions() == ("go", NOOP_NAME)

    def test_actions_deduplicated(self):
        program = AgentProgram(
            "a", [(parse("K[a] p"), "go"), (parse("K[a] q"), "go")], fallback="go"
        )
        assert program.actions() == ("go",)

    def test_guards(self):
        program = AgentProgram("a", [(parse("K[a] p"), "go"), (parse("M[a] q"), "stop")])
        assert program.guards() == (parse("K[a] p"), parse("M[a] q"))

    def test_knowledge_subformulas(self):
        program = AgentProgram("a", [(parse("K[a] p & !K[a] M[b] q"), "go")])
        subs = program.knowledge_subformulas()
        assert parse("K[a] p") in subs
        assert parse("M[b] q") in subs

    def test_mentions_only_own_knowledge(self):
        own = AgentProgram("a", [(parse("K[a] K[b] p"), "go")])
        assert own.mentions_only_own_knowledge()
        foreign = AgentProgram("a", [(parse("K[b] p"), "go")])
        assert not foreign.mentions_only_own_knowledge()

    def test_syntactic_locality(self):
        program = AgentProgram("a", [(parse("mine & K[a] other"), "go")])
        assert program.syntactically_local(local_propositions={"mine"})
        assert not program.syntactically_local(local_propositions=set())

    def test_describe_contains_clauses(self):
        program = AgentProgram("a", [(parse("K[a] p"), "go")])
        text = program.describe()
        assert "K[a] p" in text and "go" in text

    def test_invalid_agent_name(self):
        with pytest.raises(ProgramError):
            AgentProgram("", [(parse("p"), "go")])


class TestKnowledgeBasedProgram:
    def test_lookup_by_agent(self):
        program = KnowledgeBasedProgram(
            [AgentProgram("a", [(parse("K[a] p"), "go")]), AgentProgram("b", [])]
        )
        assert program.program("a").agent == "a"
        assert program["b"].agent == "b"
        assert set(program.agents) == {"a", "b"}

    def test_duplicate_agent_rejected(self):
        with pytest.raises(ProgramError):
            KnowledgeBasedProgram([AgentProgram("a", []), AgentProgram("a", [])])

    def test_unknown_agent_lookup_raises(self):
        program = KnowledgeBasedProgram([AgentProgram("a", [])])
        with pytest.raises(ProgramError):
            program.program("z")

    def test_guards_across_agents(self):
        program = KnowledgeBasedProgram(
            [
                AgentProgram("a", [(parse("K[a] p"), "go")]),
                AgentProgram("b", [(parse("K[b] q"), "go")]),
            ]
        )
        assert set(program.guards()) == {parse("K[a] p"), parse("K[b] q")}

    def test_check_against_context(self, counter_context):
        ok = KnowledgeBasedProgram(
            [AgentProgram("agent", [(parse("K[agent] c=0"), "inc")])]
        )
        assert ok.check_against_context(counter_context) is ok

    def test_check_against_context_unknown_agent(self, counter_context):
        program = KnowledgeBasedProgram([AgentProgram("ghost", [])])
        with pytest.raises(ProgramError):
            program.check_against_context(counter_context)

    def test_check_against_context_unknown_action(self, counter_context):
        program = KnowledgeBasedProgram(
            [AgentProgram("agent", [(parse("K[agent] c=0"), "jump")])]
        )
        with pytest.raises(ProgramError):
            program.check_against_context(counter_context)

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            KnowledgeBasedProgram([])


class TestStandardPrograms:
    def test_expression_test_on_local_state(self):
        x = ranged("c", 0, 3)
        program = StandardAgentProgram("agent", [(var(x) < 2, "inc")])
        assert program.enabled_actions((("c", 1),)) == frozenset({"inc"})
        assert program.enabled_actions((("c", 2),)) == frozenset({NOOP_NAME})

    def test_callable_test(self):
        program = StandardAgentProgram(
            "agent", [(lambda local: dict(local)["c"] == 0, "inc")]
        )
        assert program.enabled_actions((("c", 0),)) == frozenset({"inc"})

    def test_true_test(self):
        program = StandardAgentProgram("agent", [(True, "inc")])
        assert program.enabled_actions(()) == frozenset({"inc"})

    def test_invalid_test_rejected(self):
        with pytest.raises(ProgramError):
            StandardAgentProgram("agent", [("not callable", "inc")])

    def test_no_fallback_raises_when_nothing_enabled(self):
        program = StandardAgentProgram("agent", [(lambda local: False, "inc")], fallback=None)
        with pytest.raises(ProgramError):
            program.enabled_actions(())

    def test_to_protocol_and_generation(self, counter_context):
        from repro.systems import represent

        x = counter_context.spec.state_space.variable("c")
        program = StandardProgram(
            [StandardAgentProgram("agent", [(var(x) < 3, "inc")])]
        )
        system = represent(counter_context, program.to_joint_protocol(counter_context))
        assert len(system) == 4

    def test_missing_agents_get_noop(self, counter_context):
        program = StandardProgram([StandardAgentProgram("agent", [])])
        joint = program.to_joint_protocol(counter_context)
        assert joint.actions("agent", (("c", 0),)) == frozenset({NOOP_NAME})
