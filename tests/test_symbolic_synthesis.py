"""Symbolic-vs-explicit synthesis agreement.

The search/check layer dispatches on model kind
(:mod:`repro.interpretation.synthesis`): handed a
:class:`repro.symbolic.model.SymbolicContextModel`, the fixed-point test
compares protocols by class-BDD node-id signatures and the exhaustive
search enumerates candidate reachable sets as BDDs restricted to the
liberal-reachable universe.  These tests pin the two carriers to each
other — classification, implementation sets, check verdicts and even the
reported differences must agree on the paper's examples, under every
registered world-set backend — plus the deterministic ordering of
multi-implementation results and the dispatch plumbing itself.
"""

import pytest

from repro.engine import available_backends, use_backend
from repro.interpretation import (
    ImplementationSearchResult,
    SymbolicImplementationReport,
    SymbolicSystem,
    check_implementation,
    classify_program,
    construct_by_rounds,
    derive_protocol,
    enumerate_implementations,
    implements,
    liberal_protocol,
    restrictive_protocol,
    search,
)
from repro.protocols import bit_transmission as bt
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs
from repro.util.errors import InterpretationError, ProgramError

BACKENDS = available_backends()
all_backends = pytest.mark.parametrize("backend_name", BACKENDS)


def _x_values(states):
    return frozenset(state.as_dict()["x"] for state in states)


def _local_behaviours(protocol, system):
    """The full behaviour table of a protocol on a system's local states,
    as a comparable dict."""
    table = {}
    for agent in system.agents:
        for local_state in system.local_states(agent):
            table[(agent, local_state)] = frozenset(
                map(str, protocol.actions(agent, local_state))
            )
    return table


class TestSearchAgreement:
    """Classification and implementation sets must match between the
    enumerating and the symbolic search on the paper's examples."""

    @all_backends
    @pytest.mark.parametrize("name", sorted(vs.PROGRAM_FAMILY))
    def test_variable_setting_family(self, backend_name, name):
        factory, expected = vs.PROGRAM_FAMILY[name]
        with use_backend(backend_name):
            explicit = enumerate_implementations(factory(), vs.context())
            symbolic = enumerate_implementations(factory(), vs.symbolic_model())
        assert explicit.classification == expected
        assert symbolic.classification == expected
        # Same reachable sets in the same (deterministically tie-broken)
        # order — lists, not sets: the ordering is part of the contract.
        assert [
            _x_values(states) for states in explicit.reachable_sets()
        ] == [_x_values(states) for states in symbolic.reachable_sets()]

    def test_bit_transmission_unique_implementation(self):
        # One head-to-head under the default backend: the explicit search
        # enumerates all 2^14 candidate subsets of the global state space
        # here, so cross-backend coverage of the search loop is left to the
        # (small) variable-setting family above.
        explicit = enumerate_implementations(bt.program(), bt.context())
        symbolic = enumerate_implementations(bt.program(), bt.symbolic_model())
        assert explicit.classification == symbolic.classification == "unique"
        exp_protocol, exp_system = explicit.unique()
        sym_protocol, sym_system = symbolic.unique()
        assert frozenset(exp_system.states) == frozenset(sym_system.iter_states())
        # The symbolic candidate universe (liberal-reachable) is far
        # smaller than the full state space the explicit search sweeps.
        assert symbolic.candidates_checked < explicit.candidates_checked
        # The unique implementations behave identically at every arising
        # local state.
        assert _local_behaviours(exp_protocol, exp_system) == _local_behaviours(
            sym_protocol, sym_system
        )

    def test_classify_program_dispatches(self):
        factory, expected = vs.PROGRAM_FAMILY["cyclic"]
        assert classify_program(factory(), vs.symbolic_model()) == expected
        assert classify_program(factory(), vs.context()) == expected

    def test_search_is_enumerate_implementations(self):
        result = search(bt.program(), bt.symbolic_model())
        assert isinstance(result, ImplementationSearchResult)
        assert result.classification == "unique"

    def test_symbolic_universe_override(self):
        # Passing the explicit global state space as the candidate universe
        # must not change the outcome (the liberal-reachable default is a
        # subset of it containing every implementation's reachable set).
        model = vs.symbolic_model()
        spec_states = list(vs.context().spec.state_space.states())
        default = enumerate_implementations(vs.PROGRAM_FAMILY["cyclic"][0](), model)
        overridden = enumerate_implementations(
            vs.PROGRAM_FAMILY["cyclic"][0](),
            vs.symbolic_model(),
            all_states=spec_states,
        )
        assert default.classification == overridden.classification == "multiple"
        assert [
            _x_values(states) for states in default.reachable_sets()
        ] == [_x_values(states) for states in overridden.reachable_sets()]

    def test_symbolic_search_size_limit(self):
        with pytest.raises(InterpretationError, match="search space too large"):
            enumerate_implementations(
                bt.program(), bt.symbolic_model(), max_free_states=3
            )


class TestCheckAgreement:
    """Check verdicts (and reported differences) must match between the
    enumerating and the symbolic fixed-point test."""

    @all_backends
    def test_bit_transmission_verdicts_and_differences(self, backend_name):
        with use_backend(backend_name):
            prog = bt.program()
            context = bt.context()
            model = bt.symbolic_model()
            implementation = construct_by_rounds(prog, context).protocol
            for protocol in (
                implementation,
                liberal_protocol(prog, context),
                restrictive_protocol(prog, context),
            ):
                explicit = check_implementation(protocol, prog, context)
                symbolic = check_implementation(protocol, prog, model)
                assert explicit.is_implementation == symbolic.is_implementation
                assert sorted(explicit.differences) == sorted(symbolic.differences)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_muddy_children_cross_representation(self, n):
        prog_explicit = mc.program(n)
        context = mc.context(n)
        model = mc.symbolic_model(n)
        prog_symbolic = mc.program(n).check_against_context(model)

        explicit_result = construct_by_rounds(prog_explicit, context)
        symbolic_result = construct_by_rounds(prog_symbolic, model)
        assert explicit_result.verified and symbolic_result.verified

        # Explicit protocol checked over the symbolic model (the lazy
        # per-class evaluation path) and the symbolic protocol checked over
        # the explicit context: both directions must confirm the
        # implementation, and both systems must coincide.
        cross_symbolic = check_implementation(
            explicit_result.protocol, prog_symbolic, model
        )
        cross_explicit = check_implementation(
            symbolic_result.protocol, prog_explicit, context
        )
        assert cross_symbolic.is_implementation
        assert cross_explicit.is_implementation
        assert cross_symbolic.differences == []
        assert cross_symbolic.system.state_count() == len(explicit_result.system.states)
        assert frozenset(cross_symbolic.system.iter_states()) == frozenset(
            explicit_result.system.states
        )

    @pytest.mark.parametrize("n", [2, 3])
    def test_muddy_children_non_implementation_agrees(self, n):
        prog = mc.program(n)
        context = mc.context(n)
        model = mc.symbolic_model(n)
        broken = restrictive_protocol(prog, context)
        explicit = check_implementation(broken, prog, context)
        symbolic = check_implementation(broken, prog, model)
        assert explicit.is_implementation == symbolic.is_implementation is False
        assert sorted(explicit.differences) == sorted(symbolic.differences)

    def test_implements_dispatches(self):
        prog = bt.program()
        model = bt.symbolic_model()
        protocol = construct_by_rounds(prog, model).protocol
        assert implements(protocol, prog, model)
        assert not implements(liberal_protocol(prog, bt.context()), prog, model)


class TestDispatchPlumbing:
    def test_max_states_routed_transparently(self):
        # max_states bounds explicit materialisation only; the symbolic path
        # must accept (and ignore) it rather than failing opaquely.
        prog = bt.program()
        model = bt.symbolic_model()
        protocol = construct_by_rounds(prog, model).protocol
        report = check_implementation(protocol, prog, model, max_states=1)
        assert report.is_implementation
        result = enumerate_implementations(prog, bt.symbolic_model(), max_states=1)
        assert result.classification == "unique"

    def test_symbolic_report_type_and_describe(self):
        prog = bt.program()
        model = bt.symbolic_model()
        report = check_implementation(
            liberal_protocol(prog, bt.context()), prog, model
        )
        assert isinstance(report, SymbolicImplementationReport)
        assert isinstance(report.system, SymbolicSystem)
        assert not report
        assert "not an implementation" in report.describe()
        assert len(report.system) == report.system.state_count()

    def test_derive_protocol_dispatches_on_symbolic_views(self):
        prog = bt.program()
        context = bt.context()
        model = bt.symbolic_model()
        explicit_system = construct_by_rounds(prog, context).system
        symbolic_system = construct_by_rounds(prog, model).system
        explicit_derived = derive_protocol(prog, explicit_system)
        symbolic_derived = derive_protocol(prog, symbolic_system)
        assert symbolic_derived.selection_nodes  # the class-BDD fast path
        assert _local_behaviours(explicit_derived, explicit_system) == {
            key: frozenset(map(str, symbolic_derived.actions(*key)))
            for key in _local_behaviours(explicit_derived, explicit_system)
        }

    def test_derive_protocol_symbolic_no_fallback_raises(self):
        prog = bt.program()
        model = bt.symbolic_model()
        system = construct_by_rounds(prog, model).system
        strict = derive_protocol(prog, system, fallback_on_unknown=False)
        unreachable_local = (("rbit", True), ("snt", False))
        with pytest.raises(ProgramError):
            strict.actions("R", unreachable_local)
        relaxed = derive_protocol(prog, system, fallback_on_unknown=True)
        assert relaxed.actions("R", unreachable_local)


class TestResultOrdering:
    """`ImplementationSearchResult.implementations` orders by reachable-set
    size with a deterministic tie-break — stable across input order,
    backends and runs."""

    def _cyclic_result(self):
        factory, _ = vs.PROGRAM_FAMILY["cyclic"]
        return enumerate_implementations(factory(), vs.context())

    def test_tie_break_is_input_order_independent(self):
        result = self._cyclic_result()
        assert len(result) == 2  # two equal-size implementations: a real tie
        pairs = list(result.implementations)
        assert [len(s) for _, s in pairs] == [2, 2]
        reordered = ImplementationSearchResult(list(reversed(pairs)), 0)
        assert reordered.implementations == result.implementations

    def test_tie_break_orders_by_state_content(self):
        result = self._cyclic_result()
        # x=1 sorts before x=2, whatever order the search found them in.
        assert [_x_values(states) for states in result.reachable_sets()] == [
            frozenset({0, 1}),
            frozenset({0, 2}),
        ]

    @all_backends
    def test_order_stable_across_backends_and_carriers(self, backend_name):
        factory, _ = vs.PROGRAM_FAMILY["cyclic"]
        with use_backend(backend_name):
            explicit = enumerate_implementations(factory(), vs.context())
            symbolic = enumerate_implementations(factory(), vs.symbolic_model())
        expected = [frozenset({0, 1}), frozenset({0, 2})]
        assert [_x_values(states) for states in explicit.reachable_sets()] == expected
        assert [_x_values(states) for states in symbolic.reachable_sets()] == expected
