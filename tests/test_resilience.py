"""Budgets, partial results, resume, and the mitigation ladder.

Covers the :mod:`repro.resilience` governance layer end-to-end: budget
semantics (deadline, node ceiling, iteration ceiling, cancellation,
ambient nesting, environment arming), the ``BudgetExceededError`` taxonomy
(structured diagnostics plus a resumable :class:`PartialProgress`), the
kill/resume round trips of every governed loop, and the node-pressure
mitigation ladder up to the symbolic→explicit fallback.
"""

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro import obs, resilience
from repro.interpretation import (
    construct_by_rounds,
    enumerate_implementations,
    iterate_interpretation,
)
from repro.obs.sinks import RecordingSink
from repro.protocols import bit_transmission as bt
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs
from repro.resilience import Budget, CancellationToken, PartialProgress, activate
from repro.util.errors import (
    BudgetExceededError,
    EngineError,
    InterpretationError,
    IterationLimitError,
    ReproError,
)


@pytest.fixture(autouse=True)
def _no_leaked_budget():
    # A process-wide ambient budget (REPRO_BUDGET_* in the environment, as
    # in the budget-armed CI leg) is legitimate; only budgets a test pushed
    # on top of the baseline count as leaks.
    baseline = resilience.current_budget()
    yield
    assert resilience.current_budget() is baseline, "a test leaked an installed budget"


def _record_events():
    sink = RecordingSink(kinds=("event",))
    obs.add_sink(sink)
    return sink


# -- the error taxonomy ------------------------------------------------------------------


def test_budget_exceeded_error_shape():
    error = BudgetExceededError(
        "boom", reason="nodes", site="construct.round", diagnostics={"x": 1}
    )
    assert isinstance(error, ReproError)
    assert error.reason == "nodes"
    assert error.site == "construct.round"
    assert error.diagnostics == {"x": 1}
    assert error.partial is None
    error.attach_partial("p1")
    error.attach_partial("p2")  # first attachment wins
    assert error.partial == "p1"


def test_iteration_limit_error_is_interpretation_error():
    # Loop-limit failures were InterpretationError before the taxonomy was
    # unified; existing `except InterpretationError` handlers must keep
    # working.
    error = IterationLimitError("limit", reason="iterations", site="fixpoint.iter")
    assert isinstance(error, InterpretationError)
    assert isinstance(error, BudgetExceededError)


def test_budget_parameter_validation():
    with pytest.raises(EngineError):
        Budget(wall_seconds=0)
    with pytest.raises(EngineError):
        Budget(node_limit=0)
    with pytest.raises(EngineError):
        Budget(max_iterations=0)
    with pytest.raises(EngineError):
        Budget(node_slack=0.5)


# -- installation and the ambient stack --------------------------------------------------


def test_ambient_stack_nesting_and_active_flag():
    # Under the budget-armed CI leg a process-wide env budget is already on
    # the stack; nesting must restore exactly that baseline.
    baseline = resilience.current_budget()
    assert resilience.ACTIVE == (baseline is not None)
    outer = Budget(max_iterations=10)
    inner = Budget(max_iterations=5)
    with outer:
        assert resilience.ACTIVE
        assert resilience.current_budget() is outer
        with inner:
            assert resilience.current_budget() is inner
        assert resilience.current_budget() is outer
    assert resilience.current_budget() is baseline
    assert resilience.ACTIVE == (baseline is not None)


def test_activate_prefers_explicit_over_ambient():
    ambient = Budget(max_iterations=10)
    explicit = Budget(max_iterations=5)
    with ambient:
        with activate(None) as bud:
            assert bud is ambient
        with activate(explicit) as bud:
            assert bud is explicit
            assert resilience.current_budget() is explicit
        assert resilience.current_budget() is ambient
    with activate(None) as bud:
        assert bud is resilience.current_budget()  # env baseline or None


def test_deadline_spans_budget_lifetime():
    # The clock starts at the first install and re-entering never resets it.
    budget = Budget(wall_seconds=1000.0)
    with budget:
        first = budget.deadline
    time.sleep(0.01)
    with budget:
        assert budget.deadline == first


def test_environment_budget_arms_process():
    code = textwrap.dedent(
        """
        import repro
        from repro import resilience
        bud = resilience.current_budget()
        assert bud is not None and resilience.ACTIVE
        print(bud.max_iterations, bud.node_limit)
        """
    )
    env = dict(os.environ, REPRO_BUDGET_ITERATIONS="7", REPRO_BUDGET_NODES="123")
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.split() == ["7", "123"]


# -- tick semantics ----------------------------------------------------------------------


def test_tick_cancellation():
    token = CancellationToken()
    budget = Budget(token=token)
    with budget:
        budget.tick("fixpoint.iter")  # not cancelled yet: no raise
        token.cancel()
        with pytest.raises(BudgetExceededError) as caught:
            budget.tick("fixpoint.iter", partial="progress")
    assert caught.value.reason == "cancelled"
    assert caught.value.partial == "progress"


def test_tick_deadline():
    budget = Budget(wall_seconds=0.005)
    with budget:
        time.sleep(0.02)
        with pytest.raises(BudgetExceededError) as caught:
            budget.tick("construct.round")
    assert caught.value.reason == "deadline"
    assert caught.value.site == "construct.round"
    assert caught.value.diagnostics["wall_seconds"] == 0.005


def test_tick_iterations_and_lazy_partial():
    budget = Budget(max_iterations=3)
    with budget:
        budget.tick("fixpoint.iter", iterations=2)
        with pytest.raises(BudgetExceededError) as caught:
            budget.tick("fixpoint.iter", iterations=3, partial=lambda: ["thunked"])
    assert caught.value.reason == "iterations"
    assert caught.value.partial == ["thunked"]  # thunks resolve at raise time
    assert caught.value.diagnostics["iterations"] == 3


def test_kernel_node_ceiling_raises_mid_operation():
    from repro.symbolic.bdd import BDD

    budget = Budget(node_limit=8, node_slack=1.0, check_interval=1, mitigate=False)
    with budget:
        bdd = BDD(16)  # registered after install: armed via the hook
        assert bdd._budget is budget
        with pytest.raises(BudgetExceededError) as caught:
            node = bdd.var(0)
            for var in range(1, 16):
                node = bdd.or_(node, bdd.var(var))
    assert caught.value.reason == "nodes"
    assert caught.value.site == "bdd.unique_growth"
    assert caught.value.diagnostics["live_nodes"] > 8
    # The raise left the manager fully consistent.
    from repro.resilience.faults import check_kernel_invariants

    check_kernel_invariants(bdd)


# -- partial + resume round trips: every governed loop -----------------------------------


def test_symbolic_construct_kill_and_resume_reaches_same_fixed_point():
    model = mc.symbolic_model(6)
    program = mc.program(6).check_against_context(model)
    budget = Budget(max_iterations=2)
    with pytest.raises(BudgetExceededError) as caught:
        construct_by_rounds(program, model, budget=budget)
    partial = caught.value.partial
    assert isinstance(partial, PartialProgress)
    assert partial.kind == "construct_by_rounds_symbolic"
    assert partial.rounds == 2

    resumed = construct_by_rounds(program, model, resume=partial)
    fresh = construct_by_rounds(program, model)
    assert resumed.verified and fresh.verified
    assert resumed.iterations == fresh.iterations
    assert resumed.system.state_count() == fresh.system.state_count()
    # Same manager, canonical nodes: identical reachable-set node id.
    assert resumed.system.states_node == fresh.system.states_node


def test_explicit_construct_kill_and_resume():
    context = mc.context(4)
    program = mc.program(4).check_against_context(context)
    budget = Budget(max_iterations=2)
    with pytest.raises(BudgetExceededError) as caught:
        construct_by_rounds(program, context, budget=budget)
    partial = caught.value.partial
    assert partial.kind == "construct_by_rounds"
    assert partial.rounds == 2
    resumed = construct_by_rounds(program, context, resume=partial)
    fresh = construct_by_rounds(program, context)
    assert resumed.verified and fresh.verified
    assert resumed.iterations == fresh.iterations
    assert set(resumed.system.states) == set(fresh.system.states)


def test_explicit_iterate_kill_and_resume():
    context = vs.context()
    program = vs.PROGRAM_FAMILY["cyclic"][0]()
    budget = Budget(max_iterations=1)
    with pytest.raises(BudgetExceededError) as caught:
        iterate_interpretation(program, context, budget=budget)
    partial = caught.value.partial
    assert partial.kind == "iterate_interpretation"
    resumed = iterate_interpretation(program, context, resume=partial)
    fresh = iterate_interpretation(program, context)
    assert resumed.converged == fresh.converged
    assert resumed.iterations == fresh.iterations  # iteration counts are absolute
    assert set(resumed.system.states) == set(fresh.system.states)


def test_symbolic_iterate_kill_and_resume():
    model = vs.symbolic_model()
    program = vs.PROGRAM_FAMILY["cyclic"][0]()
    budget = Budget(max_iterations=1)
    with pytest.raises(BudgetExceededError) as caught:
        iterate_interpretation(program, model, budget=budget)
    partial = caught.value.partial
    assert partial.kind == "iterate_interpretation_symbolic"
    resumed = iterate_interpretation(program, model, resume=partial)
    fresh = iterate_interpretation(program, model)
    assert resumed.converged == fresh.converged
    assert resumed.system.state_count() == fresh.system.state_count()


def test_resume_rejects_foreign_partial():
    model = vs.symbolic_model()
    program = vs.PROGRAM_FAMILY["cyclic"][0]()
    with pytest.raises(InterpretationError):
        iterate_interpretation(
            program, model, resume=PartialProgress("construct_by_rounds", rounds=1)
        )


def test_loop_limit_raises_carry_partials():
    context = vs.context()
    program = vs.PROGRAM_FAMILY["cyclic"][0]()
    # The variable-setting cyclic program oscillates; forbidding enough
    # iterations to detect the cycle turns the old bare InterpretationError
    # into an IterationLimitError with the last iterate attached.
    with pytest.raises(IterationLimitError) as caught:
        iterate_interpretation(program, context, max_iterations=1)
    assert caught.value.reason == "iterations"
    assert caught.value.partial.kind == "iterate_interpretation"
    with pytest.raises(InterpretationError):  # compat: old handlers still work
        iterate_interpretation(program, context, max_iterations=1)


def test_synthesis_search_budget_tick():
    token = CancellationToken()
    token.cancel()
    with pytest.raises(BudgetExceededError) as caught:
        enumerate_implementations(
            vs.PROGRAM_FAMILY["cyclic"][0](), vs.context(), budget=Budget(token=token)
        )
    assert caught.value.reason == "cancelled"
    assert caught.value.partial.kind == "synthesis.search"


def test_ctlk_symbolic_cancellation():
    from repro.temporal import EF
    from repro.temporal.ctlk import CTLKModelChecker

    model = mc.symbolic_model(5)
    program = mc.program(5).check_against_context(model)
    system = construct_by_rounds(program, model).system
    checker = CTLKModelChecker(system)
    token = CancellationToken()
    token.cancel()
    with Budget(token=token):
        with pytest.raises(BudgetExceededError):
            checker.valid(EF(mc.said_prop(0)))


# -- the mitigation ladder ---------------------------------------------------------------


def test_mitigation_ladder_reorder_then_fallback():
    model = bt.symbolic_model()
    program = bt.program().check_against_context(model)
    sink = _record_events()
    try:
        budget = Budget(node_limit=4, node_slack=1.0, check_interval=1)
        result = construct_by_rounds(program, model, budget=budget)
    finally:
        obs.remove_sink(sink)
    # The ceiling is absurd for any BDD, but the universe is enumerable:
    # the ladder ends in the explicit backend and the construction succeeds.
    assert result.verified
    assert type(result.system).__name__ == "InterpretedSystem"
    steps = [
        record["attrs"]["step"]
        for record in sink.records
        if record["name"] == "resilience.mitigate"
    ]
    assert "reorder" in steps
    assert steps[-1] == "fallback"


def test_mitigation_disabled_raises_immediately():
    model = bt.symbolic_model()
    program = bt.program().check_against_context(model)
    budget = Budget(node_limit=4, node_slack=1.0, check_interval=1, mitigate=False)
    with pytest.raises(BudgetExceededError) as caught:
        construct_by_rounds(program, model, budget=budget)
    assert caught.value.reason == "nodes"


def test_fallback_respects_max_states():
    # An enumerable universe that the caller's max_states forbids: the raise
    # must propagate instead of degrading.
    model = bt.symbolic_model()
    program = bt.program().check_against_context(model)
    budget = Budget(node_limit=4, node_slack=1.0, check_interval=1)
    with pytest.raises(BudgetExceededError):
        construct_by_rounds(program, model, budget=budget, max_states=1)


def test_rooted_reorder_declares_encoding_groups():
    model = mc.symbolic_model(4)  # built with reordering off: no groups yet
    bdd = model.encoding.bdd
    assert bdd.variable_groups() is None
    resilience.rooted_reorder(
        bdd, model.reorder_roots(), model.encoding.reorder_groups()
    )
    groups = bdd.variable_groups()
    assert groups is not None
    # The current/primed pairs stayed adjacent units.
    assert all(len(group) == 2 for group in groups if len(group) > 1)
    # The model still constructs correctly after the mitigation reorder.
    program = mc.program(4).check_against_context(model)
    assert construct_by_rounds(program, model).verified


# -- acceptance: muddy children n=20 -----------------------------------------------------


def test_muddy_n20_node_ceiling_kill_then_resume_to_identical_fixed_point():
    model = mc.symbolic_model(20)
    program = mc.program(20).check_against_context(model)
    budget = Budget(
        node_limit=50_000, node_slack=1.0, check_interval=256, mitigate=False
    )
    with pytest.raises(BudgetExceededError) as caught:
        construct_by_rounds(program, model, budget=budget)
    error = caught.value
    assert error.reason == "nodes"
    assert error.diagnostics["live_nodes"] > 50_000
    partial = error.partial
    assert partial.kind == "construct_by_rounds_symbolic"
    assert partial.rounds >= 1  # completed rounds survive the kill

    resumed = construct_by_rounds(program, model, resume=partial)
    fresh = construct_by_rounds(program, model)
    assert resumed.verified and fresh.verified
    assert resumed.iterations == fresh.iterations == 22
    assert resumed.system.states_node == fresh.system.states_node
    assert resumed.system.state_count() == fresh.system.state_count()


# -- satellite: JsonlSink atexit flush ---------------------------------------------------


def test_jsonl_sink_flushes_at_interpreter_exit(tmp_path):
    trace = tmp_path / "trace.jsonl"
    code = textwrap.dedent(
        f"""
        from repro import obs
        from repro.obs.sinks import JsonlSink
        sink = JsonlSink({str(trace)!r})
        obs.add_sink(sink)
        obs.event("test.exit", value=1)
        # No close(), no remove_sink: atexit must flush and close the file.
        """
    )
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert result.returncode == 0, result.stderr
    lines = [json.loads(line) for line in trace.read_text().splitlines()]
    assert any(record["name"] == "test.exit" for record in lines)


# -- satellite: per-spec fuzz deadlines --------------------------------------------------


def test_fuzz_spec_deadline_counts_timeouts():
    from repro.spec.fuzz import run_fuzz

    # A deadline no check can meet: every spec times out, none raises out.
    summary = run_fuzz(count=3, seed=0, spec_deadline=1e-6)
    assert summary["timed_out"] == 3
    assert summary["checked"] == 3

    # A generous deadline changes nothing about the outcome counts.
    governed = run_fuzz(count=5, seed=1, spec_deadline=120.0)
    free = run_fuzz(count=5, seed=1)
    assert governed["timed_out"] == 0
    for key in ("converged", "failed_cleanly", "states_total"):
        assert governed[key] == free[key]


def test_fuzz_partial_round_trips_on_seeded_specs():
    import random

    from repro.spec.fuzz import random_spec

    rng = random.Random(7)
    exercised = 0
    for index in range(12):
        spec = random_spec(rng, name=f"resume-{index}")
        model = spec.symbolic_model()
        try:
            program = spec.program().check_against_context(model)
            fresh = construct_by_rounds(program, model)
        except Exception:
            continue  # non-constructible spec: nothing to resume
        if fresh.iterations < 2:
            continue
        with pytest.raises(BudgetExceededError) as caught:
            construct_by_rounds(program, model, budget=Budget(max_iterations=1))
        resumed = construct_by_rounds(program, model, resume=caught.value.partial)
        assert resumed.verified == fresh.verified
        assert resumed.iterations == fresh.iterations
        assert resumed.system.states_node == fresh.system.states_node
        exercised += 1
    assert exercised >= 3  # the seed must actually exercise the round trip
