"""End-to-end tests of the paper's running examples: the bit-transmission
problem (E1) and the variable-setting family (E2)."""

import pytest

from repro.interpretation import (
    check_implementation,
    construct_by_rounds,
    enumerate_implementations,
    iterate_interpretation,
    sufficient_conditions_report,
)
from repro.protocols import bit_transmission as bt
from repro.protocols import variable_setting as vs
from repro.temporal import CTLKModelChecker


class TestBitTransmission:
    @pytest.fixture(scope="class")
    def solution(self):
        return bt.solve("iterate")

    def test_converges_quickly(self, solution):
        assert solution.converged
        assert solution.iterations <= 5

    def test_reachable_state_space_matches_paper(self, solution):
        labellings = sorted(
            sorted(solution.system.context.labelling(state))
            for state in solution.system.states
        )
        expected = sorted(sorted(labels) for labels in bt.expected_reachable_labels())
        assert labellings == expected

    def test_unique_implementation_by_search(self):
        result = enumerate_implementations(bt.program(), bt.context(), max_free_states=16)
        assert result.classification == "unique"
        _, system = result.unique()
        assert len(system) == 6

    def test_round_construction_agrees(self, solution):
        rounds = construct_by_rounds(bt.program(), bt.context())
        assert rounds.verified
        assert frozenset(rounds.system.states) == frozenset(solution.system.states)

    def test_knowledge_properties(self, solution):
        checker = CTLKModelChecker(solution.system)
        for name, (formula, expected) in bt.property_formulas().items():
            assert checker.valid(formula) == expected, name

    def test_provides_witnesses_but_not_synchronous(self, solution):
        report = sufficient_conditions_report(bt.program(), bt.context(), [solution.system])
        assert report["provides_witnesses"] is True
        assert report["depends_on_past"] is True
        assert report["synchronous"] is False

    def test_sender_stops_sending_once_it_knows(self, solution):
        protocol = solution.protocol
        context = solution.system.context
        for state in solution.system.states:
            local = context.local_state(bt.SENDER, state)
            actions = protocol.actions(bt.SENDER, local)
            sender_knows = solution.system.holds(state, bt.sender_knows_receiver_knows())
            if sender_knows:
                assert actions == frozenset({"noop"})
            else:
                assert actions == frozenset({"send_ok", "send_fail"})

    def test_receiver_acks_exactly_when_it_knows(self, solution):
        protocol = solution.protocol
        context = solution.system.context
        for state in solution.system.states:
            local = context.local_state(bt.RECEIVER, state)
            actions = protocol.actions(bt.RECEIVER, local)
            receiver_knows = solution.system.holds(state, bt.receiver_knows_bit())
            if receiver_knows:
                assert actions == frozenset({"ack_ok", "ack_fail"})
            else:
                assert actions == frozenset({"noop"})

    def test_check_implementation_report(self, solution):
        report = check_implementation(solution.protocol, bt.program(), bt.context())
        assert report
        assert report.describe().startswith("ImplementationReport")

    def test_common_knowledge_of_the_bit_is_never_attained(self, solution):
        """The coordinated-attack moral: over unreliable channels the value of
        the bit never becomes common knowledge between sender and receiver —
        the knowledge hierarchy only ever climbs finitely many levels."""
        from repro.logic.formula import CommonKnows

        common = CommonKnows(("S", "R"), bt.receiver_knows_bit())
        assert solution.system.extension(common) == frozenset()

    def test_knowledge_hierarchy_is_strict(self, solution):
        """K_R(bit), K_S K_R(bit) and K_R K_S K_R(bit) have strictly
        decreasing extensions, mirroring the paper's discussion of what each
        agent can ever learn."""
        level1 = solution.system.extension(bt.receiver_knows_bit())
        level2 = solution.system.extension(bt.sender_knows_receiver_knows())
        level3 = solution.system.extension(bt.receiver_knows_sender_knows())
        assert level3 < level2 < level1
        assert level3 == frozenset()


class TestVariableSettingFamily:
    @pytest.fixture(scope="class")
    def context(self):
        return vs.context()

    @pytest.mark.parametrize("name", sorted(vs.PROGRAM_FAMILY))
    def test_classification_matches_paper(self, context, name):
        factory, expected = vs.PROGRAM_FAMILY[name]
        assert enumerate_implementations(factory(), context).classification == expected

    @pytest.mark.parametrize("name", sorted(vs.PROGRAM_FAMILY))
    def test_reachable_value_sets(self, context, name):
        factory, _ = vs.PROGRAM_FAMILY[name]
        result = enumerate_implementations(factory(), context)
        found = sorted(
            frozenset(state["x"] for state in system.states) for _, system in result
        )
        assert found == sorted(vs.expected_reachable_values(name))

    def test_cyclic_iteration_cycles_with_period_two(self, context):
        result = iterate_interpretation(vs.cyclic_program(), context)
        assert not result.converged
        assert result.cycle_length == 2

    def test_cycle_breaking_converges_within_a_few_steps(self, context):
        result = iterate_interpretation(vs.cycle_breaking_program(), context)
        assert result.converged
        assert result.iterations <= 5

    def test_contradictory_program_never_converges_to_fixed_point(self, context):
        result = iterate_interpretation(vs.contradictory_program(), context)
        assert not result.converged

    def test_self_fulfilling_iteration_depends_on_seed(self, context):
        liberal = iterate_interpretation(vs.self_fulfilling_program(), context, seed="liberal")
        restrictive = iterate_interpretation(
            vs.self_fulfilling_program(), context, seed="restrictive"
        )
        # Both seeds converge, but to the two different implementations.
        assert liberal.converged and restrictive.converged
        liberal_values = {state["x"] for state in liberal.system.states}
        restrictive_values = {state["x"] for state in restrictive.system.states}
        assert liberal_values == {0, 1}
        assert restrictive_values == {0}

    def test_speculative_unique_implementation_found_only_by_search(self, context):
        iteration = iterate_interpretation(vs.speculative_program(), context)
        assert not iteration.converged
        search = enumerate_implementations(vs.speculative_program(), context)
        assert search.classification == "unique"
        _, system = search.unique()
        assert {state["x"] for state in system.states} == {0, 1}
