"""Equivalence of the enumeration-free symbolic construction with the
explicit ``variable_context`` pipeline, plus unit tests of the compilation
layer (expression compiler, cache ceilings, pruned state enumeration).

The property at the heart of this module: on every bundled protocol small
enough to enumerate, compiling the *same ingredients* symbolically must
produce the same initial set, the same per-agent indistinguishability
relations, the same guard tables and the same round-by-round construction
result as the explicit path."""

import pytest

from repro.interpretation import StateSetView, construct_by_rounds, derive_protocol
from repro.interpretation.functional import guard_table
from repro.logic.formula import Prop
from repro.modeling import StateSpace, boolean, const, ite, ranged, var
from repro.modeling.expressions import BinaryOp, Comparison
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.protocols import bit_transmission as bt
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs
from repro.symbolic import BDD, FALSE, TRUE, VariableEncoding
from repro.symbolic.model import (
    SymbolicContextModel,
    SymbolicGuardTable,
    compile_context,
)
from repro.util.errors import ModelError


def small_space():
    return StateSpace([ranged("x", 0, 3), ranged("y", 0, 2), boolean("b")])


# -- fixtures over the bundled protocols ------------------------------------------------


def bundled_cases():
    """(explicit context, symbolic model, program) triples of every bundled
    protocol small enough to enumerate."""
    cases = []
    cases.append(("bit-transmission", bt.context(), bt.symbolic_model(), bt.program()))
    vs_ctx = vs.context()
    for name, (factory, _) in sorted(vs.PROGRAM_FAMILY.items()):
        cases.append((f"variable-setting-{name}", vs_ctx, vs.symbolic_model(), factory()))
    for n in (2, 3, 4, 6):
        cases.append(
            (f"muddy-children-{n}", mc.context(n), mc.symbolic_model(n), mc.program(n))
        )
    return cases


CASES = bundled_cases()
CASE_IDS = [case[0] for case in CASES]


@pytest.mark.parametrize("name,context,model,program", CASES, ids=CASE_IDS)
class TestSymbolicAgreesWithExplicit:
    def test_initial_sets_agree(self, name, context, model, program):
        symbolic_initial = set(model.encoding.iter_states(model.initial))
        assert symbolic_initial == set(context.initial_states)

    def test_agent_relations_agree(self, name, context, model, program):
        states = list(context.initial_states)
        view = model.view(model.initial)
        encoding = model.encoding
        for agent in context.agents:
            relation = view.structure.encoding.agent_relation(agent)
            for s in states:
                for t in states:
                    explicit = context.local_state(agent, s) == context.local_state(agent, t)
                    symbolic = encoding.evaluate_node(relation, s, primed_state=t)
                    assert symbolic == explicit, (agent, s, t)

    def test_guard_tables_agree(self, name, context, model, program):
        states = list(context.initial_states)
        explicit_view = StateSetView(context, states)
        symbolic_view = model.view(
            model.view(model.initial).structure.encoding.worlds_node(states)
        )
        explicit_table = guard_table(explicit_view, program)
        symbolic_table = guard_table(symbolic_view, program)
        assert isinstance(symbolic_table, SymbolicGuardTable)
        for agent_program in program:
            agent = agent_program.agent
            if agent not in context.agents:
                continue
            for local_state in explicit_view.local_states(agent):
                for clause in agent_program.clauses:
                    assert symbolic_table.value(
                        agent, local_state, clause.guard
                    ) == explicit_table.value(agent, local_state, clause.guard)

    def test_derive_protocol_agrees(self, name, context, model, program):
        states = list(context.initial_states)
        explicit_view = StateSetView(context, states)
        symbolic_view = model.initial_view()
        explicit = derive_protocol(program, explicit_view, require_local=False)
        symbolic = derive_protocol(program, symbolic_view, require_local=False)
        for agent in context.agents:
            locals_here = context.local_states_of(agent, states)
            assert symbolic_view.local_states(agent) == set(locals_here)
            for local_state in locals_here:
                assert symbolic.actions(agent, local_state) == explicit.actions(
                    agent, local_state
                )

    def test_construct_by_rounds_agrees(self, name, context, model, program):
        try:
            explicit = construct_by_rounds(
                program.check_against_context(context), context
            )
            explicit_outcome = None
        except Exception as error:  # the construction may legitimately fail
            explicit, explicit_outcome = None, type(error).__name__
        try:
            symbolic = construct_by_rounds(program.check_against_context(model), model)
            symbolic_outcome = None
        except Exception as error:
            symbolic, symbolic_outcome = None, type(error).__name__
        assert symbolic_outcome == explicit_outcome
        if explicit is None:
            return
        assert symbolic.iterations == explicit.iterations
        assert symbolic.verified == explicit.verified
        explicit_states = set(explicit.system.states)
        assert set(symbolic.system.iter_states()) == explicit_states
        assert symbolic.system.state_count() == len(explicit_states)
        for agent in context.agents:
            for local_state in context.local_states_of(agent, explicit_states):
                assert symbolic.protocol.actions(
                    agent, local_state
                ) == explicit.protocol.actions(agent, local_state)


def test_non_local_guard_value_is_none_on_both_paths():
    context, model = mc.context(3), mc.symbolic_model(3)
    program = mc.program(3)
    states = list(context.initial_states)
    explicit_table = guard_table(StateSetView(context, states), program)
    symbolic_table = guard_table(model.initial_view(), program)
    guard = Prop("muddy0")  # child0 cannot see its own forehead
    agent = mc.child(0)
    values = set()
    for local_state in context.local_states_of(agent, states):
        explicit_value = explicit_table.value(agent, local_state, guard)
        assert symbolic_table.value(agent, local_state, guard) == explicit_value
        values.add(explicit_value)
    assert None in values  # the guard really is non-local somewhere


def test_symbolic_construction_at_enumeration_infeasible_scale():
    """The acceptance scenario: a context with ``StateSpace.size() >= 2**20``
    interpreted round by round entirely symbolically."""
    n = 10
    model = mc.symbolic_model(n)
    assert model.state_space.size() >= 2**20
    result = construct_by_rounds(mc.program(n).check_against_context(model), model)
    assert result.verified is True
    assert result.iterations == n + 2
    assert result.system.state_count() == 12276
    # Classical muddy-children semantics, checked on one run: with k muddy
    # children every muddy child first answers yes in round k, the clean
    # ones one round later.
    k = 3
    pattern = [i < k for i in range(n)]
    state = mc.initial_state_for_pattern(model, pattern)
    first_yes = {}
    for _ in range(n + 2):
        state = _step(model, result.protocol, state)
        for i in range(n):
            if i not in first_yes and state[f"said{i}"]:
                first_yes[i] = state["round"]
    assert all(first_yes[i] == k for i in range(k))
    assert all(first_yes[i] == k + 1 for i in range(k, n))


def _step(model, protocol, state):
    """Apply one deterministic round of a symbolic model's transition
    semantics (environment effect first, then every agent's unique action,
    all reading the pre-state)."""
    pre = state.as_dict()
    new = dict(pre)
    for effect in model.env_effects.values():
        for name, expr in effect.updates.items():
            new[name] = expr.evaluate(pre)
    for agent in model.agents:
        actions = protocol.actions(agent, model.local_state(agent, state))
        assert len(actions) == 1
        effect = model.actions[agent][next(iter(actions))].effect
        for name, expr in effect.updates.items():
            new[name] = expr.evaluate(pre)
    return model.state_space.state(new)


# -- compile_context and model validation ----------------------------------------------


def test_compile_context_requires_spec():
    from repro.kripke import single_agent_structure  # any non-variable context

    with pytest.raises(ModelError):
        compile_context(object())


def test_unsupported_ingredients_are_rejected():
    parts = vs.context_parts()
    with pytest.raises(ModelError):
        SymbolicContextModel(**parts, env_protocol=lambda state: ("go",))
    with pytest.raises(ModelError):
        SymbolicContextModel(**parts, admissibility=lambda run: True)
    with pytest.raises(ModelError):
        SymbolicContextModel(**parts, extra_labels=lambda state: ())


def test_conflicting_write_sets_are_rejected():
    x = ranged("x", 0, 3)
    space = StateSpace([x])
    with pytest.raises(ModelError, match="disjoint write sets"):
        SymbolicContextModel(
            "clash",
            space,
            observables={"a": ["x"], "b": ["x"]},
            actions={"a": {"set1": {"x": 1}}, "b": {"set2": {"x": 2}}},
            initial=(var(x) == 0),
        )


def test_empty_initial_set_is_rejected():
    x = ranged("x", 0, 3)
    space = StateSpace([x])
    with pytest.raises(ModelError, match="no initial states"):
        SymbolicContextModel(
            "empty",
            space,
            observables={"a": ["x"]},
            actions={"a": {}},
            initial=(var(x) == 5),
        )


def test_effect_leaving_the_domain_is_detected():
    x = ranged("x", 0, 3)
    space = StateSpace([x])
    model = SymbolicContextModel(
        "overflow",
        space,
        observables={"a": ["x"]},
        actions={"a": {"inc": {"x": var(x) + 1}}},
        initial=(var(x) == 3),
    )
    with pytest.raises(ModelError, match="leaves a variable's domain"):
        model.successors(model.initial, {"a": {"inc": TRUE}})


def test_guard_non_locality_on_frozen_classes_does_not_fail_later_rounds():
    """A guard may become non-local on a class *decided in an earlier
    round* (its decision is frozen and never re-queried); only the classes
    currently being decided must be local — on both paths."""
    from repro.systems import variable_context

    o, x = boolean("o"), boolean("x")
    space = StateSpace([o, x])
    parts = dict(
        name="frozen-nonlocal",
        state_space=space,
        observables={"a": ["o"]},
        actions={"a": {}},
        initial=(~var(o)) & (~var(x)),
        env_effects={"set_x": {"x": True}, "set_o": {"o": True}},
    )
    program = KnowledgeBasedProgram(
        [AgentProgram("a", [Clause(Prop("x"), "noop")], fallback="noop")]
    )
    explicit = construct_by_rounds(
        program, variable_context(**parts), verify=False
    )
    symbolic = construct_by_rounds(
        program, SymbolicContextModel(**parts), verify=False
    )
    assert set(symbolic.system.iter_states()) == set(explicit.system.states)
    assert len(set(explicit.system.states)) == 4


def test_effect_evaluation_errors_are_lazy_like_the_explicit_path():
    """An effect that raises on states the global constraint excludes must
    compile and run (the explicit path never evaluates unreached states);
    it must still raise if a reachable state hits the error region."""
    x, z = ranged("x", 0, 3), ranged("z", 0, 3)
    space = StateSpace([x, z])
    model = SymbolicContextModel(
        "lazy-errors",
        space,
        observables={"a": ["x", "z"]},
        actions={"a": {"mod": {"x": var(x) % var(z)}}},
        initial=(var(x) == 3) & (var(z) == 2),
        global_constraint=(var(z) > 0),
    )
    targets = model.successors(model.initial, {"a": {"mod": TRUE}})
    assert set(model.encoding.iter_states(targets)) == {
        space.state(x=1, z=2)
    }
    # Without the constraint the z=0 region is reachable: the per-round
    # check must surface the ill-defined effect.
    unguarded = SymbolicContextModel(
        "eager-errors",
        space,
        observables={"a": ["x", "z"]},
        actions={"a": {"mod": {"x": var(x) % var(z)}}},
        initial=(var(x) == 3) & (var(z) == 0),
    )
    with pytest.raises(ModelError, match="fails to evaluate"):
        unguarded.successors(unguarded.initial, {"a": {"mod": TRUE}})


def test_partial_expressions_in_boolean_positions_are_rejected():
    x, z = ranged("x", 0, 3), ranged("z", 0, 3)
    space = StateSpace([x, z])
    encoding = VariableEncoding(space)
    with pytest.raises(ModelError, match="raises"):
        encoding.truth_node((var(x) % var(z)) == 1)


def test_variable_order_must_be_a_permutation():
    parts = vs.context_parts()
    with pytest.raises(ModelError, match="permutation"):
        SymbolicContextModel(**parts, variable_order=["x", "x"])


def test_variable_order_changes_levels_not_semantics():
    n = 3
    default = mc.symbolic_model(n)  # interleaved order
    parts = mc.context_parts(n)
    declaration_order = SymbolicContextModel(**parts)
    assert set(default.encoding.iter_states(default.initial)) == set(
        declaration_order.encoding.iter_states(declaration_order.initial)
    )


# -- the expression compiler -----------------------------------------------------------


class TestExpressionCompiler:
    def setup_method(self):
        self.space = small_space()
        self.encoding = VariableEncoding(self.space)

    def check_truth(self, expression):
        node = self.encoding.truth_node(expression)
        for state in self.space.states():
            assert self.encoding.evaluate_node(node, state) == state.satisfies(
                expression
            ), str(expression)

    def check_values(self, expression):
        table = self.encoding.values_map(expression)
        for state in self.space.states():
            expected = state.evaluate(expression)
            hits = [
                value
                for value, guard in table.items()
                if self.encoding.evaluate_node(guard, state)
            ]
            assert hits == [expected], str(expression)

    def test_comparisons_and_connectives(self):
        x, y, b = (var(self.space.variable(name)) for name in ("x", "y", "b"))
        for expression in [
            x == 2,
            x != y,
            x < y,
            x <= 2,
            x > y,
            y >= 1,
            b,
            ~b,
            (x == 1) & (y == 2),
            (x == 1) | b,
            ~((x < y) & b),
            (x == x),
        ]:
            self.check_truth(expression)

    def test_arithmetic_case_splits(self):
        x, y = (var(self.space.variable(name)) for name in ("x", "y"))
        for expression in [
            x + y,
            x - y,
            x * y,
            x + 1,
            (x + y) * 2,
            ite(x < 2, x + 1, x),
            ite((x == y), const(7), x - y),
        ]:
            self.check_values(expression)
        self.check_truth((x + y) == 3)
        self.check_truth((x * y) > 4)
        self.check_truth(ite(x < 2, x + 1, x) == 2)

    def test_constants_and_modulo(self):
        x = var(self.space.variable("x"))
        self.check_truth(const(True))
        self.check_truth(const(0))
        self.check_values(x % 3)
        self.check_truth((x % 2) == 1)

    def test_truthiness_of_arithmetic_in_boolean_position(self):
        x = var(self.space.variable("x"))
        self.check_truth(x)  # nonzero values are truthy, as in State.satisfies
        self.check_truth(x - 1)

    def test_unknown_variable_is_rejected(self):
        other = ranged("z", 0, 1)
        with pytest.raises(ModelError):
            self.encoding.truth_node(var(other) == 0)


def test_expression_compiler_property():
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    space = small_space()
    x, y, b = (var(space.variable(name)) for name in ("x", "y", "b"))

    values = st.one_of(
        st.just(x), st.just(y), st.integers(min_value=-1, max_value=4).map(const)
    )
    value_exprs = st.recursive(
        values,
        lambda child: st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*"]), child, child).map(
                lambda t: BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(child, child).map(lambda t: ite(x < 2, t[0], t[1])),
        ),
        max_leaves=5,
    )
    comparisons = st.tuples(
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]), value_exprs, value_exprs
    ).map(lambda t: Comparison(t[0], t[1], t[2]))
    bool_exprs = st.recursive(
        st.one_of(comparisons, st.just(b)),
        lambda child: st.one_of(
            st.tuples(child, child).map(lambda t: t[0] & t[1]),
            st.tuples(child, child).map(lambda t: t[0] | t[1]),
            child.map(lambda e: ~e),
        ),
        max_leaves=6,
    )

    encoding = VariableEncoding(space)
    states = space.all_states()

    @settings(max_examples=120, deadline=None)
    @given(bool_exprs)
    def agree(expression):
        node = encoding.truth_node(expression)
        for state in states:
            assert encoding.evaluate_node(node, state) == state.satisfies(expression)

    agree()


# -- BDD cache ceilings ----------------------------------------------------------------


class TestCacheCeilings:
    def test_overflow_clears_and_records_high_water(self):
        manager = BDD(8, cache_ceiling=64)
        variables = [manager.var(level) for level in range(8)]
        node = FALSE
        for i in range(8):
            for j in range(8):
                node = manager.or_(node, manager.and_(variables[i], manager.not_(variables[j])))
        info = manager.cache_info()
        assert info["cache_ceiling"] == 64
        assert info["cache_clears"] > 0
        assert info["ite_cache"] < 64
        assert info["ite_high_water"] >= info["ite_cache"]

    def test_results_survive_overflow(self):
        bounded = BDD(6, cache_ceiling=16)
        unbounded = BDD(6, cache_ceiling=None)
        def build(manager):
            variables = [manager.var(level) for level in range(6)]
            node = TRUE
            for i in range(5):
                node = manager.and_(node, manager.or_(variables[i], variables[i + 1]))
            return manager.exists(node, (0, 2, 4))
        a, b = build(bounded), build(unbounded)
        # Same function: compare by truth table over the 3 remaining levels.
        for point in range(8):
            assignment = {1: point & 1, 3: (point >> 1) & 1, 5: (point >> 2) & 1}
            assert bounded.evaluate(a, assignment) == unbounded.evaluate(b, assignment)

    def test_invalid_ceiling_rejected(self):
        from repro.util.errors import EngineError

        with pytest.raises(EngineError):
            BDD(2, cache_ceiling=0)

    def test_clear_operation_caches_updates_high_water(self):
        manager = BDD(4)
        a = manager.and_(manager.var(0), manager.var(1))
        manager.exists(a, (0,))
        before = manager.cache_info()
        manager.clear_operation_caches()
        after = manager.cache_info()
        assert after["ite_cache"] == 0 and after["op_cache"] == 0
        assert after["ite_high_water"] >= before["ite_cache"]
        assert after["op_high_water"] >= before["op_cache"]


# -- pruned constrained enumeration ----------------------------------------------------


class TestPrunedStateEnumeration:
    def test_agrees_with_filtering_and_preserves_order(self):
        space = small_space()
        x, y, b = (var(space.variable(name)) for name in ("x", "y", "b"))
        constraints = [
            (x == 0) & (y == 0),
            (x < y) | b,
            ~b & (x + y == 3),
            (x == x),
            (x == 1) & (x == 2),  # unsatisfiable
        ]
        for constraint in constraints:
            filtered = [
                state for state in space.states() if state.satisfies(constraint)
            ]
            assert list(space.states(constraint)) == filtered

    def test_constant_false_constraint_yields_nothing(self):
        space = small_space()
        assert space.all_states(const(False)) == []
        assert len(space.all_states(const(True))) == space.size()

    def test_unknown_variable_still_raises(self):
        space = small_space()
        stranger = ranged("z", 0, 1)
        with pytest.raises(ModelError):
            list(space.states(var(stranger) == 0))

    def test_raising_conjunct_falls_back_to_exact_order(self):
        # (1 % x) raises at x = 0, but the first conjunct is false on every
        # x = 0 state, so the original left-to-right evaluation never
        # reached it; the pruned walk must not surface the error either.
        x, y = ranged("x", 0, 3), ranged("y", 0, 3)
        space = StateSpace([x, y])
        constraint = ((var(x) * 4 + var(y)) > 3) & ((const(1) % var(x)) == 0)
        states = space.all_states(constraint)
        assert len(states) == 4
        assert all(state["x"] == 1 for state in states)

    def test_pruning_makes_large_conjunctive_spaces_cheap(self):
        # 24 booleans, all forced False: the unpruned product would visit
        # 2**24 combinations; the pruned walk visits 24.
        flags = [boolean(f"f{i}") for i in range(24)]
        space = StateSpace(flags)
        constraint = ~var(flags[0])
        for flag in flags[1:]:
            constraint = constraint & (~var(flag))
        states = space.all_states(constraint)
        assert len(states) == 1

    def test_variables_memoised(self):
        x = ranged("x", 0, 3)
        expression = (var(x) + 1) * var(x)
        first = expression.variables()
        assert expression.variables() is first
        assert first == frozenset({x})
