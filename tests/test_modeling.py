"""Tests for the finite-domain variable modelling layer (:mod:`repro.modeling`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import extension
from repro.kripke import structure_from_labels
from repro.modeling import (
    Assignment,
    State,
    StateSpace,
    atom_name,
    boolean,
    const,
    enumerated,
    ite,
    ranged,
    var,
)
from repro.modeling.state_space import SKIP
from repro.util.errors import ModelError


class TestVariables:
    def test_ranged_domain(self):
        x = ranged("x", 0, 3)
        assert x.domain == (0, 1, 2, 3)
        assert x.contains(2)
        assert not x.contains(4)

    def test_boolean_variable(self):
        b = boolean("b")
        assert b.is_boolean
        assert set(b.domain) == {False, True}

    def test_enumerated_variable(self):
        c = enumerated("c", ["red", "green"])
        assert c.domain == ("red", "green")

    def test_empty_domain_rejected(self):
        with pytest.raises(ModelError):
            enumerated("c", [])

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ModelError):
            enumerated("c", [1, 1])

    def test_empty_range_rejected(self):
        with pytest.raises(ModelError):
            ranged("x", 3, 2)

    def test_check_rejects_out_of_domain(self):
        with pytest.raises(ModelError):
            ranged("x", 0, 1).check(5)

    def test_variables_are_immutable(self):
        x = ranged("x", 0, 1)
        with pytest.raises(AttributeError):
            x.name = "y"


class TestExpressions:
    def setup_method(self):
        self.x = ranged("x", 0, 3)
        self.b = boolean("b")

    def test_arithmetic_evaluation(self):
        expr = var(self.x) + 2
        assert expr.evaluate({"x": 1}) == 3
        assert (var(self.x) * 2 - 1).evaluate({"x": 2}) == 3

    def test_comparison_evaluation(self):
        assert (var(self.x) < 2).evaluate({"x": 1})
        assert not (var(self.x) >= 2).evaluate({"x": 1})
        assert (var(self.x) != 1).evaluate({"x": 0})

    def test_boolean_connectives(self):
        expr = (var(self.x) == 1) | ((var(self.b)) & (var(self.x) == 2))
        assert expr.evaluate({"x": 1, "b": False})
        assert expr.evaluate({"x": 2, "b": True})
        assert not expr.evaluate({"x": 2, "b": False})

    def test_negation(self):
        assert (~var(self.b)).evaluate({"b": False})

    def test_ite(self):
        expr = ite(var(self.x) < 3, var(self.x) + 1, var(self.x))
        assert expr.evaluate({"x": 2}) == 3
        assert expr.evaluate({"x": 3}) == 3

    def test_missing_variable_raises(self):
        with pytest.raises(ModelError):
            var(self.x).evaluate({})

    def test_variables_collected(self):
        expr = (var(self.x) + 1 == 2) & var(self.b)
        assert expr.variables() == {self.x, self.b}

    def test_constant_expression_to_formula(self):
        assert str(const(True).to_formula()) == "true"
        assert str(const(False).to_formula()) == "false"

    def test_to_formula_matches_evaluation(self):
        """The compiled propositional formula holds exactly at the states
        satisfying the expression."""
        space = StateSpace([self.x, self.b])
        expr = (var(self.x) != 1) & var(self.b)
        labelling = {state: space.labelling(state) for state in space.states()}
        structure = structure_from_labels(labelling, {"agent": space.propositions()})
        formula_extension = extension(structure, expr.to_formula())
        expected = {state for state in space.states() if state.satisfies(expr)}
        assert formula_extension == expected


class TestStates:
    def setup_method(self):
        self.x = ranged("x", 0, 3)
        self.b = boolean("b")
        self.space = StateSpace([self.x, self.b])

    def test_state_lookup(self):
        state = self.space.state(x=2, b=True)
        assert state["x"] == 2
        assert state[self.b] is True

    def test_state_is_immutable_and_hashable(self):
        state = self.space.state(x=0, b=False)
        assert state == self.space.state(x=0, b=False)
        assert hash(state) == hash(self.space.state(x=0, b=False))
        with pytest.raises(AttributeError):
            state.foo = 1

    def test_missing_value_rejected(self):
        with pytest.raises(ModelError):
            self.space.state(x=1)

    def test_out_of_domain_value_rejected(self):
        with pytest.raises(ModelError):
            self.space.state(x=9, b=False)

    def test_unknown_variable_rejected(self):
        with pytest.raises(ModelError):
            self.space.state(x=1, b=True, z=0)

    def test_restrict_gives_local_state(self):
        state = self.space.state(x=3, b=True)
        assert state.restrict(["x"]) == (("x", 3),)
        assert state.restrict([]) == ()

    def test_update_returns_new_state(self):
        state = self.space.state(x=1, b=False)
        updated = state.update({"x": 2})
        assert updated["x"] == 2
        assert state["x"] == 1

    def test_update_unknown_variable_rejected(self):
        with pytest.raises(ModelError):
            self.space.state(x=1, b=False).update({"z": 1})


class TestAssignments:
    def setup_method(self):
        self.x = ranged("x", 0, 3)
        self.y = ranged("y", 0, 3)
        self.space = StateSpace([self.x, self.y])

    def test_simultaneous_swap(self):
        state = self.space.state(x=1, y=2)
        swapped = Assignment({self.x: var(self.y), self.y: var(self.x)}).apply(state)
        assert swapped["x"] == 2 and swapped["y"] == 1

    def test_skip_is_identity(self):
        state = self.space.state(x=1, y=2)
        assert SKIP.apply(state) == state

    def test_written_and_read_variables(self):
        assignment = Assignment({self.x: var(self.y) + 1})
        assert assignment.written_variables() == {"x"}
        assert assignment.read_variables() == {self.y}

    def test_constant_assignment(self):
        state = self.space.state(x=0, y=0)
        assert Assignment({"x": 3}).apply(state)["x"] == 3


class TestStateSpace:
    def test_size_and_enumeration(self):
        space = StateSpace([ranged("x", 0, 2), boolean("b")])
        assert space.size() == 6
        assert len(space.all_states()) == 6

    def test_enumeration_with_constraint(self):
        space = StateSpace([ranged("x", 0, 2), boolean("b")])
        states = space.all_states((var(space.variable("x")) == 0))
        assert len(states) == 2

    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(ModelError):
            StateSpace([ranged("x", 0, 1), boolean("x")])

    def test_labelling_conventions(self):
        space = StateSpace([ranged("x", 0, 1), boolean("b")])
        state = space.state(x=1, b=True)
        assert space.labelling(state) == frozenset({"x=1", "b"})
        state2 = space.state(x=0, b=False)
        assert space.labelling(state2) == frozenset({"x=0"})

    def test_atom_name_convention(self):
        assert atom_name(ranged("x", 0, 1), 1) == "x=1"
        assert atom_name(boolean("b"), True) == "b"

    def test_propositions_cover_all_atoms(self):
        space = StateSpace([ranged("x", 0, 1), boolean("b")])
        assert space.propositions() == {"x=0", "x=1", "b"}


class TestExpressionProperties:
    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(min_value=0, max_value=3), threshold=st.integers(min_value=0, max_value=3))
    def test_comparisons_agree_with_python(self, value, threshold):
        x = ranged("x", 0, 3)
        env = {"x": value}
        assert (var(x) < threshold).evaluate(env) == (value < threshold)
        assert (var(x) == threshold).evaluate(env) == (value == threshold)
        assert (var(x) >= threshold).evaluate(env) == (value >= threshold)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.booleans(), min_size=1, max_size=4))
    def test_bool_ops_agree_with_python(self, values):
        variables = [boolean(f"b{i}") for i in range(len(values))]
        env = {f"b{i}": values[i] for i in range(len(values))}
        conjunction = None
        disjunction = None
        for variable in variables:
            term = var(variable)
            conjunction = term if conjunction is None else (conjunction & term)
            disjunction = term if disjunction is None else (disjunction | term)
        assert conjunction.evaluate(env) == all(values)
        assert disjunction.evaluate(env) == any(values)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_to_formula_equivalence_random(self, data):
        x = ranged("x", 0, 2)
        b = boolean("b")
        space = StateSpace([x, b])
        threshold = data.draw(st.integers(min_value=0, max_value=2))
        use_and = data.draw(st.booleans())
        expr = (var(x) >= threshold) & var(b) if use_and else (var(x) >= threshold) | var(b)
        labelling = {state: space.labelling(state) for state in space.states()}
        structure = structure_from_labels(labelling, {"agent": space.propositions()})
        assert extension(structure, expr.to_formula()) == {
            state for state in space.states() if state.satisfies(expr)
        }
