"""End-to-end tests for sequence transmission / alternating bit (E4) and the
extension workloads: unexpected examination and dining cryptographers (E9)."""

import pytest

from repro.logic import parse
from repro.logic.formula import Knows, Prop
from repro.protocols import dining_cryptographers as dc
from repro.protocols import sequence_transmission as st
from repro.protocols import unexpected_examination as ue
from repro.temporal import AG, EF, CTLKModelChecker, check_valid


class TestSequenceTransmissionKB:
    @pytest.fixture(scope="class", params=[1, 2, 3])
    def solution(self, request):
        length = request.param
        result = st.solve_kb(length)
        assert result.converged
        return length, result

    def test_sender_sends_exactly_the_current_bit(self, solution):
        length, result = solution
        context = result.system.context
        for state in result.system.states:
            local = context.local_state(st.SENDER, state)
            actions = result.protocol.actions(st.SENDER, local)
            if state.sacked < length:
                assert actions == frozenset({st.send_action(state.sacked)}), state
            else:
                assert actions == frozenset({"noop"}), state

    def test_receiver_keeps_acknowledging(self, solution):
        length, result = solution
        context = result.system.context
        for state in result.system.states:
            if state.nrcvd == 0:
                continue
            local = context.local_state(st.RECEIVER, state)
            actions = result.protocol.actions(st.RECEIVER, local)
            assert actions == frozenset({st.ack_action(state.nrcvd)}), state

    def test_sacked_never_exceeds_nrcvd(self, solution):
        _, result = solution
        for state in result.system.states:
            assert state.sacked <= state.nrcvd <= len(state.seq)

    def test_receiver_knows_exactly_its_prefix(self, solution):
        length, result = solution
        for state in result.system.states:
            for i in range(length):
                knows_value = result.system.holds(
                    state, Knows(st.RECEIVER, st.r_has(i))
                )
                assert knows_value == (i < state.nrcvd)

    def test_everything_eventually_received(self, solution):
        length, result = solution
        assert check_valid(result.system, EF(st.all_received_formula(length)))

    def test_sender_knowledge_tracks_acknowledgements(self, solution):
        length, result = solution
        for state in result.system.states:
            for i in range(length):
                assert result.system.holds(state, st.sender_knows_received(i)) == (
                    state.sacked > i
                )


class TestAlternatingBitProtocol:
    @pytest.fixture(scope="class", params=[1, 2, 3])
    def system(self, request):
        return st.abp_system(request.param)

    def test_safety_prefix_always_ok(self, system):
        assert check_valid(system, AG(st.prefix_ok_formula()))

    def test_transmission_can_complete(self, system):
        assert check_valid(system, EF(Prop("all_received")))

    def test_sender_advance_implies_knowledge(self, system):
        # Whenever the sender has moved past bit 0 it knows the receiver has it.
        checker = CTLKModelChecker(system)
        for state in system.states:
            if state.sptr >= 1:
                assert checker.holds(state, st.sender_knows_received(0))

    def test_no_deadlock(self, system):
        assert system.transition_system.is_total()


class TestUnexpectedExamination:
    @pytest.fixture(scope="class")
    def solution(self):
        result = ue.solve()
        assert result.converged
        return result

    def test_synchronous(self, solution):
        assert solution.system.is_synchronous()

    def test_surprise_exam_possible_on_all_but_last_day(self, solution):
        for day in range(4):
            assert ue.exam_written_on_day(solution.system, day), day

    def test_no_surprise_on_last_day(self, solution):
        assert not ue.exam_written_on_day(solution.system, 4)

    def test_exam_is_always_a_surprise_when_written(self, solution):
        assert ue.surprise_holds_when_written(solution.system)

    def test_class_never_knows_exam_in_advance(self, solution):
        # Before the exam is written the class never knows the exam is today,
        # except on the last morning (day 4 with exam 4).
        knows_today = solution.system.extension(ue.class_knows_exam_today())
        for state in knows_today:
            assert state["day"] == 4 and state["exam"] == 4 and not state["written"]


class TestDiningCryptographers:
    @pytest.fixture(scope="class", params=[3, 4])
    def system(self, request):
        return dc.system(request.param), request.param

    def test_anonymity(self, system):
        sys_, n = system
        assert dc.anonymity_holds(sys_, n)

    def test_everyone_learns_whether_a_cryptographer_paid(self, system):
        sys_, n = system
        assert dc.everyone_learns_whether_paid(sys_, n)

    def test_payment_common_knowledge(self, system):
        sys_, n = system
        assert dc.someone_paid_is_common_knowledge(sys_, n)

    def test_payer_always_knows_it_paid(self, system):
        sys_, n = system
        for i in range(n):
            paid_states = sys_.extension(dc.paid_prop(i))
            knows = sys_.extension(Knows(dc.crypto(i), dc.paid_prop(i)))
            assert paid_states <= knows

    def test_minimum_group_size_enforced(self):
        with pytest.raises(ValueError):
            dc.context(2)
