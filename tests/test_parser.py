"""Unit tests for the formula parser (:mod:`repro.logic.parser`)."""

import pytest

from repro.logic import parse
from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FALSE,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TRUE,
)
from repro.util.errors import ParseError


class TestAtoms:
    def test_proposition(self):
        assert parse("p") == Prop("p")

    def test_proposition_with_equals_sign(self):
        assert parse("x=3") == Prop("x=3")

    def test_proposition_with_dots_and_digits(self):
        assert parse("rcvd.0") == Prop("rcvd.0")

    def test_true_false(self):
        assert parse("true") is TRUE
        assert parse("false") is FALSE

    def test_parenthesised_formula(self):
        assert parse("(p)") == Prop("p")


class TestConnectives:
    def test_negation_symbols(self):
        assert parse("!p") == Not(Prop("p"))
        assert parse("~p") == Not(Prop("p"))
        assert parse("not p") == Not(Prop("p"))

    def test_conjunction(self):
        assert parse("p & q & r") == And((Prop("p"), Prop("q"), Prop("r")))

    def test_word_connectives(self):
        assert parse("p and q") == And((Prop("p"), Prop("q")))
        assert parse("p or q") == Or((Prop("p"), Prop("q")))

    def test_disjunction_binds_weaker_than_conjunction(self):
        assert parse("p & q | r") == Or((And((Prop("p"), Prop("q"))), Prop("r")))

    def test_implication(self):
        assert parse("p -> q") == Implies(Prop("p"), Prop("q"))

    def test_implication_is_right_associative(self):
        assert parse("p -> q -> r") == Implies(Prop("p"), Implies(Prop("q"), Prop("r")))

    def test_iff(self):
        assert parse("p <-> q") == Iff(Prop("p"), Prop("q"))

    def test_precedence_of_implication_over_or(self):
        assert parse("p | q -> r") == Implies(Or((Prop("p"), Prop("q"))), Prop("r"))


class TestModalities:
    def test_knows(self):
        assert parse("K[a] p") == Knows("a", Prop("p"))

    def test_possible(self):
        assert parse("M[a] p") == Possible("a", Prop("p"))

    def test_nested_modalities(self):
        assert parse("K[a] M[b] p") == Knows("a", Possible("b", Prop("p")))

    def test_negated_knowledge(self):
        assert parse("!K[S] K[R] sbit") == Not(Knows("S", Knows("R", Prop("sbit"))))

    def test_group_modalities(self):
        assert parse("E[a,b] p") == EveryoneKnows(("a", "b"), Prop("p"))
        assert parse("C[a,b] p") == CommonKnows(("a", "b"), Prop("p"))
        assert parse("D[a,b] p") == DistributedKnows(("a", "b"), Prop("p"))

    def test_modality_binds_tighter_than_and(self):
        assert parse("K[a] p & q") == And((Knows("a", Prop("p")), Prop("q")))

    def test_modality_over_parenthesised_formula(self):
        assert parse("K[a] (p & q)") == Knows("a", And((Prop("p"), Prop("q"))))

    def test_identifier_k_without_bracket_is_a_proposition(self):
        assert parse("K & p") == And((Prop("K"), Prop("p")))


class TestErrors:
    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse("(p & q")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("p q")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse("p &")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse("p @ q")

    def test_keyword_not_allowed_as_proposition(self):
        with pytest.raises(ParseError):
            parse("p & and")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("p & )")
        assert excinfo.value.position is not None

    def test_non_string_input_rejected(self):
        with pytest.raises(TypeError):
            parse(42)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "K[R] sbit & !K[S] K[R] sbit",
            "C[a,b] (p -> q)",
            "M[a] (p | !q) <-> K[b] r",
            "D[x,y,z] (p & q & r)",
            "!(p & q) | K[a] false",
        ],
    )
    def test_parse_str_parse_is_identity(self, text):
        formula = parse(text)
        assert parse(str(formula)) == formula
