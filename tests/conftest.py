"""Shared fixtures for the test suite."""

import pytest

from repro.kripke import structure_from_labels, single_agent_structure
from repro.modeling import StateSpace, boolean, ite, ranged, var
from repro.systems import variable_context


@pytest.fixture
def two_agent_structure():
    """A small two-agent S5 structure: agent ``a`` observes ``p``, agent
    ``b`` observes ``q``; four worlds for the four valuations of ``p, q``."""
    labelling = {
        "w00": set(),
        "w01": {"q"},
        "w10": {"p"},
        "w11": {"p", "q"},
    }
    return structure_from_labels(labelling, {"a": {"p"}, "b": {"q"}})


@pytest.fixture
def blind_structure():
    """A single blind agent over three worlds labelled 0, 1, 2."""
    labelling = {f"w{i}": {f"x={i}"} for i in range(3)}
    return single_agent_structure(labelling, agent="a", blind=True)


@pytest.fixture
def counter_context():
    """A tiny variable context: one agent that observes a counter and can
    increment it up to 3 or leave it alone."""
    counter = ranged("c", 0, 3)
    flag = boolean("flag")
    space = StateSpace([counter, flag])
    return variable_context(
        "counter",
        space,
        observables={"agent": ["c"]},
        actions={
            "agent": {
                "inc": {"c": ite(var(counter) < 3, var(counter) + 1, var(counter))},
                "set_flag": {"flag": True},
            }
        },
        initial=(var(counter) == 0) & (~var(flag)),
    )
