"""The instrumentation layer: core semantics, sinks, schema, CLI, registry.

Covers the obs package itself (span nesting and exception safety, the
disabled fast path, aggregation, JSONL schema validation, the Chrome
converter and the summary CLI) plus the engine-facing guarantees: counter
determinism across backends on a fixed workload, the canonical
``cache_info`` schema with its legacy aliases, and the high-water marks
that now survive ``clear_cache``.
"""

import io
import json
import time

import pytest

from repro import obs
from repro.obs import registry as obs_registry
from repro.obs.__main__ import main as obs_main
from repro.obs.schema import validate_record, validate_trace_lines
from repro.obs.sinks import (
    AggregateSink,
    ChromeTraceSink,
    JsonlSink,
    RecordingSink,
    chrome_trace,
)


@pytest.fixture(autouse=True)
def _pristine_obs():
    # A REPRO_TRACE-armed process starts with a JsonlSink installed; these
    # tests assert the default-disabled semantics, so detach any ambient
    # sinks for their duration and restore them afterwards.
    ambient = obs.installed_sinks()
    for sink in ambient:
        obs.remove_sink(sink)
    yield
    for sink in ambient:
        obs.add_sink(sink)


@pytest.fixture
def recorder():
    sink = obs.add_sink(RecordingSink())
    yield sink
    obs.remove_sink(sink)


# -- core ----------------------------------------------------------------------------


def test_disabled_by_default_and_noop_span():
    assert not obs.ENABLED
    first = obs.span("anything", irrelevant=1)
    second = obs.span("other")
    assert first is second  # the shared no-op object: nothing allocates
    with first:
        pass
    obs.counter("nope")
    obs.gauge("nope", 1)
    obs.event("nope")


def test_add_remove_sink_flips_enabled():
    sink = RecordingSink()
    obs.add_sink(sink)
    assert obs.ENABLED
    obs.remove_sink(sink)
    assert not obs.ENABLED
    obs.remove_sink(sink)  # idempotent
    assert not obs.ENABLED


def test_span_nesting_self_time_and_depth(recorder):
    with obs.span("outer"):
        time.sleep(0.002)
        with obs.span("inner"):
            time.sleep(0.002)
    inner, outer = recorder.records
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["depth"] == 1 and outer["depth"] == 0
    assert outer["dur"] >= inner["dur"]
    # Parent self-time excludes the child's wall time.
    assert outer["self"] <= outer["dur"] - inner["dur"] + 1e-4
    for record in (inner, outer):
        assert validate_record(record) is record


def test_span_exception_safety(recorder):
    with pytest.raises(ValueError):
        with obs.span("failing"):
            raise ValueError("boom")
    (record,) = recorder.records
    assert record["error"] == "ValueError"
    # The stack unwound: a following span sits at depth 0 again.
    with obs.span("after"):
        pass
    assert recorder.records[-1]["depth"] == 0


def test_span_stack_recovers_from_leaked_inner_span(recorder):
    outer = obs.span("outer")
    inner = obs.span("inner")
    outer.__enter__()
    inner.__enter__()
    # The inner span's __exit__ never runs; the outer exit must still pop
    # down to its own frame.
    outer.__exit__(None, None, None)
    assert recorder.records[-1]["name"] == "outer"
    with obs.span("next"):
        pass
    assert recorder.records[-1]["depth"] == 0


def test_counter_gauge_event_records(recorder):
    obs.counter("c", 2, tag="x")
    obs.gauge("g", 7.5)
    obs.event("e", detail="why")
    counter, gauge, event = recorder.records
    assert counter["value"] == 2 and counter["attrs"] == {"tag": "x"}
    assert gauge["value"] == 7.5
    assert event["attrs"] == {"detail": "why"}
    for record in recorder.records:
        assert validate_record(record) is record


def test_capture_context_manager():
    with obs.capture() as agg:
        obs.counter("hits", 3)
        obs.counter("hits", 2)
        obs.gauge("level", 1)
        obs.gauge("level", 5)
        obs.gauge("level", 2)
        with obs.span("work"):
            pass
    assert not obs.ENABLED
    assert agg.counters["hits"] == 5
    assert agg.gauges["level"] == {"last": 2, "min": 1, "max": 5}
    assert agg.spans["work"]["count"] == 1
    assert agg.metrics()["hits"] == 5
    assert agg.metrics()["level"] == 5  # gauges flatten to their max


def test_disabled_overhead_smoke():
    """The disabled fast path must stay within an order of magnitude of an
    empty loop — a coarse guard against accidentally putting allocation or
    locking on the no-op path."""
    iterations = 50_000

    def baseline():
        start = time.perf_counter()
        for _ in range(iterations):
            pass
        return time.perf_counter() - start

    def instrumented():
        start = time.perf_counter()
        for _ in range(iterations):
            if obs.ENABLED:
                obs.event("never")
        return time.perf_counter() - start

    assert not obs.ENABLED
    base = min(baseline() for _ in range(3))
    inst = min(instrumented() for _ in range(3))
    assert inst < base * 10 + 0.01


# -- sinks and schema ----------------------------------------------------------------


def test_jsonl_sink_writes_schema_valid_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = obs.add_sink(JsonlSink(path))
    try:
        with obs.span("top", phase="demo"):
            obs.counter("n", 4)
            obs.event("mark", round=1)
    finally:
        obs.remove_sink(sink)
        sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    records = validate_trace_lines(lines)  # raises on a schema violation
    assert [record["kind"] for record in records] == [
        "counter",
        "event",
        "span",
    ]  # spans emit on exit


def test_schema_rejects_malformed_records():
    bad = [
        {"kind": "span", "name": "x"},  # missing ts/dur
        {"kind": "counter", "name": "x", "ts": 0.0, "value": True},  # bool != number
        {"kind": "span", "name": "x", "ts": 0.0, "dur": 1.0, "self": 2.0, "depth": 0},
        {"kind": "event", "name": "x", "ts": 0.0, "bogus": 1},  # unknown field
        {"kind": "nope", "name": "x", "ts": 0},
    ]
    for record in bad:
        with pytest.raises(ValueError):
            validate_record(record)
    with pytest.raises(ValueError, match="line 1"):
        validate_trace_lines(['{"kind": "nope", "name": "x", "ts": 0}'])


def test_chrome_trace_conversion(tmp_path):
    sink = obs.add_sink(RecordingSink())
    try:
        with obs.span("work"):
            obs.counter("ops", 2)
            obs.counter("ops", 3)
            obs.event("note")
    finally:
        obs.remove_sink(sink)
    doc = chrome_trace(sink.records)
    phases = {entry["ph"] for entry in doc["traceEvents"]}
    assert phases == {"X", "C", "i"}
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters[-1]["args"]["ops"] == 5  # running total
    # The file-writing variant produces the same document.
    path = tmp_path / "chrome.json"
    file_sink = ChromeTraceSink(path)
    for record in sink.records:
        file_sink.emit(record)
    file_sink.close()
    assert json.loads(path.read_text())["traceEvents"]


def test_cli_summary_validate_and_chrome(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    sink = obs.add_sink(JsonlSink(trace))
    try:
        with obs.span("phase.outer"):
            obs.counter("ops", 7)
        obs.event(
            "construct.round", round=1, frontier=2, states=3, cache_hit_rate=0.5
        )
        obs.event("bdd.reorder", before=100, after=40, swaps=9, trigger=128)
    finally:
        obs.remove_sink(sink)
        sink.close()

    assert obs_main([str(trace)]) == 0
    out = capsys.readouterr().out
    assert "phase.outer" in out
    assert "ops" in out
    assert "reorder" in out.lower()
    assert "construct" in out.lower()

    assert obs_main([str(trace), "--validate"]) == 0

    chrome = tmp_path / "chrome.json"
    assert obs_main([str(trace), "--chrome", str(chrome)]) == 0
    assert json.loads(chrome.read_text())["traceEvents"]

    trace.write_text('{"kind": "bogus"}\n')
    assert obs_main([str(trace), "--validate"]) == 1


def test_jsonl_sink_degrades_unserialisable_attrs():
    buffer = io.StringIO()
    sink = obs.add_sink(JsonlSink(buffer))
    try:
        obs.event("odd", payload=object())
    finally:
        obs.remove_sink(sink)
    record = json.loads(buffer.getvalue())
    assert record["attrs"]["payload"].startswith("<object object")


# -- engine integration --------------------------------------------------------------


def _muddy_workload():
    from repro.protocols import muddy_children as mc

    result = mc.solve(3)
    assert result.converged


@pytest.mark.parametrize("backend_name", ["bitset", "frozenset", "bdd"])
def test_counter_determinism_across_runs(backend_name):
    """The same workload under the same backend yields the same counters —
    instrumentation reads deterministic quantities, not timing accidents."""
    from repro.engine import use_backend

    def run():
        with use_backend(backend_name):
            with obs.capture() as agg:
                _muddy_workload()
        return agg.counters

    first, second = run(), run()
    assert first == second
    assert first, "the workload should emit at least one counter"


def test_fixpoint_events_flow_from_workload():
    with obs.capture(keep_records=True) as agg:
        _muddy_workload()
    names = {record["name"] for record in agg.records}
    assert "fixpoint" in names or "fixpoint.iterations" in agg.counters


def test_construct_round_events_symbolic():
    from repro.protocols import muddy_children as mc

    with obs.capture(keep_records=True) as agg:
        result = mc.solve(4, symbolic=True)
        assert result.verified
    rounds = [
        record["attrs"]
        for record in agg.records
        if record["name"] == "construct.round"
    ]
    assert rounds, "the symbolic construction should emit per-round events"
    assert [attrs["round"] for attrs in rounds] == list(
        range(1, len(rounds) + 1)
    )
    assert all("frontier" in attrs and "states" in attrs for attrs in rounds)
    assert all("cache_hit_rate" in attrs for attrs in rounds)


# -- metric schema and aliases -------------------------------------------------------


def test_bdd_cache_info_canonical_keys_and_aliases():
    from repro.symbolic.bdd import BDD

    bdd = BDD(4)
    x, y = bdd.var(0), bdd.var(1)
    bdd.and_(x, y)
    bdd.and_(x, y)  # cached: a hit
    info = bdd.cache_info()
    assert info["cache.ite.hits"] >= 1
    assert info["cache.ite.misses"] >= 1
    assert info["unique.nodes"] == info["nodes"]  # alias preserved
    assert info["cache.ite.size"] == info["ite_cache"]
    assert info["cache.ite.high_water"] >= info["cache.ite.size"]
    assert "reorder.count" in info and "reorder_stats" in info


def test_evaluator_high_water_survives_clear_cache(two_agent_structure):
    from repro.engine import Evaluator, resolve_backend
    from repro.logic import parse

    evaluator = Evaluator(two_agent_structure, resolve_backend("bitset"))
    evaluator.extension(parse("K[a] p & K[b] q"))
    info = evaluator.cache_info()
    high_water = info["memo.formulas.high_water"]
    assert high_water == info["memo.formulas"] > 0
    assert info["formulas"] == info["memo.formulas"]  # alias
    evaluator.clear_cache()
    info = evaluator.cache_info()
    assert info["memo.formulas"] == 0
    assert info["memo.formulas.high_water"] == high_water  # the drift fix
    assert info["cache.clears"] == 1


def test_registry_bdd_metrics_delta():
    from repro.symbolic.bdd import BDD

    mark = obs_registry.checkpoint()
    bdd = BDD(6)
    node = bdd.var(0)
    for level in range(1, 6):
        node = bdd.and_(node, bdd.var(level))
    metrics = obs_registry.bdd_metrics(since=mark)
    assert metrics["bdd.managers"] == 1
    assert metrics["bdd.nodes.peak"] >= 6
    assert metrics["bdd.cache.ite.misses"] >= 5
    assert 0.0 <= metrics["bdd.cache.hit_rate"] <= 1.0
    # Managers created before the checkpoint are excluded.
    assert obs_registry.bdd_metrics(since=obs_registry.checkpoint()) == {}
    del bdd


def test_attach_aliases_and_hit_rate():
    info = obs_registry.attach_aliases({"memo.cubes": 3}, {"memo.cubes": "cubes"})
    assert info == {"memo.cubes": 3, "cubes": 3}
    assert obs_registry.hit_rate(3, 1) == 0.75
    assert obs_registry.hit_rate(0, 0) is None


def test_encoding_cache_info_canonical(two_agent_structure):
    from repro.symbolic.encode import encoding_for

    encoding = encoding_for(two_agent_structure)
    encoding.worlds_node(list(two_agent_structure.worlds)[:2])
    info = encoding.cache_info()
    assert info["memo.sets"] == info["set_memo"]
    assert info["memo.masks"] == info["mask_memo"]
    assert info["memo.relations"] == info["relations"]


def test_fuzz_timing_percentiles():
    from repro.spec.fuzz import run_fuzz

    stats = run_fuzz(count=2, seed=11, timings=True)
    timing = stats["timing"]
    assert timing["p50"] <= timing["p90"] <= timing["p99"] <= timing["max"]
    assert not obs.ENABLED  # the fuzz recorder uninstalled itself
