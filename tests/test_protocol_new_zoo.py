"""The two spec-only zoo members: coordinated attack and ring leader
election.

Both are defined purely as ``.kbp`` specs.  Small instances are checked
explicitly and differentially against the symbolic lowering; the larger
instances run symbolically at state-space sizes the explicit path cannot
enumerate (the point of having them in the zoo)."""

import pytest

from repro.interpretation import construct_by_rounds
from repro.protocols import coordinated_attack as ca
from repro.protocols import leader_election as le


# -- coordinated attack ------------------------------------------------------------------


class TestCoordinatedAttackExplicit:
    @pytest.fixture(scope="class")
    def solved(self):
        return ca.solve(n=3, method="rounds")

    def test_converges(self, solved):
        assert solved.converged
        assert solved.verified

    def test_iterate_agrees_with_rounds(self, solved):
        iterated = ca.solve(n=3, method="iterate")
        assert iterated.converged
        assert set(iterated.system.states) == set(solved.system.states)

    def test_impossibility_reading(self, solved):
        assert ca.impossibility_holds(solved.system, 3)

    def test_only_the_last_general_attacks(self, solved):
        assert solved.system.holds_everywhere(ca.lone_attacker_formula(3))
        # ... and it does attack somewhere: the impossibility is about
        # coordination, not about nobody ever acting.
        attacked = [s for s in solved.system.states if s["attacked2"]]
        assert attacked

    def test_word_invariant(self, solved):
        assert solved.system.holds_everywhere(ca.word_invariant(3))


class TestCoordinatedAttackDifferential:
    @pytest.mark.parametrize("n", [3, 4])
    def test_explicit_and_symbolic_agree(self, n):
        program = ca.program(n)
        explicit = construct_by_rounds(
            program.check_against_context(ca.context(n)), ca.context(n)
        )
        symbolic = construct_by_rounds(
            program.check_against_context(ca.symbolic_model(n)), ca.symbolic_model(n)
        )
        assert symbolic.verified == explicit.verified
        assert symbolic.iterations == explicit.iterations
        assert set(symbolic.system.iter_states()) == set(explicit.system.states)


class TestCoordinatedAttackAtScale:
    """n = 12 generals: 2^35 global states, far beyond enumeration."""

    @pytest.fixture(scope="class")
    def solved(self):
        return ca.solve_symbolic(n=12)

    def test_state_space_defeats_enumeration(self):
        assert ca.spec(12).state_space().size() == 2**35

    def test_converges_symbolically(self, solved):
        assert solved.converged
        assert solved.verified
        # 8191 = 2^13 - 1 reachable states out of 2^35: each run freezes the
        # ready pattern, and the word front advances along the chain.
        assert solved.system.state_count() == 2**13 - 1

    def test_impossibility_reading_at_scale(self, solved):
        assert ca.impossibility_holds(solved.system, 12)


# -- leader election ---------------------------------------------------------------------


class TestLeaderElectionExplicit:
    @pytest.fixture(scope="class")
    def solved(self):
        return le.solve(n=3)

    def test_converges(self, solved):
        assert solved.converged
        assert solved.verified

    def test_safety(self, solved):
        assert le.election_is_correct(solved.system, 3)

    def test_highest_id_candidate_wins(self, solved):
        assert le.elected_leader(solved.system, 3) == 2

    def test_liveness_per_candidate_pattern(self):
        # Restricting the initial condition to one candidate pattern, the
        # unique highest-id candidate always announces.
        from itertools import product

        result = le.solve(n=3)
        for pattern in product([False, True], repeat=3):
            if not any(pattern):
                continue
            expected = max(i for i in range(3) if pattern[i])
            led = set()
            for state in result.system.states:
                if all(state[f"cand{i}"] == pattern[i] for i in range(3)):
                    led |= {i for i in range(3) if state[f"led{i}"]}
            assert led == {expected}, pattern


class TestLeaderElectionDifferential:
    def test_explicit_and_symbolic_agree(self):
        n = 3
        program = le.program(n)
        explicit = construct_by_rounds(
            program.check_against_context(le.context(n)), le.context(n)
        )
        symbolic = construct_by_rounds(
            program.check_against_context(le.symbolic_model(n)), le.symbolic_model(n)
        )
        assert symbolic.verified == explicit.verified
        assert symbolic.iterations == explicit.iterations
        assert set(symbolic.system.iter_states()) == set(explicit.system.states)


class TestLeaderElectionAtScale:
    """n = 7 nodes: 8^7 * 2^14-ish global states, beyond enumeration."""

    @pytest.fixture(scope="class")
    def solved(self):
        return le.solve_symbolic(n=7)

    def test_state_space_defeats_enumeration(self):
        assert le.spec(7).state_space().size() > 2**30

    def test_converges_symbolically(self, solved):
        assert solved.converged
        assert solved.verified

    def test_safety_at_scale(self, solved):
        assert le.election_is_correct(solved.system, 7)
