"""Tests for CTLK model checking and the analysis helpers."""

import random

import pytest

from repro.analysis import (
    everyone_knows_level,
    is_common_knowledge,
    knowledge_census,
    knowledge_level_reached,
    system_statistics,
)
from repro.logic import parse
from repro.logic.formula import Prop
from repro.protocols import bit_transmission
from repro.systems import JointProtocol, constant_protocol, represent
from repro.temporal import AF, AG, AU, AX, EF, EG, EU, EX, CTLKModelChecker, check_reachable, check_valid
from repro.util.errors import ModelError


@pytest.fixture(scope="module")
def counter_system(request):
    from repro.modeling import StateSpace, boolean, ite, ranged, var
    from repro.systems import variable_context

    counter = ranged("c", 0, 3)
    flag = boolean("flag")
    space = StateSpace([counter, flag])
    context = variable_context(
        "counter-temporal",
        space,
        observables={"agent": ["c"]},
        actions={
            "agent": {
                "inc": {"c": ite(var(counter) < 3, var(counter) + 1, var(counter))},
                "set_flag": {"flag": True},
            }
        },
        initial=(var(counter) == 0) & (~var(flag)),
    )
    protocol = JointProtocol({"agent": constant_protocol("agent", {"inc", "set_flag"})})
    return represent(context, protocol)


@pytest.fixture(scope="module")
def bt_system():
    return bit_transmission.solve("iterate").system


class TestTemporalOperators:
    def test_ef_reaches_saturation(self, counter_system):
        assert check_valid(counter_system, EF(parse("c=3")))

    def test_ag_invariant(self, counter_system):
        assert check_valid(counter_system, AG(parse("c=0 | c=1 | c=2 | c=3")))
        assert not check_valid(counter_system, AG(parse("!flag")))

    def test_ex_and_ax(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, EX(parse("c=1")))
        assert checker.holds(initial, EX(parse("flag")))
        assert not checker.holds(initial, AX(parse("c=1")))
        assert checker.holds(initial, AX(parse("c=1 | flag")))

    def test_eg_on_stuttering_path(self, counter_system):
        # The run that always chooses set_flag keeps the counter at 0 forever.
        assert check_valid(counter_system, EG(parse("c=0")))

    def test_af_eventual_saturation_fails_with_stuttering(self, counter_system):
        # Because set_flag can be chosen forever, c=3 is not inevitable.
        assert not check_valid(counter_system, AF(parse("c=3")))

    def test_eu_and_au(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, EU(parse("!flag"), parse("c=2")))
        assert checker.holds(initial, AU(parse("true"), parse("c=3 | flag")))
        assert not checker.holds(initial, AU(parse("true"), parse("c=3")))

    def test_deadlock_states_self_loop(self):
        # A system whose only protocol action is noop deadlocks immediately in
        # terms of progress; the checker treats it as a self-loop.
        from repro.modeling import StateSpace, ranged, var
        from repro.systems import variable_context
        from repro.systems.actions import NOOP_NAME

        x = ranged("x", 0, 1)
        space = StateSpace([x])
        context = variable_context(
            "still",
            space,
            observables={"a": ["x"]},
            actions={"a": {}},
            initial=(var(x) == 0),
        )
        system = represent(context, JointProtocol({"a": constant_protocol("a", {NOOP_NAME})}))
        assert check_valid(system, AG(parse("x=0")))
        assert check_valid(system, EG(parse("x=0")))

    def test_unknown_state_rejected(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        with pytest.raises(ModelError):
            checker.holds("nonsense", parse("true"))

    def test_witness_state(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        witness = checker.witness_state(parse("c=2"))
        assert witness is not None and witness["c"] == 2
        assert checker.witness_state(parse("false")) is None


class TestTemporalEpistemic:
    def test_bit_transmission_properties(self, bt_system):
        checker = CTLKModelChecker(bt_system)
        for name, (formula, expected) in bit_transmission.property_formulas().items():
            assert checker.valid(formula) == expected, name

    def test_knowledge_inside_temporal(self, bt_system):
        # Once the receiver knows the bit it keeps knowing it.
        formula = AG(bit_transmission.receiver_knows_bit() >> AG(bit_transmission.receiver_knows_bit()))
        assert check_valid(bt_system, formula)

    def test_temporal_inside_knowledge(self, counter_system):
        # The agent knows (trivially) that the counter can keep growing or a
        # flag can be set: a K over an EX formula.
        from repro.logic.formula import Knows

        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, Knows("agent", EX(parse("c=1 | flag"))))

    def test_check_reachable(self, bt_system):
        assert check_reachable(bt_system, parse("ack"))
        assert not check_reachable(bt_system, parse("ack & !snt"))


class TestGreatestFixpointEG:
    def test_matches_naive_rescan_on_random_candidate_sets(self, counter_system):
        # The successor-count deletion algorithm must compute the same
        # greatest fixed point as the (quadratic) rescan-until-stable
        # formulation it replaced, on arbitrary candidate sets.
        checker = CTLKModelChecker(counter_system)

        def naive(hold):
            result = set(hold)
            changed = True
            while changed:
                changed = False
                for state in list(result):
                    if not (checker._successors[state] & result):
                        result.discard(state)
                        changed = True
            return result

        rng = random.Random(20260730)
        states = list(counter_system.states)
        for density in (0.0, 0.25, 0.5, 0.75, 1.0):
            for _ in range(10):
                hold = {state for state in states if rng.random() <= density}
                assert checker._greatest_fixpoint_eg(hold) == naive(hold)

    def test_eg_chain_without_loops_is_empty(self):
        # On a pure chain only the (totalised, self-looping) last state can
        # satisfy EG true-restricted-to-the-chain-prefix.
        from repro.modeling import StateSpace, ite, ranged, var
        from repro.systems import JointProtocol, constant_protocol, represent, variable_context

        counter = ranged("x", 0, 5)
        space = StateSpace([counter])
        context = variable_context(
            "chain",
            space,
            observables={"a": ["x"]},
            actions={"a": {"inc": {"x": ite(var(counter) < 5, var(counter) + 1, var(counter))}}},
            initial=(var(counter) == 0),
        )
        system = represent(context, JointProtocol({"a": constant_protocol("a", {"inc"})}))
        checker = CTLKModelChecker(system)
        prefix = checker.extension(parse("!(x=5)"))
        assert checker._greatest_fixpoint_eg(set(prefix)) == set()
        assert checker.extension(EG(parse("x=5"))) == {
            state for state in system.states if state["x"] == 5
        }


class TestBackendPinning:
    def test_checker_pins_backend_at_construction(self, bt_system):
        from repro.engine import get_default_backend, use_backend

        default_name = get_default_backend().name
        pinned = "frozenset" if default_name != "frozenset" else "bitset"
        with use_backend(pinned):
            checker = CTLKModelChecker(bt_system)
            inside = checker.extension(bit_transmission.receiver_knows_bit())
        # The ambient default is restored, but the checker keeps answering
        # through the backend it was built under — including for formulas
        # first evaluated *after* the context exited.
        assert get_default_backend().name == default_name
        assert checker.backend.name == pinned
        reference = CTLKModelChecker(bt_system, backend=default_name)
        assert checker.extension(bit_transmission.receiver_knows_bit()) == inside
        for name, (formula, expected) in bit_transmission.property_formulas().items():
            assert checker.valid(formula) == expected, name
            assert reference.valid(formula) == expected, name

    def test_checker_accepts_backend_parameter(self, bt_system):
        checker = CTLKModelChecker(bt_system, backend="frozenset")
        assert checker.backend.name == "frozenset"
        assert checker.valid(AG(parse("sbit | !sbit")))

    def test_top_level_epistemic_query_is_batched_once(self, bt_system):
        # Regression: the checker used to prefetch a top-level epistemic
        # formula through the batched path and then recompute it through the
        # scalar path, paying the modal image twice.
        from repro.engine import FrozensetBackend
        from repro.logic.formula import Knows, Prop

        class CountingBackend(FrozensetBackend):
            name = "counting"

            def __init__(self):
                self.many_calls = 0
                self.scalar_calls = 0

            def knows(self, structure, agent, inner):
                self.scalar_calls += 1
                return super().knows(structure, agent, inner)

            def knows_many(self, structure, agent, inners):
                self.many_calls += 1
                return [
                    FrozensetBackend.knows(self, structure, agent, inner)
                    for inner in inners
                ]

        backend = CountingBackend()
        checker = CTLKModelChecker(bt_system, backend=backend)
        extension = checker.extension(Knows("R", Prop("sbit")))
        assert extension == CTLKModelChecker(bt_system).extension(
            Knows("R", Prop("sbit"))
        )
        assert backend.many_calls == 1
        assert backend.scalar_calls == 0

    def test_generated_substructure_accepts_backend_parameter(self):
        from repro.engine import use_backend
        from repro.kripke import EpistemicStructure, generated_substructure

        structure = EpistemicStructure(
            ["u", "v", "w"],
            {"a": {"u": {"v"}, "v": {"v"}, "w": {"w"}}},
            {"u": set(), "v": {"p"}, "w": set()},
        )
        explicit = generated_substructure(structure, {"u"}, backend="frozenset")
        with use_backend("frozenset"):
            ambient = generated_substructure(structure, {"u"})
        assert set(explicit.worlds) == set(ambient.worlds) == {"u", "v"}


class TestAnalysis:
    def test_everyone_knows_level_builder(self):
        formula = everyone_knows_level(Prop("p"), ("a", "b"), 2)
        assert str(formula) == "E[a,b] E[a,b] p"
        with pytest.raises(ModelError):
            everyone_knows_level(Prop("p"), ("a",), -1)

    def test_knowledge_level_in_bit_transmission(self, bt_system):
        # In the final state the receiver knows the bit and the sender knows
        # that, but the receiver does not know that the sender knows: the
        # group knowledge level of "receiver knows the bit" stops at 1.
        final = next(
            state
            for state in bt_system.states
            if bt_system.context.labelling(state) >= {"sbit", "rbit", "snt", "ack"}
        )
        fact = bit_transmission.receiver_knows_bit()
        level = knowledge_level_reached(bt_system, final, fact, ("S", "R"))
        assert level == 1
        assert not is_common_knowledge(bt_system, final, fact, ("S", "R"))

    def test_statistics_keys(self, bt_system):
        stats = system_statistics(bt_system)
        assert stats["states"] == 6
        assert stats["synchronous"] is False
        assert set(stats["agents"]) == {"S", "R"}
        assert stats["agents"]["R"]["local_states"] == 3

    def test_knowledge_census(self, bt_system):
        census = knowledge_census(bt_system, propositions=["sbit"], agents=["R"])
        entry = census["R"]["sbit"]
        assert entry["knows_true"] + entry["knows_false"] + entry["uncertain"] == len(
            bt_system.states
        )
        # The receiver knows the bit exactly in the four states after a
        # successful transmission; on this reflexive (S5) system nothing is
        # known vacuously.
        assert entry["knows_true"] + entry["knows_false"] == 4
        assert entry["knows_both"] == 0

    def test_knowledge_census_accepts_one_shot_iterables(self, bt_system):
        # Regression: the batched warm-up pass used to exhaust a one-shot
        # `agents` iterable before the counting loop ran, returning {}.
        census = knowledge_census(
            bt_system, propositions=iter(["sbit"]), agents=iter(["R"])
        )
        reference = knowledge_census(bt_system, propositions=["sbit"], agents=["R"])
        assert census == reference
        assert census["R"]["sbit"]["knows_true"] + census["R"]["sbit"]["knows_false"] == 4

    def test_knowledge_census_partitions_on_serial_free_structure(self):
        # Regression: EpistemicStructure is relation-agnostic, and at a state
        # with no R_a-successors both K_a p and K_a !p hold vacuously.  Such
        # states used to be counted in *both* knows buckets, driving the
        # remainder-based `uncertain` negative; they now land in a separate
        # `knows_both` bucket and the four buckets partition the states.
        from repro.engine import evaluator_for
        from repro.kripke import EpistemicStructure

        structure = EpistemicStructure(
            ["w0", "w1", "w2"],
            {"a": {"w0": set(), "w1": {"w1", "w2"}, "w2": {"w1", "w2"}}},
            {"w0": {"p"}, "w1": {"p"}, "w2": set()},
        )

        class ShimSystem:
            def __init__(self, structure):
                self.structure = structure
                self.states = structure.worlds
                self.agents = structure.agents
                self.evaluator = evaluator_for(structure)

            def extension(self, formula):
                return self.evaluator.extension(formula)

        census = knowledge_census(ShimSystem(structure))
        entry = census["a"]["p"]
        assert all(count >= 0 for count in entry.values()), entry
        assert sum(entry.values()) == len(structure.worlds)
        assert entry == {
            "knows_true": 0,
            "knows_false": 0,
            "knows_both": 1,  # the successor-less w0
            "uncertain": 2,  # w1 and w2 cannot tell each other apart
        }

        # The extreme case that used to report uncertain == -1: a single
        # successor-less world satisfies every knowledge formula vacuously.
        blind_dead = EpistemicStructure(["w"], {"a": {"w": set()}}, {"w": {"p"}})
        entry = knowledge_census(ShimSystem(blind_dead))["a"]["p"]
        assert entry == {
            "knows_true": 0,
            "knows_false": 0,
            "knows_both": 1,
            "uncertain": 0,
        }
