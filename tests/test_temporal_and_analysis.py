"""Tests for CTLK model checking and the analysis helpers."""

import pytest

from repro.analysis import (
    everyone_knows_level,
    is_common_knowledge,
    knowledge_census,
    knowledge_level_reached,
    system_statistics,
)
from repro.logic import parse
from repro.logic.formula import Prop
from repro.protocols import bit_transmission
from repro.systems import JointProtocol, constant_protocol, represent
from repro.temporal import AF, AG, AU, AX, EF, EG, EU, EX, CTLKModelChecker, check_reachable, check_valid
from repro.util.errors import ModelError


@pytest.fixture(scope="module")
def counter_system(request):
    from repro.modeling import StateSpace, boolean, ite, ranged, var
    from repro.systems import variable_context

    counter = ranged("c", 0, 3)
    flag = boolean("flag")
    space = StateSpace([counter, flag])
    context = variable_context(
        "counter-temporal",
        space,
        observables={"agent": ["c"]},
        actions={
            "agent": {
                "inc": {"c": ite(var(counter) < 3, var(counter) + 1, var(counter))},
                "set_flag": {"flag": True},
            }
        },
        initial=(var(counter) == 0) & (~var(flag)),
    )
    protocol = JointProtocol({"agent": constant_protocol("agent", {"inc", "set_flag"})})
    return represent(context, protocol)


@pytest.fixture(scope="module")
def bt_system():
    return bit_transmission.solve("iterate").system


class TestTemporalOperators:
    def test_ef_reaches_saturation(self, counter_system):
        assert check_valid(counter_system, EF(parse("c=3")))

    def test_ag_invariant(self, counter_system):
        assert check_valid(counter_system, AG(parse("c=0 | c=1 | c=2 | c=3")))
        assert not check_valid(counter_system, AG(parse("!flag")))

    def test_ex_and_ax(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, EX(parse("c=1")))
        assert checker.holds(initial, EX(parse("flag")))
        assert not checker.holds(initial, AX(parse("c=1")))
        assert checker.holds(initial, AX(parse("c=1 | flag")))

    def test_eg_on_stuttering_path(self, counter_system):
        # The run that always chooses set_flag keeps the counter at 0 forever.
        assert check_valid(counter_system, EG(parse("c=0")))

    def test_af_eventual_saturation_fails_with_stuttering(self, counter_system):
        # Because set_flag can be chosen forever, c=3 is not inevitable.
        assert not check_valid(counter_system, AF(parse("c=3")))

    def test_eu_and_au(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, EU(parse("!flag"), parse("c=2")))
        assert checker.holds(initial, AU(parse("true"), parse("c=3 | flag")))
        assert not checker.holds(initial, AU(parse("true"), parse("c=3")))

    def test_deadlock_states_self_loop(self):
        # A system whose only protocol action is noop deadlocks immediately in
        # terms of progress; the checker treats it as a self-loop.
        from repro.modeling import StateSpace, ranged, var
        from repro.systems import variable_context
        from repro.systems.actions import NOOP_NAME

        x = ranged("x", 0, 1)
        space = StateSpace([x])
        context = variable_context(
            "still",
            space,
            observables={"a": ["x"]},
            actions={"a": {}},
            initial=(var(x) == 0),
        )
        system = represent(context, JointProtocol({"a": constant_protocol("a", {NOOP_NAME})}))
        assert check_valid(system, AG(parse("x=0")))
        assert check_valid(system, EG(parse("x=0")))

    def test_unknown_state_rejected(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        with pytest.raises(ModelError):
            checker.holds("nonsense", parse("true"))

    def test_witness_state(self, counter_system):
        checker = CTLKModelChecker(counter_system)
        witness = checker.witness_state(parse("c=2"))
        assert witness is not None and witness["c"] == 2
        assert checker.witness_state(parse("false")) is None


class TestTemporalEpistemic:
    def test_bit_transmission_properties(self, bt_system):
        checker = CTLKModelChecker(bt_system)
        for name, (formula, expected) in bit_transmission.property_formulas().items():
            assert checker.valid(formula) == expected, name

    def test_knowledge_inside_temporal(self, bt_system):
        # Once the receiver knows the bit it keeps knowing it.
        formula = AG(bit_transmission.receiver_knows_bit() >> AG(bit_transmission.receiver_knows_bit()))
        assert check_valid(bt_system, formula)

    def test_temporal_inside_knowledge(self, counter_system):
        # The agent knows (trivially) that the counter can keep growing or a
        # flag can be set: a K over an EX formula.
        from repro.logic.formula import Knows

        checker = CTLKModelChecker(counter_system)
        initial = counter_system.initial_states[0]
        assert checker.holds(initial, Knows("agent", EX(parse("c=1 | flag"))))

    def test_check_reachable(self, bt_system):
        assert check_reachable(bt_system, parse("ack"))
        assert not check_reachable(bt_system, parse("ack & !snt"))


class TestAnalysis:
    def test_everyone_knows_level_builder(self):
        formula = everyone_knows_level(Prop("p"), ("a", "b"), 2)
        assert str(formula) == "E[a,b] E[a,b] p"
        with pytest.raises(ModelError):
            everyone_knows_level(Prop("p"), ("a",), -1)

    def test_knowledge_level_in_bit_transmission(self, bt_system):
        # In the final state the receiver knows the bit and the sender knows
        # that, but the receiver does not know that the sender knows: the
        # group knowledge level of "receiver knows the bit" stops at 1.
        final = next(
            state
            for state in bt_system.states
            if bt_system.context.labelling(state) >= {"sbit", "rbit", "snt", "ack"}
        )
        fact = bit_transmission.receiver_knows_bit()
        level = knowledge_level_reached(bt_system, final, fact, ("S", "R"))
        assert level == 1
        assert not is_common_knowledge(bt_system, final, fact, ("S", "R"))

    def test_statistics_keys(self, bt_system):
        stats = system_statistics(bt_system)
        assert stats["states"] == 6
        assert stats["synchronous"] is False
        assert set(stats["agents"]) == {"S", "R"}
        assert stats["agents"]["R"]["local_states"] == 3

    def test_knowledge_census(self, bt_system):
        census = knowledge_census(bt_system, propositions=["sbit"], agents=["R"])
        entry = census["R"]["sbit"]
        assert entry["knows_true"] + entry["knows_false"] + entry["uncertain"] == len(
            bt_system.states
        )
        # The receiver knows the bit exactly in the four states after a
        # successful transmission.
        assert entry["knows_true"] + entry["knows_false"] == 4
