"""Chaos suite: deterministic fault injection at the engine's hook points.

Every test injects a failure (or a perturbation) at an instrumented site
via :class:`repro.resilience.faults.FaultInjector` and then asserts the
kernel survived: :func:`check_kernel_invariants` passes on every touched
manager, results are unchanged where the perturbation must be invisible,
and a clean rerun of the workload still succeeds.

``REPRO_CHAOS_SEED`` adds an extra seed to the randomised sweep — CI
passes its run number, so every CI run explores a fresh schedule while
any failure stays reproducible from the seed in the log.
"""

import itertools
import os

import pytest

from repro.interpretation import (
    construct_by_rounds,
    enumerate_implementations,
    iterate_interpretation,
)
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs
from repro.resilience import Budget, faults
from repro.resilience.faults import (
    SITES,
    FaultInjector,
    InjectedFault,
    check_kernel_invariants,
    seeded_plan,
)
from repro.symbolic.bdd import BDD
from repro.util.errors import BudgetExceededError, ReproError


def test_injected_fault_is_not_a_repro_error():
    # Library recovery code catches its own error classes; an injected
    # crash must never look like a condition the engine knows how to handle.
    assert not issubclass(InjectedFault, ReproError)


def test_seeded_plan_is_deterministic_and_well_formed():
    actions = ("raise", "cache_clear", "reorder_request")
    plan = seeded_plan(42, faults=5, actions=actions)
    assert plan == seeded_plan(42, faults=5, actions=actions)
    assert len(plan) == 5
    for site, occurrence, action in plan:
        assert site in SITES
        assert 1 <= occurrence <= 25
        assert action in actions
    assert seeded_plan(1, faults=5) != seeded_plan(2, faults=5)


def test_injector_counts_and_disarms():
    assert not faults.ARMED
    bdd = BDD(4, cache_ceiling=2)
    with FaultInjector([("bdd.cache_clear", 999, "raise")]) as chaos:
        assert faults.ARMED
        f = bdd.and_(bdd.var(0), bdd.var(1))
        bdd.or_(f, bdd.var(2))
        assert chaos.counts.get("bdd.cache_clear", 0) >= 1
        assert chaos.fired == []  # occurrence 999 never reached
    assert not faults.ARMED


# -- raise injection at every registered site --------------------------------------------
#
# One workload per site; each actually reaches its site (the test fails if
# the fault never fires).  After the crash the touched managers must pass
# the full structural invariant check and the workload must succeed when
# rerun cleanly.


def _grown_bdd():
    bdd = BDD(8)
    bdd.enable_reordering(threshold=4)
    node = bdd.var(0)
    for var in range(1, 8):
        node = bdd.or_(bdd.and_(node, bdd.var(var)), bdd.var(var - 1))
    return bdd


def _cache_churn_bdd():
    bdd = BDD(6, cache_ceiling=4)
    for left, right in itertools.combinations(range(6), 2):
        bdd.and_(bdd.var(left), bdd.var(right))
        bdd.or_(bdd.var(left), bdd.var(right))
    return bdd


def _garbage_then_reorder():
    bdd = BDD(8)
    root = bdd.var(0)
    for var in range(1, 8):
        bdd.and_(bdd.var(var - 1), bdd.var(var))  # garbage
        root = bdd.or_(bdd.and_(root, bdd.var(var)), bdd.var(var))
    bdd.reorder([root])
    return bdd


def _symbolic_construct(n=4):
    model = mc.symbolic_model(n)
    program = mc.program(n).check_against_context(model)
    result = construct_by_rounds(program, model)
    return result, model


def _symbolic_iterate():
    model = vs.symbolic_model()
    program = vs.PROGRAM_FAMILY["cyclic"][0]()
    iterate_interpretation(program, model)
    return model


def _explicit_construct():
    context = mc.context(3)
    program = mc.program(3).check_against_context(context)
    return construct_by_rounds(program, context)


def _synthesis():
    return enumerate_implementations(
        vs.PROGRAM_FAMILY["cyclic"][0](), vs.context(), max_free_states=12
    )


def _fuzz():
    from repro.spec.fuzz import run_fuzz

    return run_fuzz(count=2, seed=0)


SITE_WORKLOADS = [
    ("bdd.unique_growth", 1, _grown_bdd),
    ("bdd.cache_clear", 1, _cache_churn_bdd),
    ("bdd.gc", 1, _garbage_then_reorder),
    ("bdd.reorder", 1, _garbage_then_reorder),
    ("bdd.swap", 1, _garbage_then_reorder),
    ("construct.round", 2, lambda: _symbolic_construct()),
    ("fixpoint.iter", 2, _symbolic_iterate),
    ("fixpoint", 1, _symbolic_iterate),
    ("evaluator.batch", 2, _explicit_construct),
    ("synthesis.candidate", 2, _synthesis),
    ("spec.fuzz.check", 1, _fuzz),
]

assert {site for site, _, _ in SITE_WORKLOADS} == set(SITES)


@pytest.mark.parametrize(
    "site,occurrence,workload", SITE_WORKLOADS, ids=[s for s, _, _ in SITE_WORKLOADS]
)
def test_raise_injection_leaves_kernel_consistent(site, occurrence, workload):
    from repro.obs import registry

    before = set(map(id, registry.live_managers()))
    with FaultInjector([(site, occurrence, "raise")]) as chaos:
        with pytest.raises(InjectedFault) as caught:
            workload()
    assert caught.value.site == site
    assert chaos.fired == [(site, occurrence, "raise")]
    # Every manager the workload created survived the crash structurally.
    touched = [m for m in registry.live_managers() if id(m) not in before]
    for manager in touched:
        check_kernel_invariants(manager)
    # The engine is not poisoned: the same workload succeeds cleanly.
    workload()


# -- mid-swap interruption: the hardest structural case ----------------------------------


def _coupled_function(bdd):
    """(v0&v4)|(v1&v5)|(v2&v6)|(v3&v7): the identity order is bad, so a
    sift performs many level swaps trying to interleave the pairs."""
    node = bdd.and_(bdd.var(0), bdd.var(4))
    for var in range(1, 4):
        node = bdd.or_(node, bdd.and_(bdd.var(var), bdd.var(var + 4)))
    return node


def _truth_table(bdd, node):
    return [
        bdd.evaluate(node, dict(enumerate(bits)))
        for bits in itertools.product([False, True], repeat=8)
    ]


def test_mid_swap_interruption_preserves_functions():
    # A twin manager counts the swaps of the uninterrupted sift, making the
    # interruption point deterministic for this workload.
    twin = BDD(8)
    twin.reorder([_coupled_function(twin)])
    swaps = twin._swap_count
    assert swaps >= 2, "workload must actually sift"

    bdd = BDD(8)
    root = _coupled_function(bdd)
    reference = _truth_table(bdd, root)
    with FaultInjector([("bdd.swap", swaps // 2 + 1, "raise")]) as chaos:
        with pytest.raises(InjectedFault):
            bdd.reorder([root])
    assert chaos.fired
    check_kernel_invariants(bdd)
    # The root still denotes the same boolean function from mid-sift levels.
    assert _truth_table(bdd, root) == reference
    # And a subsequent full reorder completes and preserves it too.
    bdd.reorder([root])
    check_kernel_invariants(bdd)
    assert _truth_table(bdd, root) == reference


def test_mid_swap_interruption_repairs_keep_groups():
    twin = BDD(8)
    twin.declare_groups([(0, 1), (2, 3), (4, 5), (6, 7)])
    twin.reorder([_coupled_function(twin)])
    swaps = twin._swap_count
    assert swaps >= 2

    bdd = BDD(8)
    bdd.declare_groups([(0, 1), (2, 3), (4, 5), (6, 7)])
    root = _coupled_function(bdd)
    reference = _truth_table(bdd, root)
    with FaultInjector([("bdd.swap", swaps // 2 + 1, "raise")]):
        with pytest.raises(InjectedFault):
            bdd.reorder([root])
    # check_kernel_invariants asserts keep-group contiguity: the repair
    # path must have restored adjacency from the between-swaps state.
    check_kernel_invariants(bdd)
    assert _truth_table(bdd, root) == reference


# -- perturbations that must be invisible ------------------------------------------------


def test_cache_clear_injection_is_invisible():
    # Two fresh models, so both runs see identical (cold) event streams;
    # clearing memo tables mid-construction forces recomputation only, and
    # recomputation re-derives hash-consed nodes already in the table — the
    # chaotic run must land on the same node ids as the clean one.
    clean_model = mc.symbolic_model(4)
    clean = construct_by_rounds(
        mc.program(4).check_against_context(clean_model), clean_model
    )
    model = mc.symbolic_model(4)
    program = mc.program(4).check_against_context(model)
    with FaultInjector(
        [("construct.round", 2, "cache_clear"), ("evaluator.batch", 3, "cache_clear")]
    ) as chaos:
        chaotic = construct_by_rounds(program, model)
    assert len(chaos.fired) == 2
    assert chaotic.verified and clean.verified
    assert chaotic.iterations == clean.iterations
    assert chaotic.system.states_node == clean.system.states_node
    check_kernel_invariants(model.encoding.bdd)


def test_growth_event_never_fires_mid_reorder():
    # Regression (found by the seeded sweep, seed 2): level swaps create
    # nodes through _node between their unique-table mutations, so the
    # auto-trigger's growth event used to fire from inside a half-applied
    # swap — and a raising obs sink there corrupted the table in a way the
    # between-swaps repair cannot undo.  The trigger block now stays silent
    # while a sift is in flight; the injected raise must land at an
    # ordinary (exception-atomic) allocation instead.
    def armed_model():
        model = mc.symbolic_model(4)
        model.encoding.bdd.enable_reordering(
            groups=model.encoding.reorder_groups(), threshold=600
        )
        return model, mc.program(4).check_against_context(model)

    # A twin run counts the growth events of this workload, so the raise
    # below targets the last one deterministically.
    twin, twin_program = armed_model()
    with FaultInjector([("bdd.unique_growth", 10**9, "raise")]) as counter:
        construct_by_rounds(twin_program, twin)
    events = counter.counts.get("bdd.unique_growth", 0)
    assert events >= 1, "workload must cross the growth trigger"
    assert twin.encoding.bdd._reorder_count >= 1, "workload must actually sift"

    model, program = armed_model()
    bdd = model.encoding.bdd
    with FaultInjector([("bdd.unique_growth", events, "raise")]) as chaos:
        with pytest.raises(InjectedFault):
            construct_by_rounds(program, model)
    assert chaos.fired
    check_kernel_invariants(bdd)
    rerun = construct_by_rounds(program, model)
    assert rerun.verified
    check_kernel_invariants(bdd)


def test_reorder_request_injection_is_honoured_and_invisible():
    model = mc.symbolic_model(4)
    bdd = model.encoding.bdd
    program = mc.program(4).check_against_context(model)
    clean = construct_by_rounds(program, model)
    # Arm reordering with a trigger too high to fire on its own: any sift
    # that runs was forced by the injected request.
    bdd.enable_reordering(groups=model.encoding.reorder_groups(), threshold=10**9)
    reorders_before = bdd._reorder_count
    with FaultInjector([("construct.round", 2, "reorder_request")]) as chaos:
        chaotic = construct_by_rounds(program, model)
    assert chaos.fired
    assert bdd._reorder_count > reorders_before  # a safe point ran the sift
    assert chaotic.verified
    assert chaotic.iterations == clean.iterations
    assert chaotic.system.state_count() == clean.system.state_count()
    check_kernel_invariants(bdd)


def test_suppressed_disables_injection():
    with FaultInjector([("bdd.cache_clear", 1, "raise")]) as chaos:
        bdd = BDD(4, cache_ceiling=2)
        with faults.suppressed():
            for left, right in itertools.combinations(range(4), 2):
                bdd.and_(bdd.var(left), bdd.var(right))
        assert chaos.fired == []
        assert chaos.counts.get("bdd.cache_clear", 0) == 0


# -- budgets under chaos -----------------------------------------------------------------


def test_resume_after_budget_kill_under_chaos_reaches_same_fixed_point():
    model = mc.symbolic_model(6)
    program = mc.program(6).check_against_context(model)
    with pytest.raises(BudgetExceededError) as caught:
        construct_by_rounds(program, model, budget=Budget(max_iterations=2))
    partial = caught.value.partial
    assert partial.rounds == 2
    # Resume with benign chaos running: cache clears and a forced sift must
    # not change the fixed point the resumed run converges to.
    model.encoding.bdd.enable_reordering(
        groups=model.encoding.reorder_groups(), threshold=10**9
    )
    with FaultInjector(
        [("construct.round", 1, "cache_clear"), ("construct.round", 2, "reorder_request")]
    ) as chaos:
        resumed = construct_by_rounds(program, model, resume=partial)
    assert len(chaos.fired) == 2
    fresh = construct_by_rounds(program, model)
    assert resumed.verified and fresh.verified
    assert resumed.iterations == fresh.iterations
    assert resumed.system.states_node == fresh.system.states_node
    check_kernel_invariants(model.encoding.bdd)


# -- the randomised sweep ----------------------------------------------------------------

_SWEEP_SEEDS = [0, 1, 2, 3]
if os.environ.get("REPRO_CHAOS_SEED"):
    _SWEEP_SEEDS.append(int(os.environ["REPRO_CHAOS_SEED"]))


@pytest.mark.parametrize("seed", _SWEEP_SEEDS)
def test_seeded_chaos_sweep(seed):
    """Run a governed symbolic construction under a seeded random fault
    schedule (raises, cache clears, forced sifts at arbitrary occurrences)
    and assert the kernel survives whatever the schedule hits."""
    plan = seeded_plan(
        seed, faults=3, actions=("raise", "cache_clear", "reorder_request")
    )
    model = mc.symbolic_model(4)
    bdd = model.encoding.bdd
    bdd.enable_reordering(groups=model.encoding.reorder_groups(), threshold=600)
    program = mc.program(4).check_against_context(model)
    with FaultInjector(plan) as chaos:
        try:
            construct_by_rounds(program, model)
        except InjectedFault:
            pass  # a scheduled raise fired; the kernel must still be sound
    check_kernel_invariants(bdd)
    # Whatever the schedule did, the engine still reaches the fixed point.
    rerun = construct_by_rounds(program, model)
    assert rerun.verified
    check_kernel_invariants(bdd)
