"""The declarative spec layer: grammar, validator diagnostics, golden
round-trips of the bundled zoo, the registry and the CLI.

The round-trip property at the heart of the layer: for every bundled
protocol (at several parameter instantiations), ``to_kbp`` followed by
``parse_spec`` reproduces an equivalent spec — same variables, same
observation structure, same effects, same initial condition, same
programs clause for clause."""

import pytest

from repro.modeling.expressions import Comparison, Const, VarRef
from repro.protocols import registered_protocols
from repro.spec import (
    SpecError,
    bundled_spec_names,
    load_spec,
    parse_spec,
    render_formula,
)
from repro.spec.__main__ import main as spec_cli


MINIMAL = """
protocol minimal

var x : bool
var n : 0..2

agent a
  observes x n
  action bump : n := ite(n < 2, n + 1, n)
  if K[a] !x do bump
end

init !x & (n == 0)
"""


# -- parsing basics ----------------------------------------------------------------------


class TestParser:
    def test_minimal_spec_parses(self):
        spec = parse_spec(MINIMAL, source="minimal.kbp")
        assert spec.name == "minimal"
        assert [v.name for v in spec.variables] == ["x", "n"]
        assert spec.agents == ("a",)
        assert set(spec.actions["a"]) == {"bump"}

    def test_param_override(self):
        spec = load_spec("muddy_children", n=2)
        assert spec.params["n"] == 2
        assert len(spec.agents) == 2

    def test_unknown_param_override_rejected(self):
        with pytest.raises(SpecError, match="unknown parameter"):
            load_spec("bit_transmission", bogus=3)

    def test_foreach_expands_and_nests(self):
        text = """
param n = 2
protocol grid
foreach i in 0..n-1
  foreach j in 0..n-1
    var cell{i}{j} : bool
  end
end
agent a
  observes cell00 cell01 cell10 cell11
end
init cell00
"""
        spec = parse_spec(text, source="grid.kbp")
        assert [v.name for v in spec.variables] == [
            "cell00",
            "cell01",
            "cell10",
            "cell11",
        ]

    def test_any_all_folds(self):
        text = """
param n = 3
protocol folds
foreach i in 0..n-1
  var b{i} : bool
end
agent a
  observes b0 b1 b2
  action go
  if K[a] any(i in 0..n-1 : b{i}) do go
end
init all(i in 0..n-1 : !b{i})
"""
        spec = parse_spec(text, source="folds.kbp")
        # The empty range folds to the neutral element.
        empty = parse_spec(
            text.replace("param n = 3", "param n = 3\nparam m = 0").replace(
                "init all(i in 0..n-1 : !b{i})", "init all(i in 0..m-1 : !b{i})"
            ),
            source="folds.kbp",
        )
        assert empty.initial.equals(Const(True))
        assert spec.equivalent(parse_spec(spec.to_kbp(), source="rt"))

    def test_lets_substitute_in_guards(self):
        spec = parse_spec(MINIMAL.replace(
            "  if K[a] !x do bump",
            "  if K[a] $ready do bump",
        ).replace("agent a", "let ready = !x\nagent a"), source="lets.kbp")
        base = parse_spec(MINIMAL, source="base.kbp")
        assert spec.programs["main"]["a"] == base.programs["main"]["a"]

    def test_unbalanced_end_rejected(self):
        with pytest.raises(SpecError, match="unmatched 'end'"):
            parse_spec("protocol p\nend\n", source="bad.kbp")

    def test_errors_carry_source_and_line(self):
        with pytest.raises(SpecError) as excinfo:
            parse_spec("protocol p\nvar x : bool\nvar x : bool\n", source="dup.kbp")
        assert "dup.kbp:3" in str(excinfo.value)


# -- validator diagnostics ---------------------------------------------------------------


def _spec_text(body):
    return f"protocol p\n{body}\n"


class TestValidatorDiagnostics:
    """Spec-level errors must name the offending construct precisely,
    before any lowering happens."""

    def test_unknown_observed_variable(self):
        with pytest.raises(SpecError, match="unknown variable 'y' in observes of agent 'a'"):
            parse_spec(_spec_text("var x : bool\nagent a\n  observes y\nend\ninit x"))

    def test_overlapping_write_sets_name_both_parties(self):
        text = _spec_text(
            "var x : bool\n"
            "agent a\n  observes x\n  action s : x := true\nend\n"
            "agent b\n  observes x\n  action t : x := false\nend\n"
            "init x"
        )
        with pytest.raises(
            SpecError,
            match="overlapping write sets: variable 'x' is written by both agent 'a' and agent 'b'",
        ):
            parse_spec(text)

    def test_out_of_domain_assignment(self):
        text = _spec_text(
            "var x : 0..2\nagent a\n  observes x\n  action s : x := 5\nend\ninit x == 0"
        )
        with pytest.raises(
            SpecError, match=r"assigns out-of-domain constant 5 to 'x' \(domain: \[0, 1, 2\]\)"
        ):
            parse_spec(text)

    def test_out_of_domain_comparison(self):
        text = _spec_text("var x : 0..2\nagent a\n  observes x\nend\ninit x == 7")
        with pytest.raises(
            SpecError, match=r"constant 7 is outside the domain of variable 'x'"
        ):
            parse_spec(text)

    def test_type_mismatch_in_assignment(self):
        # True == 1 in Python, so 'n := b' would pass a naive domain check
        # and then diverge between the lowerings; the validator rejects it.
        text = _spec_text(
            "var n : 0..1\nvar b : bool\nagent a\n  observes n b\n"
            "  action copy : n := b\nend\ninit n == 0"
        )
        with pytest.raises(
            SpecError,
            match="assigns a boolean expression to non-boolean variable 'n'",
        ):
            parse_spec(text)

    def test_unknown_action_in_clause(self):
        text = _spec_text("var x : bool\nagent a\n  observes x\n  if x do zap\nend\ninit x")
        with pytest.raises(SpecError, match="agent 'a' has no action 'zap'"):
            parse_spec(text)

    def test_modality_for_unknown_agent(self):
        text = _spec_text(
            "var x : bool\nagent a\n  observes x\n  action s : x := true\n"
            "  if K[ghost] x do s\nend\ninit x"
        )
        with pytest.raises(
            SpecError, match="knowledge modality for unknown agent 'ghost'"
        ):
            parse_spec(text)

    def test_non_boolean_guard_atom(self):
        text = _spec_text("var x : 0..2\nagent a\n  observes x\n  if x do noop\nend\ninit x == 0")
        with pytest.raises(SpecError, match="guard atom x is not boolean"):
            parse_spec(text)

    def test_order_must_be_a_permutation(self):
        text = _spec_text(
            "var x : bool\nvar y : bool\norder x\nagent a\n  observes x\nend\ninit x"
        )
        with pytest.raises(
            SpecError, match=r"order hint is not a permutation of the variables \(missing: \['y'\]\)"
        ):
            parse_spec(text)

    def test_param_must_precede_use(self):
        with pytest.raises(SpecError, match="unknown parameter 'n'"):
            parse_spec("protocol p-{n}\nparam n = 2\nvar x : bool\nagent a\n  observes x\nend\ninit x")

    def test_program_name_main_reserved(self):
        text = _spec_text(
            "var x : bool\nagent a\n  observes x\nend\nprogram main\nend\ninit x"
        )
        with pytest.raises(SpecError, match="program name 'main' is reserved"):
            parse_spec(text)


# -- golden round trips over the bundled zoo ---------------------------------------------


ROUND_TRIP_CASES = [
    ("bit_transmission", {}),
    ("variable_setting", {}),
    ("muddy_children", {}),
    ("muddy_children", {"n": 2}),
    ("muddy_children", {"n": 5, "max_round": 7}),
    ("dining_cryptographers", {}),
    ("dining_cryptographers", {"n": 4}),
    ("sequence_transmission", {}),
    ("sequence_transmission", {"length": 3}),
    ("unexpected_examination", {}),
    ("unexpected_examination", {"num_days": 3}),
    ("coordinated_attack", {}),
    ("coordinated_attack", {"n": 3}),
    ("leader_election", {}),
    ("leader_election", {"n": 3}),
]


@pytest.mark.parametrize(
    "name,params",
    ROUND_TRIP_CASES,
    ids=[f"{name}-{params}" for name, params in ROUND_TRIP_CASES],
)
def test_bundled_spec_round_trips(name, params):
    spec = load_spec(name, **params)
    reparsed = parse_spec(spec.to_kbp(), source=f"<{name} roundtrip>")
    assert spec.equivalent(reparsed)
    # The rendering is canonical after one round: re-rendering the reparsed
    # spec is textually a no-op (the original may differ in the parameter
    # comment, which parsing deliberately drops).
    assert parse_spec(reparsed.to_kbp(), source="<rt2>").to_kbp() == reparsed.to_kbp()


def test_every_bundled_spec_is_covered():
    tested = {name for name, _ in ROUND_TRIP_CASES}
    assert tested == set(bundled_spec_names())


def test_bundled_specs_validate_and_lower():
    for name in bundled_spec_names():
        spec = load_spec(name)
        spec.validate()
        parts = spec.context_parts()
        assert parts["name"] == spec.name
        assert set(parts["observables"]) == set(spec.agents)


# -- the registry ------------------------------------------------------------------------


class TestRegistry:
    def test_all_eight_protocols_registered(self):
        registry = registered_protocols()
        assert set(registry) == set(bundled_spec_names())

    def test_entries_follow_the_shared_convention(self):
        for name, entry in registered_protocols().items():
            module = entry.module
            for attribute in ("spec", "context_parts", "context", "symbolic_model", "program"):
                assert hasattr(module, attribute), (name, attribute)
            assert module.SPEC_NAME == entry.spec_name

    def test_spec_names_resolve_to_bundled_files(self):
        for entry in registered_protocols().values():
            assert load_spec(entry.spec_name) is not None


# -- equivalence of the two lowerings on the new zoo specs covered here ------------------


def test_spec_context_and_symbolic_model_share_parts():
    spec = parse_spec(MINIMAL, source="minimal.kbp")
    context = spec.variable_context()
    model = spec.symbolic_model()
    assert context.name == model.name == "minimal"
    explicit_initial = set(context.initial_states)
    symbolic_initial = set(model.encoding.iter_states(model.initial))
    assert symbolic_initial == explicit_initial


def test_variable_order_hint_flows_to_the_symbolic_model():
    spec = load_spec("dining_cryptographers")
    model = spec.symbolic_model()
    assert tuple(v.name for v in model.encoding.variables) == spec.variable_order
    assert spec.variable_order != tuple(v.name for v in spec.variables)


# -- renderer ----------------------------------------------------------------------------


def test_render_formula_minimal_parentheses():
    from repro.logic.formula import And, Knows, Not, Or, Prop

    formula = Or((And((Prop("a"), Prop("b"))), Not(Prop("c"))))
    assert render_formula(formula) == "a & b | !c"
    assert render_formula(Knows("x", And((Prop("a"), Prop("b"))))) == "K[x] (a & b)"


# -- the CLI -----------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        assert spec_cli(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(bundled_spec_names())

    def test_stats_with_param(self, capsys):
        assert spec_cli(["muddy_children", "-p", "n=2"]) == 0
        out = capsys.readouterr().out
        assert "muddy-children-2" in out
        assert "state space" in out
        assert "reachable" in out

    def test_kbp_echo_round_trips(self, capsys):
        assert spec_cli(["bit_transmission", "--kbp"]) == 0
        out = capsys.readouterr().out
        assert parse_spec(out, source="<cli>").equivalent(load_spec("bit_transmission"))

    def test_unknown_spec_fails(self, capsys):
        assert spec_cli(["no_such_protocol"]) == 1
        assert "no bundled spec" in capsys.readouterr().err

    def test_bad_param_fails(self, capsys):
        assert spec_cli(["bit_transmission", "-p", "n"]) == 1
        assert "--param expects" in capsys.readouterr().err

    def test_fuzz_smoke(self, capsys):
        assert spec_cli(["--fuzz", "3", "--seed", "11"]) == 0
        assert "checked 3 specs" in capsys.readouterr().out
