"""Tests for contexts, protocols, transition systems and interpreted systems."""

import pytest

from repro.logic import parse
from repro.modeling import StateSpace, boolean, ite, ranged, var
from repro.systems import (
    Context,
    JointProtocol,
    Protocol,
    constant_protocol,
    generate_transition_system,
    represent,
    variable_context,
)
from repro.systems.actions import Action, JointAction, NOOP_NAME
from repro.systems.runs import Run, enumerate_points, enumerate_runs
from repro.util.errors import ModelError, ProgramError


def _always(actions):
    return lambda local_state: frozenset(actions)


class TestActions:
    def test_action_equality_by_name(self):
        assert Action("go") == Action("go")
        assert Action("go") != Action("stop")

    def test_empty_action_name_rejected(self):
        with pytest.raises(ProgramError):
            Action("")

    def test_joint_action_lookup(self):
        joint = JointAction(None, {"a": "go", "b": "stop"})
        assert joint.action_of("a") == "go"
        assert joint.agents() == ("a", "b")

    def test_joint_action_missing_agent(self):
        with pytest.raises(ProgramError):
            JointAction(None, {"a": "go"}).action_of("b")

    def test_joint_action_hashable_and_equal(self):
        assert JointAction("e", {"a": "x"}) == JointAction("e", {"a": "x"})
        assert len({JointAction("e", {"a": "x"}), JointAction("e", {"a": "x"})}) == 1


class TestProtocols:
    def test_dict_protocol_lookup(self):
        protocol = Protocol("a", {("l",): {"go"}}, default={"noop"})
        assert protocol.actions(("l",)) == frozenset({"go"})
        assert protocol.actions(("other",)) == frozenset({"noop"})

    def test_protocol_without_default_raises_on_unknown(self):
        protocol = Protocol("a", {("l",): {"go"}})
        with pytest.raises(ProgramError):
            protocol.actions(("other",))

    def test_empty_action_set_rejected(self):
        with pytest.raises(ProgramError):
            Protocol("a", {("l",): set()})

    def test_callable_protocol(self):
        protocol = Protocol("a", _always({"go"}))
        assert protocol.actions("anything") == frozenset({"go"})
        assert protocol.is_deterministic_on(["x", "y"])

    def test_agrees_with(self):
        first = Protocol("a", _always({"go"}))
        second = Protocol("a", {("l",): {"go"}}, default={"go"})
        assert first.agrees_with(second, [("l",), ("m",)])

    def test_joint_protocol_validates_agent_names(self):
        with pytest.raises(ProgramError):
            JointProtocol({"b": Protocol("a", _always({"go"}))})

    def test_constant_protocol(self):
        protocol = constant_protocol("a", {"go", "stop"})
        assert protocol.actions("whatever") == frozenset({"go", "stop"})


class TestVariableContext:
    def test_counter_generation(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        ts = generate_transition_system(counter_context, protocol)
        assert len(ts) == 4  # counter values 0..3, flag never set
        assert ts.max_depth() == 3
        assert ts.is_total()

    def test_depths_follow_counter(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        ts = generate_transition_system(counter_context, protocol)
        for state in ts.states:
            assert ts.depth(state) == state["c"]

    def test_noop_protocol_stays_at_initial_state(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {NOOP_NAME})})
        ts = generate_transition_system(counter_context, protocol)
        assert len(ts) == 1

    def test_nondeterministic_protocol_reaches_more_states(self, counter_context):
        protocol = JointProtocol(
            {"agent": constant_protocol("agent", {"inc", "set_flag"})}
        )
        ts = generate_transition_system(counter_context, protocol)
        assert len(ts) == 8  # every counter value with and without the flag

    def test_max_states_bound_enforced(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        with pytest.raises(ModelError):
            generate_transition_system(counter_context, protocol, max_states=2)

    def test_max_depth_truncation(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        ts = generate_transition_system(counter_context, protocol, max_depth=1)
        assert ts.truncated
        assert len(ts) == 2

    def test_local_state_projection(self, counter_context):
        state = counter_context.initial_states[0]
        assert counter_context.local_state("agent", state) == (("c", 0),)

    def test_unknown_agent_rejected(self, counter_context):
        with pytest.raises(ModelError):
            counter_context.local_state("nobody", counter_context.initial_states[0])

    def test_labelling(self, counter_context):
        state = counter_context.initial_states[0]
        assert counter_context.labelling(state) == frozenset({"c=0"})

    def test_write_conflict_detected(self):
        x = ranged("x", 0, 3)
        space = StateSpace([x])
        context = variable_context(
            "conflict",
            space,
            observables={"a": ["x"], "b": ["x"]},
            actions={"a": {"set1": {"x": 1}}, "b": {"set2": {"x": 2}}},
            initial=(var(x) == 0),
        )
        protocol = JointProtocol(
            {"a": constant_protocol("a", {"set1"}), "b": constant_protocol("b", {"set2"})}
        )
        with pytest.raises(ModelError):
            generate_transition_system(context, protocol)

    def test_global_constraint_filters_initial_states(self):
        x = ranged("x", 0, 3)
        space = StateSpace([x])
        context = variable_context(
            "constrained",
            space,
            observables={"a": ["x"]},
            actions={"a": {}},
            initial=(var(x) >= 0),
            global_constraint=(var(x) <= 1),
        )
        assert len(context.initial_states) == 2

    def test_no_initial_states_rejected(self):
        x = ranged("x", 0, 1)
        space = StateSpace([x])
        with pytest.raises(ModelError):
            variable_context(
                "empty",
                space,
                observables={"a": ["x"]},
                actions={"a": {}},
                initial=(var(x) == 5),
            )


class TestInterpretedSystem:
    def _system(self, counter_context, actions):
        protocol = JointProtocol({"agent": constant_protocol("agent", actions)})
        return represent(counter_context, protocol)

    def test_knowledge_of_observed_variable(self, counter_context):
        system = self._system(counter_context, {"inc"})
        for state in system.states:
            value = state["c"]
            assert system.holds(state, parse(f"K[agent] c={value}"))

    def test_ignorance_of_unobserved_variable(self, counter_context):
        system = self._system(counter_context, {"inc", "set_flag"})
        # The agent never observes the flag, so whenever both flag values are
        # reachable with the same counter it does not know the flag.
        state = next(s for s in system.states if s["c"] == 1 and not s["flag"])
        assert not system.holds(state, parse("K[agent] flag"))
        assert not system.holds(state, parse("K[agent] !flag"))

    def test_holds_initially_and_everywhere(self, counter_context):
        system = self._system(counter_context, {"inc"})
        assert system.holds_initially(parse("c=0"))
        assert system.holds_everywhere(parse("!flag"))
        assert not system.holds_everywhere(parse("c=0"))

    def test_unreachable_state_rejected(self, counter_context):
        system = self._system(counter_context, {NOOP_NAME})
        space = counter_context.spec.state_space
        unreachable = space.state(c=3, flag=True)
        with pytest.raises(ModelError):
            system.holds(unreachable, parse("flag"))

    def test_counter_system_is_synchronous(self, counter_context):
        # The agent observes the counter, which equals the depth.
        assert self._system(counter_context, {"inc"}).is_synchronous()

    def test_flagging_system_is_not_synchronous(self, counter_context):
        # Setting the flag delays the counter, so states with equal counter
        # (indistinguishable for the agent) are first reached at different depths.
        system = self._system(counter_context, {"inc", "set_flag"})
        assert not system.is_synchronous()

    def test_summary_keys(self, counter_context):
        summary = self._system(counter_context, {"inc"}).summary()
        assert {"states", "transitions", "max_depth", "synchronous"} <= set(summary)

    def test_guard_value_requires_local_guard(self, counter_context):
        system = self._system(counter_context, {"inc", "set_flag"})
        local = (("c", 1),)
        with pytest.raises(ModelError):
            system.guard_value("agent", local, parse("flag"))
        assert system.guard_value("agent", local, parse("c=1")) is True


class TestRuns:
    def test_run_validation(self):
        with pytest.raises(ModelError):
            Run(["s0", "s1"], [])

    def test_run_points(self):
        run = Run(["s0", "s1"], ["act"])
        assert [point.state for point in run.points()] == ["s0", "s1"]
        assert run.point(1).time == 1

    def test_enumerate_runs_counts(self, counter_context):
        protocol = JointProtocol(
            {"agent": constant_protocol("agent", {"inc", NOOP_NAME})}
        )
        ts = generate_transition_system(counter_context, protocol)
        runs = enumerate_runs(ts, horizon=2)
        # Each round has two choices (inc or noop) from every state except
        # that inc saturates at 3; with horizon 2 from c=0 there are 4 runs.
        assert len(runs) == 4
        assert all(len(run) == 2 for run in runs)

    def test_points_local_history(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        ts = generate_transition_system(counter_context, protocol)
        run = enumerate_runs(ts, horizon=3)[0]
        history = run.local_history(counter_context, "agent", 2)
        assert history == ((("c", 0),), (("c", 1),), (("c", 2),))

    def test_enumerate_points(self, counter_context):
        protocol = JointProtocol({"agent": constant_protocol("agent", {"inc"})})
        ts = generate_transition_system(counter_context, protocol)
        points = enumerate_points(ts, horizon=2)
        assert len(points) == 3  # one run, three points

    def test_stuttering_fills_horizon(self):
        x = ranged("x", 0, 1)
        space = StateSpace([x])
        context = variable_context(
            "still",
            space,
            observables={"a": ["x"]},
            actions={"a": {}},
            initial=(var(x) == 0),
        )
        protocol = JointProtocol({"a": constant_protocol("a", {NOOP_NAME})})
        ts = generate_transition_system(context, protocol)
        runs = enumerate_runs(ts, horizon=3)
        assert len(runs) == 1
        assert len(runs[0]) == 3
