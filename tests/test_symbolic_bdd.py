"""Unit tests of the symbolic subsystem (:mod:`repro.symbolic`).

The backend-equivalence property suite in ``tests/test_engine_backends.py``
already exercises the ``"bdd"`` backend end-to-end against the frozenset
reference (it enumerates ``available_backends()``); the tests here pin down
the *kernel* and the *encoding* directly — canonicity, the ``ite``
identities, quantifier/renaming round-trips, satisfying-set counting
against brute force, and the mask <-> BDD codec — so a kernel regression is
reported at the primitive that broke, not as a distant semantic
disagreement.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke import EpistemicStructure
from repro.symbolic import BDD, FALSE, TRUE, SymbolicEncoding, encoding_for
from repro.symbolic.backend_bdd import SymbolicBackend
from repro.util.errors import EngineError


def random_function(manager, rng, depth=0):
    """A random BDD built from connectives over the manager's variables."""
    if depth > 4 or rng.random() < 0.2:
        choice = rng.randrange(4)
        if choice == 0:
            return FALSE
        if choice == 1:
            return TRUE
        level = rng.randrange(manager.num_vars)
        return manager.var(level) if choice == 2 else manager.nvar(level)
    op = rng.choice(["and", "or", "xor", "implies", "iff", "not", "ite"])
    a = random_function(manager, rng, depth + 1)
    if op == "not":
        return manager.not_(a)
    b = random_function(manager, rng, depth + 1)
    if op == "ite":
        c = random_function(manager, rng, depth + 1)
        return manager.ite(a, b, c)
    method = {
        "and": manager.and_,
        "or": manager.or_,
        "xor": manager.xor,
        "implies": manager.implies,
        "iff": manager.iff,
    }[op]
    return method(a, b)


def truth_table(manager, u):
    """The function of ``u`` as a tuple over all assignments (level order)."""
    return tuple(
        manager.evaluate(u, values)
        for values in itertools.product([False, True], repeat=manager.num_vars)
    )


class TestCanonicity:
    def test_structurally_equal_formulas_share_one_node_id(self):
        m = BDD(3)
        x, y, z = m.var(0), m.var(1), m.var(2)
        distributed = m.or_(m.and_(x, y), m.and_(x, z))
        factored = m.and_(x, m.or_(y, z))
        assert distributed == factored
        # De Morgan, double negation and xor-as-iff-negation all land on
        # the identical hash-consed node.
        assert m.not_(m.and_(x, y)) == m.or_(m.not_(x), m.not_(y))
        assert m.not_(m.not_(distributed)) == distributed
        assert m.xor(x, y) == m.not_(m.iff(x, y))

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_equal_truth_tables_imply_equal_node_ids(self, seed):
        rng = random.Random(seed)
        m = BDD(4)
        f = random_function(m, rng)
        g = random_function(m, rng)
        if truth_table(m, f) == truth_table(m, g):
            assert f == g
        else:
            assert f != g

    def test_tautology_and_contradiction_are_the_terminals(self):
        m = BDD(2)
        x = m.var(0)
        assert m.or_(x, m.not_(x)) == TRUE
        assert m.and_(x, m.not_(x)) == FALSE

    def test_order_violation_is_rejected(self):
        m = BDD(2)
        deep = m.var(1)
        with pytest.raises(EngineError):
            m._node(1, deep, TRUE)


class TestIteIdentities:
    def test_terminal_cases(self):
        m = BDD(3)
        f, g, h = m.var(0), m.var(1), m.var(2)
        assert m.ite(TRUE, g, h) == g
        assert m.ite(FALSE, g, h) == h
        assert m.ite(f, g, g) == g
        assert m.ite(f, TRUE, FALSE) == f
        assert m.ite(f, FALSE, TRUE) == m.not_(f)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_ite_matches_boolean_definition(self, seed):
        rng = random.Random(seed)
        m = BDD(4)
        f, g, h = (random_function(m, rng) for _ in range(3))
        composed = m.ite(f, g, h)
        expected = m.or_(m.and_(f, g), m.and_(m.not_(f), h))
        assert composed == expected

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_shannon_expansion(self, seed):
        rng = random.Random(seed)
        m = BDD(4)
        f = random_function(m, rng)
        for level in range(m.num_vars):
            positive = m.restrict(f, level, True)
            negative = m.restrict(f, level, False)
            assert m.ite(m.var(level), positive, negative) == f
            assert level not in m.support(positive)
            assert level not in m.support(negative)


class TestQuantificationAndRenaming:
    def test_exists_and_forall_basics(self):
        m = BDD(3)
        x, y = m.var(0), m.var(1)
        assert m.exists(m.and_(x, y), (1,)) == x
        assert m.forall(m.and_(x, y), (1,)) == FALSE
        assert m.forall(m.implies(y, x), (1,)) == x
        assert m.exists(x, (1, 2)) == x  # independent variables: no-op
        assert m.exists(x, ()) == x

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_exists_agrees_with_restriction_disjunction(self, seed):
        rng = random.Random(seed)
        m = BDD(4)
        f = random_function(m, rng)
        levels = tuple(sorted(rng.sample(range(4), rng.randint(1, 3))))
        expected = FALSE
        for values in itertools.product([False, True], repeat=len(levels)):
            cofactor = f
            for level, value in zip(levels, values):
                cofactor = m.restrict(cofactor, level, value)
            expected = m.or_(expected, cofactor)
        assert m.exists(f, levels) == expected
        assert m.forall(f, levels) == m.not_(m.exists(m.not_(f), levels))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_and_exists_equals_exists_of_conjunction(self, seed):
        rng = random.Random(seed)
        m = BDD(4)
        f = random_function(m, rng)
        g = random_function(m, rng)
        levels = tuple(sorted(rng.sample(range(4), rng.randint(1, 3))))
        assert m.and_exists(f, g, levels) == m.exists(m.and_(f, g), levels)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rename_round_trip(self, seed):
        # num_vars = 4 with "current" levels (0, 1) and "primed" (2, 3):
        # the same separated shift the structure encoding uses.
        rng = random.Random(seed)
        m = BDD(4)
        f = m.and_(
            m.ite(m.var(0), m.var(1), m.not_(m.var(1))),
            random_function_over(m, rng, (0, 1)),
        )
        shifted = m.rename(f, ((0, 2), (1, 3)))
        assert m.support(shifted) <= {2, 3}
        assert m.rename(shifted, ((2, 0), (3, 1))) == f

    def test_rename_rejects_order_violations(self):
        m = BDD(2)
        f = m.and_(m.var(0), m.var(1))
        with pytest.raises(EngineError):
            m.rename(f, ((0, 1), (1, 0)))  # swapping adjacent levels


def random_function_over(manager, rng, levels, depth=0):
    """A random function whose support is within ``levels``."""
    if depth > 3 or rng.random() < 0.25:
        level = rng.choice(levels)
        return manager.var(level) if rng.random() < 0.5 else manager.nvar(level)
    op = rng.choice(["and", "or", "xor"])
    a = random_function_over(manager, rng, levels, depth + 1)
    b = random_function_over(manager, rng, levels, depth + 1)
    return {"and": manager.and_, "or": manager.or_, "xor": manager.xor}[op](a, b)


class TestCountingAndEnumeration:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sat_count_matches_brute_force_up_to_four_vars(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 4)
        m = BDD(num_vars)
        f = random_function(m, rng)
        assert m.sat_count(f) == sum(truth_table(m, f))

    def test_sat_count_terminals(self):
        m = BDD(3)
        assert m.sat_count(FALSE) == 0
        assert m.sat_count(TRUE) == 8

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sat_all_paths_cover_exactly_the_satisfying_assignments(self, seed):
        rng = random.Random(seed)
        m = BDD(3)
        f = random_function(m, rng)
        covered = set()
        for path in m.sat_all(f):
            free = [level for level in range(3) if level not in path]
            for values in itertools.product([False, True], repeat=len(free)):
                assignment = dict(path)
                assignment.update(zip(free, values))
                point = tuple(assignment[level] for level in range(3))
                assert point not in covered  # paths are disjoint
                covered.add(point)
        expected = {
            values
            for values in itertools.product([False, True], repeat=3)
            if m.evaluate(f, values)
        }
        assert covered == expected

    def test_evaluate_accepts_sequences_and_dicts(self):
        m = BDD(2)
        f = m.and_(m.var(0), m.not_(m.var(1)))
        assert m.evaluate(f, [True, False]) is True
        assert m.evaluate(f, {0: True, 1: True}) is False


class TestObservability:
    def test_clear_operation_caches_keeps_node_ids_valid(self):
        m = BDD(3)
        f = m.iff(m.var(0), m.or_(m.var(1), m.var(2)))
        g = m.exists(f, (1,))
        before = m.cache_info()
        assert before["ite_cache"] + before["op_cache"] > 0
        m.clear_operation_caches()
        info = m.cache_info()
        assert info["ite_cache"] == 0 and info["op_cache"] == 0
        assert info["nodes"] == before["nodes"]
        # Identical recomputation lands on the identical ids.
        assert m.exists(f, (1,)) == g

    def test_size_and_support(self):
        m = BDD(3)
        f = m.and_(m.var(0), m.or_(m.var(1), m.var(2)))
        assert m.support(f) == {0, 1, 2}
        assert m.size(f) == 3
        assert m.size(TRUE) == 0

    def test_invalid_levels_are_rejected(self):
        m = BDD(2)
        with pytest.raises(EngineError):
            m.var(2)
        with pytest.raises(EngineError):
            m.exists(TRUE, (5,))
        with pytest.raises(EngineError):
            BDD(-1)


def small_structure():
    """A three-world structure with a non-power-of-two universe, so the
    invalid fourth code exercises the domain restriction."""
    return EpistemicStructure(
        ["u", "v", "w"],
        {
            "a": {"u": {"u", "v"}, "v": {"u", "v"}, "w": {"w"}},
            "b": {"u": {"u"}, "v": {"v", "w"}, "w": {"v", "w"}},
        },
        {"u": {"p"}, "v": {"p", "q"}, "w": set()},
    )


class TestEncoding:
    def test_encoding_is_memoised_per_structure(self):
        structure = small_structure()
        assert encoding_for(structure) is encoding_for(structure)
        assert isinstance(encoding_for(structure), SymbolicEncoding)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mask_round_trip(self, n, seed):
        rng = random.Random(seed)
        structure = EpistemicStructure(
            [f"w{i}" for i in range(n)], {"a": {}}, {}
        )
        encoding = encoding_for(structure)
        mask = rng.getrandbits(n)
        node = encoding.set_from_mask(mask)
        assert encoding.mask_from_set(node) == mask
        assert encoding.count(node) == bin(mask).count("1")
        for index in range(n):
            assert encoding.contains_index(node, index) == bool((mask >> index) & 1)

    def test_domain_excludes_invalid_codes(self):
        structure = small_structure()
        encoding = encoding_for(structure)
        assert encoding.count(encoding.domain) == 3
        assert not encoding.contains_index(encoding.domain, 3)

    def test_relation_bdd_matches_adjacency(self):
        structure = small_structure()
        encoding = encoding_for(structure)
        bits = encoding.bits
        for agent in structure.agents:
            relation = encoding.agent_relation(agent)
            for w in structure.worlds:
                for v in structure.worlds:
                    assignment = {}
                    for p in range(bits):
                        shift = bits - 1 - p
                        assignment[p] = bool((structure.index_of(w) >> shift) & 1)
                        assignment[bits + p] = bool(
                            (structure.index_of(v) >> shift) & 1
                        )
                    assert encoding.bdd.evaluate(relation, assignment) == (
                        v in structure.accessible(agent, w)
                    )

    def test_prime_unprime_round_trip(self):
        structure = small_structure()
        encoding = encoding_for(structure)
        node = encoding.set_from_mask(0b101)
        primed = encoding.prime(node)
        assert encoding.bdd.support(primed) <= set(encoding.primed_levels)
        assert encoding.unprime(primed) == node

    def test_empty_group_relations(self):
        structure = small_structure()
        encoding = encoding_for(structure)
        bdd = encoding.bdd
        assert encoding.group_relation((), "union") == FALSE
        full = encoding.group_relation((), "intersection")
        assert full == bdd.and_(encoding.domain, encoding.domain_primed)


class TestSymbolicBackendValues:
    def test_world_set_values_are_canonical(self):
        structure = small_structure()
        backend = SymbolicBackend()
        a = backend.from_worlds(structure, ["u", "w"])
        b = backend.from_worlds(structure, ["w", "u"])
        assert backend.equals(a, b)
        assert a == b and hash(a) == hash(b)
        assert backend.size(a) == 2
        assert backend.to_frozenset(structure, a) == frozenset({"u", "w"})

    def test_complement_stays_inside_the_domain(self):
        structure = small_structure()
        backend = SymbolicBackend()
        nothing = backend.complement(
            structure, backend.universe(structure)
        )
        assert backend.is_empty(nothing)
        everything = backend.complement(structure, backend.empty(structure))
        assert backend.to_frozenset(structure, everything) == frozenset(
            structure.worlds
        )
