"""Symbolic CTLK model checking and dynamic variable reordering.

Three battery groups:

* the symbolic CTLK checker agrees with the explicit one — extensions,
  validity and reachability of a temporal-epistemic formula battery
  (including ``AG(K_a φ)`` and ``AF C_G φ``) on bit transmission, muddy
  children at several sizes and the dining cryptographers;
* the symbolic functional iteration agrees with the explicit one —
  convergence, cycle lengths and generated systems on every bundled
  program family;
* the ROBDD kernel's Rudell sifting — function invariance, keep-group
  adjacency, garbage collection of unrooted nodes, the growth trigger on a
  deliberately bad declared order, and the rename/order regression.
"""

import random

import pytest

from repro.interpretation import construct_by_rounds, iterate_interpretation
from repro.interpretation.iteration import _protocol_signature
from repro.logic.formula import (
    And,
    CommonKnows,
    Iff,
    Implies,
    Knows,
    Not,
    Prop,
    TrueFormula,
    disj,
)
from repro.protocols import bit_transmission as bt
from repro.protocols import dining_cryptographers as dc
from repro.protocols import muddy_children as mc
from repro.protocols import variable_setting as vs
from repro.symbolic import BDD
from repro.symbolic.model import SymbolicContextModel
from repro.temporal import AF, AG, AU, AX, EF, EG, EU, EX
from repro.temporal.ctlk import CTLKModelChecker, check_reachable, check_valid
from repro.temporal.symbolic import SymbolicCTLKModelChecker
from repro.util.errors import (
    EngineError,
    InterpretationError,
    ModelError,
    VariableOrderError,
)


def _battery(base, agent, group):
    """Wrap base (epistemic) formulas in the full temporal repertoire."""
    first, last = base[0], base[-1]
    formulas = []
    for b in base:
        formulas += [EX(b), EF(b), EG(b), AX(b), AF(b), AG(b)]
    formulas += [
        EU(first, last),
        AU(TrueFormula(), first),
        Iff(first, last),
        AG(Knows(agent, first)),
        AF(CommonKnows(group, first)),
        AG(Implies(first, EF(last))),
    ]
    return formulas


def ctlk_cases():
    cases = []
    bt_base = [
        Prop(bt.SBIT),
        bt.receiver_knows_bit(),
        bt.sender_knows_receiver_knows(),
    ]
    cases.append(
        (
            "bit-transmission",
            bt.context(),
            bt.symbolic_model(),
            bt.program(),
            _battery(bt_base, bt.SENDER, (bt.SENDER, bt.RECEIVER)),
        )
    )
    for n in (2, 3, 4, 6):
        group = tuple(mc.child(i) for i in range(n))
        base = [
            mc.muddy_prop(0),
            mc.said_prop(n - 1),
            mc.knows_own_status(0),
        ]
        cases.append(
            (
                f"muddy-children-{n}",
                mc.context(n),
                mc.symbolic_model(n),
                mc.program(n),
                _battery(base, mc.child(0), group),
            )
        )
    group = tuple(dc.crypto(i) for i in range(3))
    dc_base = [
        Prop("done"),
        dc.someone_paid_formula(3),
        Knows(dc.crypto(1), dc.paid_prop(0)),
    ]
    cases.append(
        (
            "dining-cryptographers-3",
            dc.context(3),
            dc.symbolic_model(3),
            dc.program(3),
            _battery(dc_base, dc.crypto(0), group),
        )
    )
    return cases


CTLK_CASES = ctlk_cases()
CTLK_IDS = [case[0] for case in CTLK_CASES]


@pytest.mark.parametrize("name,context,model,program,formulas", CTLK_CASES, ids=CTLK_IDS)
class TestSymbolicCtlkAgreesWithExplicit:
    def test_extensions_validity_and_reachability_agree(
        self, name, context, model, program, formulas
    ):
        explicit = construct_by_rounds(program, context).system
        symbolic = construct_by_rounds(program, model).system
        explicit_checker = CTLKModelChecker(explicit)
        symbolic_checker = CTLKModelChecker(symbolic)
        assert isinstance(symbolic_checker, SymbolicCTLKModelChecker)
        for formula in formulas:
            assert symbolic_checker.extension(formula) == explicit_checker.extension(
                formula
            ), formula
            assert symbolic_checker.valid(formula) == explicit_checker.valid(formula)
            assert symbolic_checker.reachable(formula) == explicit_checker.reachable(
                formula
            )

    def test_holds_and_witnesses_agree(self, name, context, model, program, formulas):
        explicit = construct_by_rounds(program, context).system
        symbolic = construct_by_rounds(program, model).system
        explicit_checker = CTLKModelChecker(explicit)
        symbolic_checker = CTLKModelChecker(symbolic)
        for formula in formulas[:6]:
            witness = symbolic_checker.witness_state(formula)
            if witness is None:
                assert not symbolic_checker.reachable(formula)
                continue
            assert symbolic_checker.holds(witness, formula)
            assert explicit_checker.holds(witness, formula)


class TestSymbolicCheckerBoundary:
    @pytest.fixture(scope="class")
    def muddy3(self):
        model = mc.symbolic_model(3)
        return construct_by_rounds(mc.program(3), model).system

    def test_dispatch_is_transparent(self, muddy3):
        checker = CTLKModelChecker(muddy3)
        assert isinstance(checker, SymbolicCTLKModelChecker)
        assert isinstance(checker, CTLKModelChecker) is False

    def test_non_bdd_backends_are_rejected(self, muddy3):
        with pytest.raises(EngineError):
            CTLKModelChecker(muddy3, backend="frozenset")

    def test_holds_rejects_unreachable_states(self, muddy3):
        # round = 0 with an already-latched "heard" value never arises.
        unreachable = mc.initial_state_for_pattern(muddy3.model, [True, True, True])
        unreachable = unreachable.update({"heard": 1})
        checker = CTLKModelChecker(muddy3)
        with pytest.raises(ModelError):
            checker.holds(unreachable, mc.muddy_prop(0))

    def test_module_level_check_functions_dispatch(self, muddy3):
        said_any = disj([mc.said_prop(i) for i in range(3)])
        assert check_valid(muddy3, AF(said_any))
        assert check_reachable(muddy3, And((mc.muddy_prop(0), mc.said_prop(0))))

    def test_cache_counters(self, muddy3):
        checker = CTLKModelChecker(muddy3)
        formula = AG(mc.knows_own_status(0))
        checker.extension_node(formula)
        info = checker.cache_info()
        assert info["formulas"] >= 1
        misses = info["misses"]
        checker.extension_node(formula)
        after = checker.cache_info()
        assert after["hits"] == info["hits"] + 1
        assert after["misses"] == misses

    def test_scales_past_explicit_enumeration(self):
        n = 14
        model = mc.symbolic_model(n)
        system = construct_by_rounds(mc.program(n), model).system
        assert system.state_count() > 100_000
        checker = CTLKModelChecker(system)
        said_all = disj([mc.said_prop(i) for i in range(n)])
        assert checker.valid(AF(said_all))
        assert checker.valid(AG(Implies(mc.said_prop(0), mc.knows_own_status(0))))


def _norm(states):
    return frozenset(tuple(sorted(s.as_dict().items())) for s in states)


def iterate_cases():
    cases = [("bit-transmission", bt.context(), bt.symbolic_model, bt.program())]
    vs_ctx = vs.context()
    for name, (factory, _) in sorted(vs.PROGRAM_FAMILY.items()):
        cases.append((f"variable-setting-{name}", vs_ctx, vs.symbolic_model, factory()))
    cases.append(("muddy-children-3", mc.context(3), lambda: mc.symbolic_model(3), mc.program(3)))
    return cases


ITERATE_CASES = iterate_cases()
ITERATE_IDS = [case[0] for case in ITERATE_CASES]


class TestSymbolicIterationAgreesWithExplicit:
    @pytest.mark.parametrize("name,context,model_factory,program", ITERATE_CASES, ids=ITERATE_IDS)
    @pytest.mark.parametrize("seed", ["liberal", "restrictive"])
    def test_outcome_agrees(self, name, context, model_factory, program, seed):
        try:
            explicit = iterate_interpretation(program, context, seed=seed)
            explicit_outcome = None
        except InterpretationError as error:
            explicit, explicit_outcome = None, type(error).__name__
        model = model_factory()
        try:
            symbolic = iterate_interpretation(program, model, seed=seed)
            symbolic_outcome = None
        except InterpretationError as error:
            symbolic, symbolic_outcome = None, type(error).__name__
        assert symbolic_outcome == explicit_outcome
        if explicit is None:
            return
        assert symbolic.converged == explicit.converged
        assert symbolic.cycle_length == explicit.cycle_length
        if explicit.converged:
            # On convergence the fixed point is unique along the trajectory:
            # systems and protocol behaviour agree exactly.
            assert symbolic.iterations == explicit.iterations
            explicit_states = set(explicit.system.states)
            assert _norm(symbolic.system.iter_states()) == _norm(explicit_states)
            for agent in context.agents:
                for local in context.local_states_of(agent, explicit_states):
                    assert set(map(str, symbolic.protocol.actions(agent, local))) == set(
                        map(str, explicit.protocol.actions(agent, local))
                    )

    def test_holds_initially_and_everywhere_agree(self):
        explicit = iterate_interpretation(bt.program(), bt.context())
        symbolic = iterate_interpretation(bt.program(), bt.symbolic_model())
        for formula in (
            Not(Knows(bt.RECEIVER, Prop(bt.SBIT))),
            Knows(bt.SENDER, Prop(bt.SBIT)),
            bt.receiver_knows_bit(),
        ):
            assert symbolic.system.holds_initially(formula) == explicit.system.holds_initially(
                formula
            )
            assert symbolic.system.holds_everywhere(formula) == explicit.system.holds_everywhere(
                formula
            )

    def test_materialised_protocol_is_a_fixed_point_seed(self):
        model = mc.symbolic_model(3)
        program = mc.program(3)
        first = iterate_interpretation(program, model)
        assert first.converged
        again = iterate_interpretation(program, model, seed=first.protocol)
        assert again.converged and again.iterations == 1
        constructed = construct_by_rounds(program, model)
        reseeded = iterate_interpretation(program, model, seed=constructed.protocol)
        assert reseeded.converged and reseeded.iterations == 1

    def test_protocol_signature_fast_path_never_enumerates(self):
        model = mc.symbolic_model(3)
        result = iterate_interpretation(mc.program(3), model)
        assert result.protocol.selection_nodes
        # states=None would crash any enumerating path — the class-BDD ids
        # answer without touching states at all.
        signature = _protocol_signature(result.protocol, model, None)
        assert {agent for agent, _ in signature} == set(model.agents)
        assert all(entry[0] == "bdd-classes" for _, entry in signature)
        again = iterate_interpretation(mc.program(3), model)
        assert _protocol_signature(again.protocol, model, None) == signature

    def test_unknown_seed_is_rejected(self):
        with pytest.raises(InterpretationError):
            iterate_interpretation(mc.program(2), mc.symbolic_model(2), seed="bogus")


class TestDynamicReordering:
    def _random_function(self, manager, rng, depth=0):
        if depth > 4 or rng.random() < 0.2:
            var = rng.randrange(manager.num_vars)
            return manager.var(var) if rng.random() < 0.5 else manager.nvar(var)
        op = rng.choice([manager.and_, manager.or_, manager.xor])
        return op(
            self._random_function(manager, rng, depth + 1),
            self._random_function(manager, rng, depth + 1),
        )

    def _points(self, manager, rng, count=64):
        return [
            {var: rng.random() < 0.5 for var in range(manager.num_vars)}
            for _ in range(count)
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_sifting_preserves_functions_and_counts(self, seed):
        rng = random.Random(seed)
        manager = BDD(8)
        functions = [self._random_function(manager, rng) for _ in range(5)]
        points = self._points(manager, rng)
        expected = [
            ([manager.evaluate(f, p) for p in points], manager.sat_count(f))
            for f in functions
        ]
        before, after = manager.reorder(functions)
        assert after <= before
        for f, (values, count) in zip(functions, expected):
            assert [manager.evaluate(f, p) for p in points] == values
            assert manager.sat_count(f) == count

    def test_sifting_shrinks_an_adversarial_order(self):
        # Declared order: a-block above b-block; the conjunction of the
        # iffs a_i <-> b_i is exponential there and linear interleaved.
        k = 6
        manager = BDD(2 * k)
        f = manager.iff(manager.var(0), manager.var(k))
        for i in range(1, k):
            f = manager.and_(f, manager.iff(manager.var(i), manager.var(k + i)))
        exponential = manager.size(f)
        manager.reorder([f])
        assert manager.size(f) <= 3 * k + 2 < exponential
        # The optimum interleaves each a_i with its b_i.
        order = manager.variable_order()
        positions = {var: level for level, var in enumerate(order)}
        for i in range(k):
            assert abs(positions[i] - positions[k + i]) == 1

    def test_growth_trigger_fires_and_rearms(self):
        k = 6
        manager = BDD(2 * k)
        manager.enable_reordering(threshold=24)
        f = manager.iff(manager.var(0), manager.var(k))
        for i in range(1, k):
            f = manager.and_(f, manager.iff(manager.var(i), manager.var(k + i)))
        assert manager.reorder_pending
        assert manager.maybe_reorder([f])
        stats = manager.cache_info()["reorder_stats"]
        assert stats["reorders"] == 1
        assert stats["swaps"] > 0
        assert not manager.reorder_pending
        assert stats["trigger"] >= 2 * 2 * k

    def test_keep_groups_are_never_split(self):
        k = 4
        manager = BDD(2 * k)
        groups = [(2 * p, 2 * p + 1) for p in range(k)]
        rng = random.Random(7)
        functions = [self._random_function(manager, rng) for _ in range(4)]
        manager.enable_reordering(groups=groups, threshold=1)
        manager.reorder(functions)
        for low, high in groups:
            assert manager.level_of_var(high) == manager.level_of_var(low) + 1
        assert all(len(g) == 2 for g in manager.variable_groups())

    def test_reorder_collects_unrooted_nodes(self):
        manager = BDD(6)
        keep = manager.and_(manager.var(0), manager.var(1))
        drop = manager.and_(manager.var(4), manager.xor(manager.var(2), manager.var(3)))
        manager.reorder([keep])
        live = set(manager._unique.values())
        assert keep in live
        assert drop not in live
        # With roots=None nothing pre-existing dies.
        survivor = manager.or_(manager.var(2), manager.var(5))
        manager.reorder()
        assert survivor in set(manager._unique.values())

    def test_rename_rejects_order_violations(self):
        manager = BDD(4)
        f = manager.and_(manager.var(0), manager.var(1))
        with pytest.raises(VariableOrderError) as excinfo:
            manager.rename(f, ((0, 1), (1, 0)))
        assert isinstance(excinfo.value, EngineError)
        assert isinstance(excinfo.value, ValueError)

    def test_rename_respects_reordered_levels(self):
        # After sifting, order legality is judged on *levels*, not on
        # variable indices: a map legal under the declared order can become
        # illegal (and vice versa) once the order changes.
        k = 4
        manager = BDD(2 * k + 2)
        f = manager.iff(manager.var(0), manager.var(k))
        for i in range(1, k):
            f = manager.and_(f, manager.iff(manager.var(i), manager.var(k + i)))
        manager.reorder([f])
        order = manager.variable_order()
        shifted = manager.rename(
            manager.and_(manager.var(order[0]), manager.var(order[1])),
            ((order[0], order[2]), (order[1], order[3])),
        )
        assert manager.support(shifted) == {order[2], order[3]}
        with pytest.raises(VariableOrderError):
            manager.rename(
                manager.and_(manager.var(order[0]), manager.var(order[1])),
                ((order[0], order[3]), (order[1], order[2])),
            )


class TestModelLevelReordering:
    def test_opt_in_through_constructor_and_environment(self, monkeypatch):
        parts = mc.context_parts(2)
        monkeypatch.delenv("REPRO_BDD_REORDER", raising=False)
        assert not SymbolicContextModel(**parts).encoding.bdd.reorder_enabled
        assert SymbolicContextModel(**parts, reorder=True).encoding.bdd.reorder_enabled
        monkeypatch.setenv("REPRO_BDD_REORDER", "sift")
        assert SymbolicContextModel(**parts).encoding.bdd.reorder_enabled
        assert not SymbolicContextModel(**parts, reorder=False).encoding.bdd.reorder_enabled

    def test_construction_under_sifting_is_unchanged(self):
        n = 5
        plain = construct_by_rounds(mc.program(n), mc.symbolic_model(n))
        parts = mc.context_parts(n)
        model = SymbolicContextModel(
            **parts,
            variable_order=None,  # the declared (blocked) order — adversarial
            reorder=True,
        )
        model.encoding.bdd.enable_reordering(threshold=256)
        sifted = construct_by_rounds(mc.program(n), model)
        assert sifted.verified and plain.verified
        assert _norm(sifted.system.iter_states()) == _norm(plain.system.iter_states())
        stats = model.encoding.bdd.cache_info()["reorder_stats"]
        assert stats["reorders"] >= 1
        # Keep-groups (current/primed pairs) survive every sift.
        groups = model.encoding.bdd.variable_groups()
        assert groups is not None and all(len(g) == 2 for g in groups)

    def test_checking_under_sifting_is_unchanged(self):
        n = 6
        program = mc.program(n)
        plain_system = construct_by_rounds(program, mc.symbolic_model(n)).system
        model = SymbolicContextModel(**mc.context_parts(n), reorder=True)
        model.encoding.bdd.enable_reordering(threshold=512)
        system = construct_by_rounds(program, model).system
        said_all = disj([mc.said_prop(i) for i in range(n)])
        plain = CTLKModelChecker(plain_system)
        sifted = CTLKModelChecker(system)
        for formula in (
            AF(said_all),
            AG(Implies(mc.said_prop(0), mc.knows_own_status(0))),
            EF(And((mc.muddy_prop(0), mc.said_prop(0)))),
        ):
            assert sifted.valid(formula) == plain.valid(formula)
            assert sifted.extension(formula) == plain.extension(formula)
