"""End-to-end tests of the muddy-children experiment (E3)."""

import pytest

from repro.analysis import knowledge_progression
from repro.interpretation import iterate_interpretation, sufficient_conditions_report
from repro.logic.formula import CommonKnows, Prop, disj
from repro.protocols import muddy_children as mc


@pytest.fixture(scope="module", params=[2, 3])
def solution(request):
    n = request.param
    result = mc.solve(n)
    assert result.converged
    return n, result


class TestMuddyChildren:
    def test_synchronous_and_verified(self, solution):
        n, result = solution
        assert result.verified
        assert result.system.is_synchronous()

    def test_conditions_chain(self, solution):
        n, result = solution
        report = sufficient_conditions_report(
            mc.program(n), result.system.context, [result.system]
        )
        assert report["synchronous"] is True
        assert report["provides_witnesses"] is True
        assert report["depends_on_past"] is True

    def test_muddy_children_announce_in_round_k(self, solution):
        n, result = solution
        for pattern in mc.all_patterns(n):
            k = sum(pattern)
            rounds = mc.announcement_rounds(result.system, pattern)
            for i, is_muddy in enumerate(pattern):
                expected = k if is_muddy else k + 1
                assert rounds[i] == expected, (pattern, i)

    def test_muddy_children_know_in_round_k_minus_one(self, solution):
        n, result = solution
        for pattern in mc.all_patterns(n):
            k = sum(pattern)
            rounds = mc.knowledge_rounds(result.system, pattern)
            for i, is_muddy in enumerate(pattern):
                expected = k - 1 if is_muddy else k
                assert rounds[i] == expected, (pattern, i)

    def test_nobody_announces_early(self, solution):
        n, result = solution
        for pattern in mc.all_patterns(n):
            k = sum(pattern)
            for state in mc.run_from_pattern(result.system, pattern):
                if state["round"] < k:
                    assert not any(state[f"said{i}"] for i in range(n)), (pattern, state)

    def test_father_announcement_is_common_knowledge(self, solution):
        n, result = solution
        at_least_one = disj([mc.muddy_prop(i) for i in range(n)])
        group = tuple(mc.child(i) for i in range(n))
        assert result.system.holds_initially(CommonKnows(group, at_least_one))

    def test_iterative_interpretation_agrees_with_round_construction(self, solution):
        n, result = solution
        iterated = iterate_interpretation(mc.program(n), result.system.context)
        assert iterated.converged
        assert frozenset(iterated.system.states) == frozenset(result.system.states)

    def test_knowledge_progression_is_monotone(self, solution):
        n, result = solution
        group = tuple(mc.child(i) for i in range(n))
        fact = disj([mc.muddy_prop(i) for i in range(n)])
        by_round = {}
        for r in range(n + 1):
            states = [s for s in result.system.states if s["round"] == r]
            by_round[r] = (result.system, states)
        progression = knowledge_progression(by_round, fact, group)
        counts = [progression[r]["everyone_knows"] for r in sorted(progression)]
        assert all(count == progression[r]["states"] for r, count in enumerate(counts))


class TestMuddyChildrenEdgeCases:
    def test_single_child(self):
        result = mc.solve(1)
        assert result.converged
        rounds = mc.announcement_rounds(result.system, (True,))
        assert rounds[0] == 1

    def test_invalid_child_count(self):
        with pytest.raises(ValueError):
            mc.context(0)

    def test_all_patterns_respects_muddy_count(self):
        patterns = list(mc.all_patterns(4, muddy_count=2))
        assert len(patterns) == 6
        assert all(sum(p) == 2 for p in patterns)

    def test_all_patterns_excludes_all_clean(self):
        assert (False, False) not in set(mc.all_patterns(2))

    def test_initial_state_for_pattern_roundtrip(self):
        context = mc.context(2)
        state = mc.initial_state_for_pattern(context, (True, False))
        assert state["muddy0"] is True and state["muddy1"] is False
        assert state["round"] == 0 and state["heard"] == 0
