"""Unit tests for the formula AST (:mod:`repro.logic.formula`)."""

import pytest

from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FALSE,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TRUE,
    conj,
    disj,
    knows,
    possible,
    prop,
)


class TestConstruction:
    def test_prop_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            Prop("")

    def test_prop_requires_string(self):
        with pytest.raises(ValueError):
            Prop(3)

    def test_knows_requires_agent_name(self):
        with pytest.raises(ValueError):
            Knows("", Prop("p"))

    def test_group_modality_rejects_empty_group(self):
        with pytest.raises(ValueError):
            CommonKnows([], Prop("p"))

    def test_group_is_sorted_and_deduplicated(self):
        formula = EveryoneKnows(["b", "a", "b"], Prop("p"))
        assert formula.group == ("a", "b")

    def test_string_operands_are_coerced_to_props(self):
        formula = Knows("a", "p")
        assert formula.operand == Prop("p")

    def test_bool_operands_are_coerced_to_constants(self):
        assert Not(True).operand is TRUE
        assert Not(False).operand is FALSE

    def test_nary_connectives_flatten(self):
        formula = And((And((Prop("p"), Prop("q"))), Prop("r")))
        assert len(formula.operands) == 3

    def test_empty_connective_rejected(self):
        with pytest.raises(ValueError):
            And(())


class TestOperators:
    def test_and_operator(self):
        assert (Prop("p") & Prop("q")) == And((Prop("p"), Prop("q")))

    def test_or_operator(self):
        assert (Prop("p") | Prop("q")) == Or((Prop("p"), Prop("q")))

    def test_invert_operator(self):
        assert ~Prop("p") == Not(Prop("p"))

    def test_rshift_builds_implication(self):
        assert (Prop("p") >> Prop("q")) == Implies(Prop("p"), Prop("q"))

    def test_iff_helper(self):
        assert Prop("p").iff(Prop("q")) == Iff(Prop("p"), Prop("q"))

    def test_conj_of_empty_is_true(self):
        assert conj([]) is TRUE

    def test_disj_of_empty_is_false(self):
        assert disj([]) is FALSE

    def test_conj_of_single_formula_is_identity(self):
        assert conj([Prop("p")]) == Prop("p")


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert Knows("a", Prop("p") & Prop("q")) == Knows("a", Prop("p") & Prop("q"))

    def test_inequality_of_different_agents(self):
        assert Knows("a", Prop("p")) != Knows("b", Prop("p"))

    def test_hash_consistency(self):
        formulas = {Knows("a", Prop("p")), Knows("a", Prop("p")), Possible("a", Prop("p"))}
        assert len(formulas) == 2

    def test_and_or_not_interchangeable(self):
        assert And((Prop("p"), Prop("q"))) != Or((Prop("p"), Prop("q")))


class TestStructuralQueries:
    def test_atoms(self):
        formula = Knows("a", Prop("p") & ~Prop("q")) | Prop("r")
        assert formula.atoms() == {"p", "q", "r"}

    def test_agents(self):
        formula = Knows("a", Possible("b", Prop("p"))) & EveryoneKnows(["c", "d"], Prop("q"))
        assert formula.agents() == {"a", "b", "c", "d"}

    def test_modal_depth(self):
        assert Prop("p").modal_depth() == 0
        assert Knows("a", Prop("p")).modal_depth() == 1
        assert Knows("a", Possible("b", Prop("p"))).modal_depth() == 2
        assert (Knows("a", Prop("p")) & Prop("q")).modal_depth() == 1

    def test_is_propositional(self):
        assert (Prop("p") & ~Prop("q")).is_propositional()
        assert not Knows("a", Prop("p")).is_propositional()

    def test_subformulas_bottom_up_without_duplicates(self):
        formula = Prop("p") & Prop("p")
        subs = formula.subformulas()
        assert subs.count(Prop("p")) == 1
        assert subs[-1] == formula

    def test_substitute_replaces_propositions(self):
        formula = Knows("a", Prop("p")) & Prop("q")
        replaced = formula.substitute({"p": Prop("r") | Prop("s")})
        assert replaced == Knows("a", Prop("r") | Prop("s")) & Prop("q")

    def test_substitute_leaves_other_atoms(self):
        formula = Prop("p") & Prop("q")
        assert formula.substitute({"p": TRUE}) == TRUE & Prop("q")


class TestPrinting:
    def test_knows_rendering(self):
        assert str(Knows("R", Prop("sbit"))) == "K[R] sbit"

    def test_group_rendering(self):
        assert str(CommonKnows(["a", "b"], Prop("p"))) == "C[a,b] p"

    def test_nested_rendering_roundtrips_through_parser(self):
        from repro.logic import parse

        formula = (Knows("a", Prop("p")) & ~Possible("b", Prop("q"))) | DistributedKnows(
            ["a", "b"], Prop("r")
        )
        assert parse(str(formula)) == formula

    def test_convenience_constructors(self):
        assert knows("a", prop("p")) == Knows("a", Prop("p"))
        assert possible("a", "p") == Possible("a", Prop("p"))
