"""The spec-level differential fuzzer, pinned at a seed in tier-1.

Fifty random well-formed specs; each must round-trip textually and make
the explicit and symbolic lowerings agree on initial sets, guard tables,
derived protocols and the round-by-round construction — including which
exception type is raised when the construction legitimately fails."""

import random

from repro.programs import KnowledgeBasedProgram
from repro.spec.fuzz import differential_check, random_spec, run_fuzz


def test_fuzz_fifty_specs_seed_zero():
    stats = run_fuzz(50, seed=0)
    assert stats["checked"] == 50
    # The generator must exercise both regimes: most specs construct, and
    # at least one fails identically on both paths.
    assert stats["converged"] >= 40
    assert stats["failed_cleanly"] >= 1
    assert stats["converged"] + stats["failed_cleanly"] == 50


def test_generator_is_deterministic():
    first = random_spec(random.Random(7), name="det")
    second = random_spec(random.Random(7), name="det")
    assert first.equivalent(second)


def test_generated_specs_are_well_formed():
    rng = random.Random(13)
    for index in range(10):
        spec = random_spec(rng, name=f"shape-{index}")
        spec.validate()
        assert 2 <= len(spec.variables) <= 4
        assert 1 <= len(spec.agents) <= 3
        assert spec.state_space().size() <= 4**4
        assert isinstance(spec.program(), KnowledgeBasedProgram)
        # Written variables never overlap between parties.
        writers = {}
        tables = dict(spec.actions)
        for party, table in list(tables.items()) + [("env", spec.env_effects)]:
            written = set()
            for effect in table.values():
                written |= effect.written_variables()
            for name in written:
                assert writers.setdefault(name, party) == party, name
        # The initial condition has a witness by construction.
        assert list(spec.variable_context().initial_states)


def test_differential_check_returns_stats():
    spec = random_spec(random.Random(3), name="stats")
    stats = differential_check(spec)
    assert set(stats) == {"states", "outcome"}
