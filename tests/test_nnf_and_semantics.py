"""Tests for negation normal form, simplification and Kripke satisfaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kripke import structure_from_labels
from repro.logic import extension, holds, parse, simplify, to_nnf
from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FALSE,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TRUE,
)
from repro.logic.nnf import is_in_nnf
from repro.util.errors import ModelError


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------


class TestNNF:
    def test_double_negation(self):
        assert to_nnf(Not(Not(Prop("p")))) == Prop("p")

    def test_negated_conjunction(self):
        assert to_nnf(Not(Prop("p") & Prop("q"))) == Or((Not(Prop("p")), Not(Prop("q"))))

    def test_negated_knowledge_dualises(self):
        assert to_nnf(Not(Knows("a", Prop("p")))) == Possible("a", Not(Prop("p")))

    def test_negated_possible_dualises(self):
        assert to_nnf(Not(Possible("a", Prop("p")))) == Knows("a", Not(Prop("p")))

    def test_implication_expanded(self):
        assert to_nnf(parse("p -> q")) == Or((Not(Prop("p")), Prop("q")))

    def test_negated_everyone_knows(self):
        result = to_nnf(Not(EveryoneKnows(("a", "b"), Prop("p"))))
        assert result == Or(
            (Possible("a", Not(Prop("p"))), Possible("b", Not(Prop("p"))))
        )

    def test_negated_constants(self):
        assert to_nnf(Not(TRUE)) is FALSE
        assert to_nnf(Not(FALSE)) is TRUE

    def test_result_is_in_nnf(self):
        formula = parse("!(K[a] (p -> q) & !M[b] (q <-> r))")
        assert is_in_nnf(to_nnf(formula))

    def test_common_knowledge_negation_stays_in_place(self):
        result = to_nnf(Not(CommonKnows(("a", "b"), Prop("p"))))
        assert result == Not(CommonKnows(("a", "b"), Prop("p")))
        assert is_in_nnf(result)


class TestSimplify:
    def test_conjunction_with_false(self):
        assert simplify(Prop("p") & FALSE) is FALSE

    def test_conjunction_with_true(self):
        assert simplify(Prop("p") & TRUE) == Prop("p")

    def test_disjunction_with_true(self):
        assert simplify(Prop("p") | TRUE) is TRUE

    def test_duplicate_operands_removed(self):
        assert simplify(Prop("p") & Prop("p")) == Prop("p")

    def test_double_negation_removed(self):
        assert simplify(Not(Not(Prop("p")))) == Prop("p")

    def test_implication_with_false_antecedent(self):
        assert simplify(parse("false -> p")) is TRUE

    def test_iff_of_identical_formulas(self):
        assert simplify(parse("K[a] p <-> K[a] p")) is TRUE

    def test_knows_true_collapses(self):
        assert simplify(Knows("a", TRUE)) is TRUE

    def test_possible_false_collapses(self):
        assert simplify(Possible("a", FALSE)) is FALSE


# ---------------------------------------------------------------------------
# Satisfaction over epistemic structures
# ---------------------------------------------------------------------------


class TestSatisfaction:
    def test_propositional_cases(self, two_agent_structure):
        assert holds(two_agent_structure, "w11", parse("p & q"))
        assert not holds(two_agent_structure, "w10", parse("p & q"))
        assert holds(two_agent_structure, "w10", parse("p | q"))
        assert holds(two_agent_structure, "w00", parse("!p"))

    def test_unknown_world_raises(self, two_agent_structure):
        with pytest.raises(ModelError):
            holds(two_agent_structure, "nope", parse("p"))

    def test_knowledge_follows_observability(self, two_agent_structure):
        # Agent a observes p, so it knows p exactly where p holds.
        assert holds(two_agent_structure, "w10", parse("K[a] p"))
        assert holds(two_agent_structure, "w11", parse("K[a] p"))
        assert not holds(two_agent_structure, "w00", parse("K[a] p"))
        # Agent a does not observe q, so it never knows q.
        assert not holds(two_agent_structure, "w01", parse("K[a] q"))

    def test_possible_is_dual_of_knows(self, two_agent_structure):
        for world in two_agent_structure.worlds:
            assert holds(two_agent_structure, world, parse("M[a] q")) == holds(
                two_agent_structure, world, parse("!K[a] !q")
            )

    def test_knowledge_is_truthful(self, two_agent_structure):
        # S5 validity: K[a] p -> p.
        assert extension(two_agent_structure, parse("K[a] p -> p")) == set(
            two_agent_structure.worlds
        )

    def test_positive_introspection(self, two_agent_structure):
        assert extension(two_agent_structure, parse("K[a] p -> K[a] K[a] p")) == set(
            two_agent_structure.worlds
        )

    def test_negative_introspection(self, two_agent_structure):
        assert extension(two_agent_structure, parse("!K[a] p -> K[a] !K[a] p")) == set(
            two_agent_structure.worlds
        )

    def test_everyone_knows(self, two_agent_structure):
        # In w11 agent a knows p and agent b knows q, but not vice versa.
        assert holds(two_agent_structure, "w11", parse("E[a,b] (p | q)"))
        assert not holds(two_agent_structure, "w11", parse("E[a,b] p"))

    def test_distributed_knowledge(self, two_agent_structure):
        # Pooling observations of a and b identifies the world completely.
        assert holds(two_agent_structure, "w11", parse("D[a,b] (p & q)"))
        assert not holds(two_agent_structure, "w11", parse("K[a] (p & q)"))

    def test_common_knowledge_requires_closure(self, two_agent_structure):
        # p | !p is trivially common knowledge; p is not (agent b never knows it).
        assert holds(two_agent_structure, "w11", parse("C[a,b] (p | !p)"))
        assert not holds(two_agent_structure, "w11", parse("C[a,b] p"))

    def test_blind_agent_knows_only_valid_facts(self, blind_structure):
        assert not holds(blind_structure, "w0", parse("K[a] x=0"))
        assert holds(blind_structure, "w0", parse("K[a] (x=0 | x=1 | x=2)"))
        assert holds(blind_structure, "w0", parse("M[a] x=2"))

    def test_extension_of_constants(self, two_agent_structure):
        assert extension(two_agent_structure, TRUE) == set(two_agent_structure.worlds)
        assert extension(two_agent_structure, FALSE) == set()


# ---------------------------------------------------------------------------
# Property-based tests: NNF preserves meaning, simplify preserves meaning
# ---------------------------------------------------------------------------

_AGENTS = ("a", "b")
_PROPS = ("p", "q")


def _formulas(depth):
    base = st.one_of(
        st.sampled_from([Prop("p"), Prop("q"), TRUE, FALSE]),
    )
    if depth == 0:
        return base
    sub = _formulas(depth - 1)
    return st.one_of(
        base,
        st.builds(Not, sub),
        st.builds(lambda l, r: And((l, r)), sub, sub),
        st.builds(lambda l, r: Or((l, r)), sub, sub),
        st.builds(Knows, st.sampled_from(_AGENTS), sub),
        st.builds(Possible, st.sampled_from(_AGENTS), sub),
        st.builds(EveryoneKnows, st.just(_AGENTS), sub),
        st.builds(DistributedKnows, st.just(_AGENTS), sub),
    )


@st.composite
def random_structures(draw):
    n_worlds = draw(st.integers(min_value=1, max_value=5))
    worlds = [f"u{i}" for i in range(n_worlds)]
    labelling = {
        world: {p for p in _PROPS if draw(st.booleans())} for world in worlds
    }
    observables = {
        agent: {p for p in _PROPS if draw(st.booleans())} for agent in _AGENTS
    }
    return structure_from_labels(labelling, observables)


class TestSemanticProperties:
    @settings(max_examples=60, deadline=None)
    @given(structure=random_structures(), formula=_formulas(3))
    def test_nnf_preserves_extension(self, structure, formula):
        assert extension(structure, formula) == extension(structure, to_nnf(formula))

    @settings(max_examples=60, deadline=None)
    @given(structure=random_structures(), formula=_formulas(3))
    def test_simplify_preserves_extension(self, structure, formula):
        assert extension(structure, formula) == extension(structure, simplify(formula))

    @settings(max_examples=60, deadline=None)
    @given(structure=random_structures(), formula=_formulas(2))
    def test_knowledge_is_truthful_in_s5(self, structure, formula):
        for agent in _AGENTS:
            knows_ext = extension(structure, Knows(agent, formula))
            assert knows_ext <= extension(structure, formula)

    @settings(max_examples=60, deadline=None)
    @given(structure=random_structures(), formula=_formulas(2))
    def test_excluded_middle_of_knowledge(self, structure, formula):
        # K phi -> E phi -> D phi (stronger group notions imply weaker ones
        # in the direction E -> individual -> D).
        everyone = extension(structure, EveryoneKnows(_AGENTS, formula))
        distributed = extension(structure, DistributedKnows(_AGENTS, formula))
        for agent in _AGENTS:
            individual = extension(structure, Knows(agent, formula))
            assert everyone <= individual
            assert individual <= distributed
