#!/usr/bin/env python3
"""The symbolic (BDD) world-set backend, end to end.

This demo builds the two-agent observability grid at 4096 worlds, evaluates
a nested knowledge formula through the ``"bdd"`` backend and through the
explicit bitset engine, and then peeks under the hood of the symbolic
subsystem: how large the relation BDDs actually are (spoiler: tiny —
observational indistinguishability over index bits compresses extremely
well), what the shared apply caches look like, and how
``Evaluator.cache_info()`` / ``clear_cache()`` keep a long-lived evaluator
observable and boundable.

Run with::

    python examples/symbolic_backend_demo.py
"""

import time

from repro.engine import Evaluator, backend_by_name
from repro.kripke import structure_from_labels
from repro.logic import parse
from repro.symbolic import encoding_for


def grid_structure(bits):
    """2^bits worlds; agent ``a`` observes the even bits, ``b`` the odd."""
    labelling = {
        w: {f"b{i}" for i in range(bits) if (w >> i) & 1} for w in range(2**bits)
    }
    observables = {
        "a": {f"b{i}" for i in range(0, bits, 2)},
        "b": {f"b{i}" for i in range(1, bits, 2)},
    }
    return structure_from_labels(labelling, observables)


def main():
    bits = 12
    structure = grid_structure(bits)
    formula = parse("K[a] b0 & !K[a] b1 & M[b] (b1 & !b0)")
    print(f"structure: {structure!r}")
    print(f"formula:   {formula}")

    results = {}
    for name in ("bdd", "bitset"):
        start = time.perf_counter()
        results[name] = Evaluator(structure, backend_by_name(name)).extension(formula)
        cold = (time.perf_counter() - start) * 1000
        # A second, fresh evaluator: the per-structure derived data
        # (relation BDDs / bitmask arrays) is now memoised, which is what
        # repeated queries — the interpretation inner loop — pay.
        start = time.perf_counter()
        Evaluator(structure, backend_by_name(name)).extension(formula)
        warm = (time.perf_counter() - start) * 1000
        print(
            f"  {name:<8} |extension| = {len(results[name])}  "
            f"(cold {cold:8.2f} ms, warm {warm:6.2f} ms)"
        )
    assert results["bdd"] == results["bitset"]

    # -- under the hood ---------------------------------------------------------
    encoding = encoding_for(structure)
    print(f"\nencoding:  {encoding!r}")
    print(f"  {2 * encoding.bits} BDD variables for {len(structure)} worlds")
    for agent in structure.agents:
        relation = encoding.agent_relation(agent)
        print(
            f"  relation of {agent!r}: {encoding.bdd.size(relation)} nodes "
            f"for a {len(structure)}x{len(structure)} relation"
        )

    evaluator = Evaluator(structure, backend_by_name("bdd"))
    evaluator.extension(formula)
    info = evaluator.cache_info()
    print(f"\ncache_info after one evaluation: {info}")
    evaluator.clear_cache()
    print(f"cache_info after clear_cache:    {evaluator.cache_info()}")
    # Node ids survive a clear (only the recomputable memos were dropped):
    assert evaluator.extension(formula) == results["bdd"]
    print("\nre-evaluation after clearing agrees — caches are safe to drop.")


if __name__ == "__main__":
    main()
