#!/usr/bin/env python3
"""The symbolic (BDD) world-set backend, end to end.

This demo builds the two-agent observability grid at 4096 worlds, evaluates
a nested knowledge formula through the ``"bdd"`` backend and through the
explicit bitset engine, and then peeks under the hood of the symbolic
subsystem: how large the relation BDDs actually are (spoiler: tiny —
observational indistinguishability over index bits compresses extremely
well), what the shared apply caches look like, and how
``Evaluator.cache_info()`` / ``clear_cache()`` keep a long-lived evaluator
observable and boundable.

The finale leaves every explicit engine behind: the *enumeration-free*
construction pipeline interprets the muddy-children knowledge-based program
at 20 children — a state space of ``5.3 * 10^14``, whose 23 million
reachable states the explicit pipeline could never enumerate — entirely as
BDDs compiled straight from the variable context, in a few seconds.

Run with::

    python examples/symbolic_backend_demo.py
"""

import time

from repro.engine import Evaluator, backend_by_name
from repro.kripke import structure_from_labels
from repro.logic import parse
from repro.symbolic import encoding_for


def grid_structure(bits):
    """2^bits worlds; agent ``a`` observes the even bits, ``b`` the odd."""
    labelling = {
        w: {f"b{i}" for i in range(bits) if (w >> i) & 1} for w in range(2**bits)
    }
    observables = {
        "a": {f"b{i}" for i in range(0, bits, 2)},
        "b": {f"b{i}" for i in range(1, bits, 2)},
    }
    return structure_from_labels(labelling, observables)


def main():
    bits = 12
    structure = grid_structure(bits)
    formula = parse("K[a] b0 & !K[a] b1 & M[b] (b1 & !b0)")
    print(f"structure: {structure!r}")
    print(f"formula:   {formula}")

    results = {}
    for name in ("bdd", "bitset"):
        start = time.perf_counter()
        results[name] = Evaluator(structure, backend_by_name(name)).extension(formula)
        cold = (time.perf_counter() - start) * 1000
        # A second, fresh evaluator: the per-structure derived data
        # (relation BDDs / bitmask arrays) is now memoised, which is what
        # repeated queries — the interpretation inner loop — pay.
        start = time.perf_counter()
        Evaluator(structure, backend_by_name(name)).extension(formula)
        warm = (time.perf_counter() - start) * 1000
        print(
            f"  {name:<8} |extension| = {len(results[name])}  "
            f"(cold {cold:8.2f} ms, warm {warm:6.2f} ms)"
        )
    assert results["bdd"] == results["bitset"]

    # -- under the hood ---------------------------------------------------------
    encoding = encoding_for(structure)
    print(f"\nencoding:  {encoding!r}")
    print(f"  {2 * encoding.bits} BDD variables for {len(structure)} worlds")
    for agent in structure.agents:
        relation = encoding.agent_relation(agent)
        print(
            f"  relation of {agent!r}: {encoding.bdd.size(relation)} nodes "
            f"for a {len(structure)}x{len(structure)} relation"
        )

    evaluator = Evaluator(structure, backend_by_name("bdd"))
    evaluator.extension(formula)
    info = evaluator.cache_info()
    print(f"\ncache_info after one evaluation: {info}")
    evaluator.clear_cache()
    print(f"cache_info after clear_cache:    {evaluator.cache_info()}")
    # Node ids survive a clear (only the recomputable memos were dropped):
    assert evaluator.extension(formula) == results["bdd"]
    print("\nre-evaluation after clearing agrees — caches are safe to drop.")

    construction_demo()


def construction_demo():
    """Interpret muddy children at a size no explicit engine can touch."""
    from repro.interpretation import construct_by_rounds
    from repro.protocols import muddy_children as mc

    n = 20
    print(f"\n-- enumeration-free construction: muddy children, n = {n} --")
    start = time.perf_counter()
    model = mc.symbolic_model(n)  # compiled from the spec; zero states built
    program = mc.program(n).check_against_context(model)
    result = construct_by_rounds(program, model)
    elapsed = time.perf_counter() - start
    print(f"state space:      {model.state_space.size():.2e} states")
    print(f"reachable states: {result.system.state_count():,}")
    print(f"rounds:           {result.iterations}, verified: {result.verified}")
    print(f"BDD nodes:        {model.encoding.bdd.cache_info()['nodes']:,}")
    print(f"wall clock:       {elapsed:.1f} s")

    # The protocol is queryable at any concrete local state: the child who
    # sees four muddy foreheads and has heard nothing by round 4 says yes.
    k = 5
    pattern = [i < k for i in range(n)]
    state = mc.initial_state_for_pattern(model, pattern)
    rounds = {}
    for _ in range(n + 2):
        pre = state.as_dict()
        new = dict(pre)
        for effect in model.env_effects.values():
            for name, expr in effect.updates.items():
                new[name] = expr.evaluate(pre)
        for agent in model.agents:
            (action,) = result.protocol.actions(agent, model.local_state(agent, state))
            for name, expr in model.actions[agent][action].effect.updates.items():
                new[name] = expr.evaluate(pre)
        state = model.state_space.state(new)
        for i in range(n):
            if i not in rounds and state[f"said{i}"]:
                rounds[i] = state["round"]
    muddy_round = {rounds[i] for i in range(k)}
    clean_round = {rounds[i] for i in range(k, n)}
    print(
        f"with {k} muddy children: the muddy ones say yes in round "
        f"{muddy_round.pop()}, the clean ones in round {clean_round.pop()} "
        f"— the classical solution, at a scale only BDDs reach."
    )


if __name__ == "__main__":
    main()
