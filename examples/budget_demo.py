#!/usr/bin/env python3
"""Graceful degradation under resource budgets.

The symbolic construction pipeline is only as good as its variable order:
the dining-cryptographers ring compresses beautifully when each position's
``paid``/``coin``/``say`` bits sit together, and blows up when the order
scatters them (every announcement is the XOR of two adjacent coins, so a
blocked order must carry the whole announcement pattern across the
diagram).  This demo constructs the ring's implementation from that
*adversarial* order under a ``repro.resilience.Budget`` and shows the
three answers governance gives instead of an unbounded blow-up:

1. **kill with a partial result** — a node ceiling with mitigation off
   raises ``BudgetExceededError`` carrying the completed rounds;
2. **resume** — the partial feeds back through ``resume=`` and the
   construction continues to the *identical* verified fixed point;
3. **the mitigation ladder** — with mitigation on (and the default 2x
   kernel slack, so safe points run before the hard ceiling), crossing
   the ceiling first triggers a rooted sift, which fixes the bad order
   and lets the run finish small instead of raising at all.

Run with::

    python examples/budget_demo.py
"""

import time

from repro import obs
from repro.interpretation import construct_by_rounds
from repro.obs.sinks import RecordingSink
from repro.protocols import dining_cryptographers as dc
from repro.resilience import Budget
from repro.util.errors import BudgetExceededError

N = 8
KILL_CEILING = 6_000  # slack 1.0: the kernel raises as soon as this is crossed
LADDER_CEILING = 15_000  # default slack 2.0: safe points get room to mitigate


def adversarial_model():
    return dc.symbolic_model(N, variable_order=dc.blocked_variable_order(N))


def main():
    print(f"dining cryptographers, n={N}, blocked (adversarial) variable order\n")

    # -- 1. kill: the ceiling fires and the raise carries the progress -----------
    model = adversarial_model()
    program = dc.program(N).check_against_context(model)
    budget = Budget(node_limit=KILL_CEILING, node_slack=1.0, mitigate=False)
    start = time.perf_counter()
    try:
        construct_by_rounds(program, model, budget=budget)
        raise SystemExit("unexpected: the adversarial order fit the ceiling")
    except BudgetExceededError as error:
        partial = error.partial
        print(f"[kill]    {error}")
        print(f"          live nodes: {error.diagnostics['live_nodes']}")
        print(f"          partial: {partial.kind}, {partial.rounds} completed rounds")
    print(f"          ({(time.perf_counter() - start) * 1000:.0f} ms)\n")

    # -- 2. resume: the partial continues to the identical fixed point -----------
    resumed = construct_by_rounds(program, model, resume=partial)
    fresh = construct_by_rounds(program, model)
    assert resumed.verified and fresh.verified
    assert resumed.system.states_node == fresh.system.states_node
    print(
        f"[resume]  verified implementation, {resumed.system.state_count()} states "
        f"in {resumed.iterations} rounds"
    )
    print(
        "          identical fixed point as an unbudgeted fresh run "
        f"(canonical node {fresh.system.states_node})\n"
    )

    # -- 3. mitigate: the ladder sifts the bad order away instead of raising -----
    model = adversarial_model()
    program = dc.program(N).check_against_context(model)
    sink = RecordingSink(kinds=("event",))
    obs.add_sink(sink)
    try:
        result = construct_by_rounds(
            program, model, budget=Budget(node_limit=LADDER_CEILING)
        )
    finally:
        obs.remove_sink(sink)
    ladder = [
        (record["name"], record["attrs"]["step"], record["attrs"].get("nodes"))
        for record in sink.records
        if record["name"] in ("resilience.mitigate", "resilience.recovered")
    ]
    for name, step, nodes in ladder:
        verb = "rung" if name == "resilience.mitigate" else "recovered via"
        print(f"[mitigate] {verb} {step} (live nodes: {nodes})")
    assert result.verified
    print(
        f"[mitigate] converged under the {LADDER_CEILING}-node ceiling: "
        f"{result.system.state_count()} states, "
        f"{len(model.encoding.bdd._unique)} live nodes after sifting"
    )


if __name__ == "__main__":
    main()
