#!/usr/bin/env python3
"""Quickstart: define a knowledge-based program and find its implementation.

This script builds the paper's bit-transmission problem from scratch using
the public API (variables, a context, a knowledge-based program), interprets
the program, and checks the knowledge properties the paper states about it.

Run with::

    python examples/quickstart.py
"""

from repro.interpretation import check_implementation, iterate_interpretation
from repro.logic import parse
from repro.modeling import Assignment, StateSpace, boolean, var
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems import variable_context
from repro.temporal import EF, CTLKModelChecker


def build_context():
    """A sender S and a receiver R communicating over lossy channels."""
    sbit = boolean("sbit")  # the bit to transmit
    rbit = boolean("rbit")  # the transmitted value
    snt = boolean("snt")  # whether rbit is valid
    ack = boolean("ack")  # the acknowledgement
    space = StateSpace([sbit, rbit, snt, ack])
    return variable_context(
        "quickstart-bit-transmission",
        space,
        observables={"S": ["sbit", "ack"], "R": ["rbit", "snt"]},
        actions={
            "S": {
                "send_ok": Assignment({"rbit": var(sbit), "snt": True}),
                "send_fail": Assignment({}),
            },
            "R": {
                "ack_ok": Assignment({"ack": True}),
                "ack_fail": Assignment({}),
            },
        },
        initial=(~var(rbit)) & (~var(snt)) & (~var(ack)),
    )


def build_program():
    """The knowledge-based program of Fagin, Halpern, Moses and Vardi."""
    receiver_knows_bit = parse("K[R] sbit | K[R] !sbit")
    sender_guard = ~parse("K[S] (K[R] sbit | K[R] !sbit)")
    receiver_guard = receiver_knows_bit & ~parse("K[R] K[S] (K[R] sbit | K[R] !sbit)")
    return KnowledgeBasedProgram(
        [
            AgentProgram("S", [Clause(sender_guard, "send_ok"), Clause(sender_guard, "send_fail")]),
            AgentProgram("R", [Clause(receiver_guard, "ack_ok"), Clause(receiver_guard, "ack_fail")]),
        ]
    )


def main():
    context = build_context()
    program = build_program().check_against_context(context)

    print("Knowledge-based program:")
    print(program.describe())

    # Interpret the program: iterate P -> Pg^{I_rep(P)} until a fixed point.
    result = iterate_interpretation(program, context)
    print(f"\nInterpretation converged after {result.iterations} iterations")
    print(f"Reachable states of the implementation: {len(result.system)}")
    for state in result.system.states:
        print("  ", dict(state.as_dict()))

    # The fixed point really is an implementation.
    report = check_implementation(result.protocol, program, context)
    print(f"\nFixed point verified as implementation: {report.is_implementation}")

    # Check the paper's knowledge properties with the CTLK model checker.
    checker = CTLKModelChecker(result.system)
    receiver_knows = parse("K[R] sbit | K[R] !sbit")
    properties = {
        "EF (receiver knows the bit)": EF(receiver_knows),
        "EF (sender knows that)": EF(parse("K[S] (K[R] sbit | K[R] !sbit)")),
        "EF (receiver knows the sender knows)": EF(
            parse("K[R] K[S] (K[R] sbit | K[R] !sbit)")
        ),
    }
    print("\nCTLK properties (checked at the initial states):")
    for name, formula in properties.items():
        print(f"  {name}: {checker.valid(formula)}")


if __name__ == "__main__":
    main()
