#!/usr/bin/env python3
"""The spec layer: write a protocol as text, lower it both ways, check a
knowledge property, and tour the bundled zoo.

Run with::

    python examples/spec_demo.py
"""

from repro.interpretation import construct_by_rounds
from repro.logic.formula import Knows, Prop
from repro.protocols import registered_protocols
from repro.spec import load_spec, parse_spec

# A two-agent toy written inline: a judge privately flips a verdict bit; a
# scribe copies it into the record when it knows the verdict is in.
TOY = """
protocol toy-verdict

var verdict : bool
var announced : bool
var recorded : bool

agent judge
  observes verdict announced
  action announce : announced := true
  if !announced do announce
end

agent scribe
  observes announced recorded
  action record : recorded := true
  if K[scribe] announced & !recorded do record
end

init !announced & !recorded
"""


def main():
    spec = parse_spec(TOY, source="<demo>")
    print(spec.describe())
    print()

    # One spec, two lowerings: the explicit context enumerates states, the
    # symbolic model compiles the same ingredients to BDDs.
    context = spec.variable_context()
    model = spec.symbolic_model()
    program = spec.program()

    explicit = construct_by_rounds(program.check_against_context(context), context)
    symbolic = construct_by_rounds(program.check_against_context(model), model)
    print(f"explicit construction: {len(explicit.system)} reachable states")
    print(f"symbolic construction: {symbolic.system.state_count()} reachable states")
    assert set(symbolic.system.iter_states()) == set(explicit.system.states)

    # Knowledge chains: once the record exists, the scribe knows the
    # announcement happened — but never learns the verdict itself.
    knows_announced = Knows("scribe", Prop("announced"))
    knows_verdict = Knows("scribe", Prop("verdict"))
    holds = explicit.system.holds_everywhere
    print(f"recorded => scribe knows announced: "
          f"{holds(Prop('recorded') >> knows_announced)}")
    print(f"scribe ever knows the verdict: "
          f"{bool(explicit.system.extension(knows_verdict))}")
    print()

    # The canonical rendering round-trips: parse(to_kbp(spec)) == spec.
    assert spec.equivalent(parse_spec(spec.to_kbp(), source="<roundtrip>"))
    print("to_kbp -> parse_spec round trip: ok")
    print()

    # The whole zoo is spec-backed; every entry follows the same convention.
    print("the protocol zoo (at each spec's default parameters):")
    for name, entry in registered_protocols().items():
        bundled = load_spec(entry.spec_name)
        print(f"  {name:24s} {bundled.state_space().size():>10} states  "
              f"- {entry.summary}")


if __name__ == "__main__":
    main()
