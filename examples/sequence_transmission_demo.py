#!/usr/bin/env python3
"""Sequence transmission: the knowledge-based specification and the
alternating-bit protocol.

The script interprets the knowledge-based sequence-transmission program for a
short message, shows that the derived implementation performs sequential
numbering ("send bit i until you know the receiver has it"), and then checks
the safety and knowledge properties of the concrete alternating-bit protocol.

Run with::

    python examples/sequence_transmission_demo.py [message_length]
"""

import sys

from repro.logic.formula import Prop
from repro.protocols import sequence_transmission as st
from repro.temporal import AG, EF, CTLKModelChecker


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    print(f"Knowledge-based specification for a {length}-bit message")
    result = st.solve_kb(length)
    print(f"  converged: {result.converged} after {result.iterations} iterations, "
          f"{len(result.system)} reachable states")

    print("\nDerived sender behaviour (grouped by how much has been acknowledged):")
    context = result.system.context
    by_sacked = {}
    for state in result.system.states:
        local = context.local_state(st.SENDER, state)
        actions = tuple(sorted(result.protocol.actions(st.SENDER, local)))
        by_sacked.setdefault(state.sacked, set()).add(actions)
    for sacked in sorted(by_sacked):
        behaviours = sorted(by_sacked[sacked])
        print(f"  acknowledged={sacked}: perform {[list(b) for b in behaviours]}")

    print("\nAlternating-bit protocol over the lossy-channel model")
    system = st.abp_system(length)
    checker = CTLKModelChecker(system)
    print(f"  reachable states: {len(system)}")
    print(f"  AG prefix_ok (safety): {checker.valid(AG(st.prefix_ok_formula()))}")
    print(f"  EF all_received (possible completion): {checker.valid(EF(Prop('all_received')))}")
    print(
        "  sender knows bit 0 was delivered whenever it has advanced: "
        f"{all(checker.holds(s, st.sender_knows_received(0)) for s in system.states if s.sptr >= 1)}"
    )


if __name__ == "__main__":
    main()
