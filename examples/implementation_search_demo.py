#!/usr/bin/env python3
"""The variable-setting family: programs with zero, one or many
implementations, and what plain iteration does on each of them.

Run with::

    python examples/implementation_search_demo.py
"""

from repro.interpretation import enumerate_implementations, iterate_interpretation
from repro.protocols import variable_setting as vs


def main():
    context = vs.context()
    print("Context: one blind agent, x in 0..3, starting from x = 0\n")

    for name, (factory, expected) in vs.PROGRAM_FAMILY.items():
        program = factory()
        print(f"--- {name} ---")
        print(program.describe())

        search = enumerate_implementations(program, context)
        print(f"exhaustive search: {search.classification} (expected: {expected})")
        for index, (protocol, system) in enumerate(search):
            values = sorted(state["x"] for state in system.states)
            print(f"  implementation {index + 1}: reachable x values {values}")

        iteration = iterate_interpretation(program, context)
        if iteration.converged:
            values = sorted(state["x"] for state in iteration.system.states)
            print(
                f"iteration: converged after {iteration.iterations} steps "
                f"to reachable x values {values}"
            )
        else:
            print(
                f"iteration: no fixed point, cycle of length {iteration.cycle_length} "
                f"after {iteration.iterations} steps"
            )
        print()


if __name__ == "__main__":
    main()
