#!/usr/bin/env python3
"""Tracing walkthrough: instrument muddy children at n = 20 end to end.

The observability layer (:mod:`repro.obs`) streams spans, counters and
structured events from every engine layer — the BDD kernel, the evaluator,
the fixed-point loops — to any installed sink.  This script runs the
enumeration-free muddy-children construction at 20 children (≈ 5·10^14
global states; only BDDs make this tractable), capturing the run three
ways:

1. an in-memory :func:`repro.obs.capture` aggregation, printed directly;
2. a JSONL trace file, then replayed through the bundled summary CLI
   (``python -m repro.obs trace.jsonl``) — the same pipeline that
   ``REPRO_TRACE=trace.jsonl python ...`` gives you without code changes;
3. a Chrome ``trace_event`` export for chrome://tracing / Perfetto.

Run with::

    python examples/tracing_walkthrough.py [n] [--keep]

``--keep`` leaves ``muddy_trace.jsonl`` / ``muddy_trace_chrome.json`` in
the working directory for interactive inspection.
"""

import os
import sys
import tempfile

from repro import obs
from repro.obs.__main__ import summarise
from repro.obs.registry import bdd_metrics, checkpoint
from repro.obs.sinks import ChromeTraceSink, JsonlSink, chrome_trace
from repro.obs.schema import validate_trace_file
from repro.protocols import muddy_children as mc


def run_traced(n, trace_path, chrome_path):
    """The instrumented run: solve muddy children symbolically with an
    aggregating capture, a JSONL stream and a Chrome exporter installed."""
    jsonl = obs.add_sink(JsonlSink(trace_path))
    chrome = obs.add_sink(ChromeTraceSink(chrome_path))
    mark = checkpoint()
    try:
        with obs.capture() as aggregate:
            with obs.span("muddy_children.solve", n=n):
                result = mc.solve(n, symbolic=True)
    finally:
        obs.remove_sink(jsonl)
        obs.remove_sink(chrome)
        jsonl.close()
        chrome.close()
    assert result.verified, "the construction should verify as the implementation"
    return result, aggregate, bdd_metrics(since=mark)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    keep = "--keep" in argv
    if keep:
        argv.remove("--keep")
    n = int(argv[0]) if argv else 20

    directory = os.getcwd() if keep else tempfile.mkdtemp(prefix="repro-trace-")
    trace_path = os.path.join(directory, "muddy_trace.jsonl")
    chrome_path = os.path.join(directory, "muddy_trace_chrome.json")

    print(f"solving muddy children symbolically at n = {n} (traced)...\n")
    result, aggregate, kernel = run_traced(n, trace_path, chrome_path)
    print(
        f"constructed the implementation in {result.iterations} rounds; "
        f"|reachable| = {result.system.state_count()}"
    )

    print("\n== in-memory aggregation (obs.capture) ==")
    for name, value in sorted(aggregate.counters.items()):
        print(f"  counter {name:<38} {value}")
    for name, count in sorted(aggregate.events.items()):
        print(f"  event   {name:<38} x{count}")
    for name, stats in sorted(aggregate.spans.items()):
        print(f"  span    {name:<38} {stats['total'] * 1000:.1f} ms total")

    print("\n== BDD kernel registry delta (obs.registry.bdd_metrics) ==")
    for name, value in sorted(kernel.items()):
        print(f"  {name:<42} {value}")

    records = validate_trace_file(trace_path)  # raises if the stream is malformed
    print(f"\n== trace replay: {len(records)} schema-valid records ==")
    print(f"(equivalent to: python -m repro.obs {trace_path})\n")
    summarise(records, top=10)

    print(f"\nChrome trace written ({len(chrome_trace(records)['traceEvents'])} events)")
    if keep:
        print(f"kept {trace_path}\nkept {chrome_path} (open in chrome://tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
