#!/usr/bin/env python3
"""Muddy children: interpret the knowledge-based program and tabulate when
each child learns and announces whether it is muddy.

Run with::

    python examples/muddy_children_demo.py [number_of_children]
"""

import sys

from repro.analysis import system_statistics
from repro.protocols import muddy_children as mc


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    print(f"Interpreting the muddy-children program for {n} children ...")
    result = mc.solve(n)
    print(f"  converged: {result.converged} after {result.iterations} rounds")
    stats = system_statistics(result.system)
    print(f"  reachable states: {stats['states']}, synchronous: {stats['synchronous']}")

    print("\nWhen does each child know / announce its status?")
    print(f"{'pattern':<{3 * n + 4}} {'k':>2}   knowledge round   announcement round")
    for k in range(1, n + 1):
        pattern = tuple(i < k for i in range(n))
        knowledge = mc.knowledge_rounds(result.system, pattern)
        announcement = mc.announcement_rounds(result.system, pattern)
        pattern_text = "".join("M" if muddy else "." for muddy in pattern)
        know_text = ",".join(str(knowledge[i]) for i in range(n))
        announce_text = ",".join(str(announcement[i]) for i in range(n))
        print(f"{pattern_text:<{3 * n + 4}} {k:>2}   {know_text:<17} {announce_text}")

    print(
        "\nThe paper's claim: with k muddy children, every muddy child first "
        "knows its status at round k-1 and announces in round k; the clean "
        "children follow one round later."
    )


if __name__ == "__main__":
    main()
