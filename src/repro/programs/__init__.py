"""Standard and knowledge-based programs.

A *program* for an agent is a guarded case statement::

    case of
      if t_1 do a_1
      ...
      if t_k do a_k
    end

performed repeatedly: in every round the agent nondeterministically performs
one of the actions whose test currently holds, or the fallback action
(``noop``) when no test holds.

* In a **standard program** the tests are conditions on the agent's own local
  state (:class:`repro.programs.standard.StandardAgentProgram`); a standard
  program directly determines a protocol.
* In a **knowledge-based program** the tests are epistemic formulas
  (:class:`repro.programs.knowledge_based.AgentProgram`,
  :class:`repro.programs.knowledge_based.KnowledgeBasedProgram`); their
  meaning depends on the interpreted system the program itself generates —
  the circularity resolved by :mod:`repro.interpretation`.
"""

from repro.programs.clauses import Clause
from repro.programs.knowledge_based import AgentProgram, KnowledgeBasedProgram
from repro.programs.standard import StandardAgentProgram, StandardProgram

__all__ = [
    "Clause",
    "AgentProgram",
    "KnowledgeBasedProgram",
    "StandardAgentProgram",
    "StandardProgram",
]
