"""Program clauses: a guard together with the action it enables."""

from repro.logic.formula import Formula
from repro.modeling.expressions import Expression
from repro.util.errors import ProgramError


class Clause:
    """One branch ``if guard do action`` of a guarded case statement.

    The guard may be given as an epistemic :class:`repro.logic.formula.Formula`
    or as a boolean :class:`repro.modeling.expressions.Expression` over
    variables, in which case it is compiled to the equivalent propositional
    formula over the ``"x=v"`` atoms.
    """

    __slots__ = ("guard", "action", "label")

    def __init__(self, guard, action, label=None):
        if isinstance(guard, Expression):
            guard = guard.to_formula()
        if not isinstance(guard, Formula):
            raise ProgramError(
                f"clause guard must be a Formula or boolean Expression, got {guard!r}"
            )
        if action is None or action == "":
            raise ProgramError("clause action must be a non-empty label")
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "action", action)
        object.__setattr__(self, "label", label if label is not None else str(action))

    def __setattr__(self, key, value):
        raise AttributeError("Clause is immutable")

    def __eq__(self, other):
        if not isinstance(other, Clause):
            return NotImplemented
        return self.guard == other.guard and self.action == other.action

    def __hash__(self):
        return hash((self.guard, self.action))

    def __repr__(self):
        return f"Clause(if {self.guard} do {self.action})"

    __str__ = __repr__
