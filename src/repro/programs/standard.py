"""Standard programs: guarded case statements with local tests only.

Standard programs are the objects knowledge-based programs are implemented
*by*.  Their tests are conditions on the agent's own local state, so they can
be turned into protocols directly, without reference to an interpreted
system.

A test can be given as

* a callable ``local_state -> bool``;
* a boolean :class:`repro.modeling.expressions.Expression` over the agent's
  observable variables (for variable-based contexts, where a local state is
  the tuple of observed ``(name, value)`` pairs);
* the constant ``True``.
"""

from repro.modeling.expressions import Expression
from repro.systems.actions import NOOP_NAME
from repro.systems.protocols import JointProtocol, Protocol
from repro.util.errors import ProgramError


class StandardAgentProgram:
    """A standard (non-epistemic) program for one agent."""

    def __init__(self, agent, clauses, fallback=NOOP_NAME):
        if not isinstance(agent, str) or not agent:
            raise ProgramError(f"agent name must be a non-empty string, got {agent!r}")
        self.agent = agent
        self.clauses = tuple((self._normalise_test(test), action) for test, action in clauses)
        self.fallback = fallback

    @staticmethod
    def _normalise_test(test):
        if test is True:
            return lambda local_state: True
        if isinstance(test, Expression):
            def evaluate(local_state, expression=test):
                values = dict(local_state)
                return bool(expression.evaluate(values))

            return evaluate
        if callable(test):
            return test
        raise ProgramError(f"test must be callable, a boolean Expression or True, got {test!r}")

    def actions(self):
        """Return all action labels the program may perform."""
        labels = [action for _, action in self.clauses]
        if self.fallback is not None:
            labels.append(self.fallback)
        seen = []
        for label in labels:
            if label not in seen:
                seen.append(label)
        return tuple(seen)

    def enabled_actions(self, local_state):
        """Return the actions whose tests hold at ``local_state`` (the
        fallback when none does)."""
        enabled = [action for test, action in self.clauses if test(local_state)]
        if not enabled:
            if self.fallback is None:
                raise ProgramError(
                    f"no clause of agent {self.agent!r} is enabled at {local_state!r} "
                    f"and there is no fallback action"
                )
            enabled = [self.fallback]
        return frozenset(enabled)

    def to_protocol(self):
        """Return the protocol determined by this program."""
        return Protocol(self.agent, self.enabled_actions)

    def __repr__(self):
        return f"StandardAgentProgram({self.agent!r}, {len(self.clauses)} clauses)"


class StandardProgram:
    """A joint standard program: one :class:`StandardAgentProgram` per agent."""

    def __init__(self, programs):
        if isinstance(programs, dict):
            programs = list(programs.values())
        resolved = {}
        for program in programs:
            if not isinstance(program, StandardAgentProgram):
                raise ProgramError(f"expected StandardAgentProgram, got {program!r}")
            if program.agent in resolved:
                raise ProgramError(f"duplicate program for agent {program.agent!r}")
            resolved[program.agent] = program
        if not resolved:
            raise ProgramError("a standard program needs at least one agent")
        self._programs = resolved

    @property
    def agents(self):
        return tuple(self._programs)

    def program(self, agent):
        try:
            return self._programs[agent]
        except KeyError:
            raise ProgramError(f"no program for agent {agent!r}") from None

    def __iter__(self):
        return iter(self._programs.values())

    def to_joint_protocol(self, context=None):
        """Return the joint protocol determined by this program.

        When a ``context`` is given, agents of the context without a program
        are given the constant ``noop`` protocol.
        """
        protocols = {agent: program.to_protocol() for agent, program in self._programs.items()}
        if context is not None:
            for agent in context.agents:
                if agent not in protocols:
                    protocols[agent] = Protocol(agent, lambda local_state: frozenset({NOOP_NAME}))
        return JointProtocol(protocols)

    def __repr__(self):
        return f"StandardProgram(agents={list(self._programs)})"
