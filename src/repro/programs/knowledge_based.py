"""Knowledge-based programs.

A knowledge-based program ``Pg`` consists of one guarded case statement per
agent whose tests are epistemic formulas.  Its semantics is *not* given
directly: only relative to an interpreted system ``I`` can the tests be
evaluated, yielding the standard protocol ``Pg^I``.  A protocol ``P``
*implements* ``Pg`` in a context ``gamma`` when ``P = Pg^{I_rep(P, gamma)}``;
see :mod:`repro.interpretation`.

The paper requires each agent's tests to be *local*: a boolean combination of
formulas of the form ``K_a phi`` (about the acting agent ``a``) and
propositions determined by the agent's local state.  The library checks this
requirement semantically at interpretation time (the guard must evaluate
identically at all indistinguishable reachable states); the syntactic helper
:meth:`AgentProgram.syntactically_local` performs the cheaper sufficient
check that every proposition occurs under some ``K_a``/``M_a``.
"""

from repro.logic.formula import Formula, Knows, Possible
from repro.programs.clauses import Clause
from repro.systems.actions import NOOP_NAME
from repro.util.errors import ProgramError


class AgentProgram:
    """The knowledge-based program of a single agent.

    Parameters
    ----------
    agent:
        The agent's name.
    clauses:
        Iterable of :class:`Clause` (or ``(guard, action)`` pairs).
    fallback:
        The action performed when no guard holds (default ``noop``).
    """

    def __init__(self, agent, clauses, fallback=NOOP_NAME):
        if not isinstance(agent, str) or not agent:
            raise ProgramError(f"agent name must be a non-empty string, got {agent!r}")
        resolved = []
        for clause in clauses:
            if isinstance(clause, Clause):
                resolved.append(clause)
            else:
                guard, action = clause
                resolved.append(Clause(guard, action))
        self.agent = agent
        self.clauses = tuple(resolved)
        self.fallback = fallback

    def actions(self):
        """Return all action labels that the program may perform."""
        labels = [clause.action for clause in self.clauses]
        if self.fallback is not None:
            labels.append(self.fallback)
        seen = []
        for label in labels:
            if label not in seen:
                seen.append(label)
        return tuple(seen)

    def guards(self):
        """Return the tuple of guard formulas (one per clause)."""
        return tuple(clause.guard for clause in self.clauses)

    def knowledge_subformulas(self):
        """Return all ``K``/``M`` subformulas occurring in the guards."""
        result = set()
        for guard in self.guards():
            for sub in guard.subformulas():
                if isinstance(sub, (Knows, Possible)):
                    result.add(sub)
        return result

    def mentions_only_own_knowledge(self):
        """Return ``True`` if every *outermost* knowledge modality in every
        guard is about this agent (``K_a``/``M_a`` with ``a`` the acting
        agent), as the paper's programs require."""
        def outermost_ok(formula):
            if isinstance(formula, (Knows, Possible)):
                return formula.agent == self.agent
            return all(outermost_ok(child) for child in formula.children())

        return all(outermost_ok(guard) for guard in self.guards())

    def syntactically_local(self, local_propositions=()):
        """Sufficient syntactic check for locality of the guards.

        A guard is syntactically local when every proposition either belongs
        to ``local_propositions`` (propositions determined by the agent's
        local state, e.g. its observable variables) or occurs underneath a
        knowledge modality of this agent.
        """
        local_propositions = set(local_propositions)

        def check(formula, under_own_modality):
            if isinstance(formula, (Knows, Possible)):
                return check(formula.operand, under_own_modality or formula.agent == self.agent)
            if not formula.children():
                atoms = formula.atoms()
                return under_own_modality or atoms <= local_propositions
            return all(check(child, under_own_modality) for child in formula.children())

        return all(check(guard, False) for guard in self.guards())

    def __repr__(self):
        return f"AgentProgram({self.agent!r}, {len(self.clauses)} clauses)"

    def describe(self):
        """Return a human-readable rendering of the case statement."""
        lines = [f"program of agent {self.agent}:"]
        for clause in self.clauses:
            lines.append(f"  if {clause.guard} do {clause.action}")
        lines.append(f"  otherwise do {self.fallback}")
        return "\n".join(lines)


class KnowledgeBasedProgram:
    """A joint knowledge-based program: one :class:`AgentProgram` per agent."""

    def __init__(self, programs):
        if isinstance(programs, dict):
            programs = list(programs.values())
        resolved = {}
        for program in programs:
            if not isinstance(program, AgentProgram):
                raise ProgramError(f"expected AgentProgram, got {program!r}")
            if program.agent in resolved:
                raise ProgramError(f"duplicate program for agent {program.agent!r}")
            resolved[program.agent] = program
        if not resolved:
            raise ProgramError("a knowledge-based program needs at least one agent")
        self._programs = resolved

    @property
    def agents(self):
        return tuple(self._programs)

    def program(self, agent):
        """Return the :class:`AgentProgram` of ``agent``."""
        try:
            return self._programs[agent]
        except KeyError:
            raise ProgramError(f"no program for agent {agent!r}") from None

    def __getitem__(self, agent):
        return self.program(agent)

    def __iter__(self):
        return iter(self._programs.values())

    def guards(self):
        """Return every guard of every agent."""
        return tuple(guard for program in self for guard in program.guards())

    def knowledge_subformulas(self):
        """Return all ``K``/``M`` subformulas of all guards."""
        result = set()
        for program in self:
            result |= program.knowledge_subformulas()
        return result

    def actions(self, agent):
        """Return the actions mentioned by ``agent``'s program."""
        return self.program(agent).actions()

    def check_against_context(self, context):
        """Validate the program against a context: its agents must exist and
        every action it mentions must be available to the agent.  Returns the
        program itself so the call can be chained."""
        for agent in self.agents:
            if agent not in context.agents:
                raise ProgramError(f"program agent {agent!r} is not an agent of the context")
            available = set(context.agent_actions(agent))
            for action in self.actions(agent):
                if action not in available:
                    raise ProgramError(
                        f"action {action!r} of agent {agent!r} is not available in the context"
                    )
        return self

    def describe(self):
        """Return a human-readable rendering of the joint program."""
        return "\n".join(program.describe() for program in self)

    def __repr__(self):
        return f"KnowledgeBasedProgram(agents={list(self._programs)})"
