"""Analysis helpers built on top of interpreted systems.

* :mod:`repro.analysis.common_knowledge` — levels of group knowledge
  (``E``, ``E E``, ...), when a fact becomes common knowledge, and the
  round-indexed knowledge progression used by the muddy-children experiment;
* :mod:`repro.analysis.statistics` — structural statistics of interpreted
  systems and a per-agent "knowledge census" of which facts are known where.
"""

from repro.analysis.common_knowledge import (
    everyone_knows_level,
    knowledge_level_reached,
    is_common_knowledge,
    knowledge_progression,
)
from repro.analysis.statistics import system_statistics, knowledge_census

__all__ = [
    "everyone_knows_level",
    "knowledge_level_reached",
    "is_common_knowledge",
    "knowledge_progression",
    "system_statistics",
    "knowledge_census",
]
