"""Structural statistics and knowledge censuses of interpreted systems."""

from repro.logic.formula import Knows, Prop


def system_statistics(system):
    """Return a dictionary of structural statistics of an interpreted system.

    Includes state/transition counts, depth, per-agent numbers of local
    states (how much each agent can distinguish) and the sizes of the largest
    indistinguishability classes.
    """
    transition_system = system.transition_system
    per_agent = {}
    for agent in system.agents:
        classes = {}
        for state in system.states:
            classes.setdefault(system.local_state(agent, state), []).append(state)
        sizes = sorted((len(members) for members in classes.values()), reverse=True)
        per_agent[agent] = {
            "local_states": len(classes),
            "largest_class": sizes[0] if sizes else 0,
            "singleton_classes": sum(1 for size in sizes if size == 1),
        }
    return {
        "context": system.context.name,
        "states": len(transition_system),
        "transitions": len(transition_system.transitions),
        "max_depth": transition_system.max_depth(),
        "deadlocks": len(transition_system.deadlock_states()),
        "synchronous": system.is_synchronous(),
        "agents": per_agent,
    }


def knowledge_census(system, propositions=None, agents=None):
    """For each agent and proposition, count at how many reachable states the
    agent knows the proposition, knows its negation, knows *both*, or is
    uncertain.

    The four buckets are disjoint and partition the reachable states:

    ``knows_true`` / ``knows_false``
        States where the agent knows the proposition / its negation — and not
        the other one.
    ``knows_both``
        States satisfying both ``K_a p`` and ``K_a !p``.  On the usual
        reflexive (S5) structures this is always ``0``, but
        :class:`repro.kripke.structure.EpistemicStructure` is deliberately
        relation-agnostic: at a state with *no* ``R_a``-successors every
        knowledge formula holds vacuously, so counting such states in both
        ``knows_*`` buckets used to drive ``uncertain`` (computed as the
        remainder) negative.
    ``uncertain``
        States where the agent knows neither.

    All ``K`` formulas of the census are evaluated in one batched engine
    pass when the system exposes a persistent evaluator (two modal operands
    per agent and proposition, grouped per agent).

    Parameters
    ----------
    propositions:
        Iterable of proposition names; defaults to every proposition used in
        the system's labelling.
    agents:
        Defaults to all agents of the system.
    """
    agents = list(system.agents if agents is None else agents)
    if propositions is None:
        propositions = sorted(system.structure.propositions)
    else:
        propositions = list(propositions)
    evaluator = getattr(system, "evaluator", None)
    if evaluator is not None:
        # Warm the evaluator cache with one batched pass over every census
        # formula: all ``K_a ...`` operands of one agent share a single
        # backend ``knows_many`` call.
        evaluator.extensions(
            [
                formula
                for agent in agents
                for name in propositions
                for formula in (
                    Knows(agent, Prop(name)),
                    Knows(agent, ~Prop(name)),
                )
            ]
        )
    census = {}
    total = len(system.states)
    for agent in agents:
        agent_census = {}
        for name in propositions:
            proposition = Prop(name)
            knows_true = system.extension(Knows(agent, proposition))
            knows_false = system.extension(Knows(agent, ~proposition))
            knows_both = knows_true & knows_false
            agent_census[name] = {
                "knows_true": len(knows_true) - len(knows_both),
                "knows_false": len(knows_false) - len(knows_both),
                "knows_both": len(knows_both),
                "uncertain": total - len(knows_true | knows_false),
            }
        census[agent] = agent_census
    return census
