"""Structural statistics and knowledge censuses of interpreted systems."""

from repro.logic.formula import Knows, Prop


def system_statistics(system):
    """Return a dictionary of structural statistics of an interpreted system.

    Includes state/transition counts, depth, per-agent numbers of local
    states (how much each agent can distinguish) and the sizes of the largest
    indistinguishability classes.
    """
    transition_system = system.transition_system
    per_agent = {}
    for agent in system.agents:
        classes = {}
        for state in system.states:
            classes.setdefault(system.local_state(agent, state), []).append(state)
        sizes = sorted((len(members) for members in classes.values()), reverse=True)
        per_agent[agent] = {
            "local_states": len(classes),
            "largest_class": sizes[0] if sizes else 0,
            "singleton_classes": sum(1 for size in sizes if size == 1),
        }
    return {
        "context": system.context.name,
        "states": len(transition_system),
        "transitions": len(transition_system.transitions),
        "max_depth": transition_system.max_depth(),
        "deadlocks": len(transition_system.deadlock_states()),
        "synchronous": system.is_synchronous(),
        "agents": per_agent,
    }


def knowledge_census(system, propositions=None, agents=None):
    """For each agent and proposition, count at how many reachable states the
    agent knows the proposition, knows its negation, or is uncertain.

    Parameters
    ----------
    propositions:
        Iterable of proposition names; defaults to every proposition used in
        the system's labelling.
    agents:
        Defaults to all agents of the system.
    """
    if agents is None:
        agents = system.agents
    if propositions is None:
        propositions = sorted(system.structure.propositions)
    census = {}
    total = len(system.states)
    for agent in agents:
        agent_census = {}
        for name in propositions:
            proposition = Prop(name)
            knows_true = system.extension(Knows(agent, proposition))
            knows_false = system.extension(Knows(agent, ~proposition))
            agent_census[name] = {
                "knows_true": len(knows_true),
                "knows_false": len(knows_false),
                "uncertain": total - len(knows_true) - len(knows_false),
            }
        census[agent] = agent_census
    return census
