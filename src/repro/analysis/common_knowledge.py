"""Group knowledge: everyone-knows iterations and common knowledge.

Common knowledge of ``phi`` among a group is the infinite conjunction
``E phi``, ``E E phi``, ... ; over a finite structure the iteration
stabilises, and ``C`` can equivalently be computed through the transitive
closure of the union of the group's accessibility relations (as done in
:mod:`repro.logic.semantics`).  The helpers below expose the *level*
structure, which the analysis of protocols such as the muddy children and
coordinated-attack style arguments relies on.
"""

from repro.logic.formula import CommonKnows, EveryoneKnows
from repro.util.errors import ModelError


def everyone_knows_level(formula, group, level):
    """Return the formula ``E_G^level formula`` (``level`` nested E's)."""
    if level < 0:
        raise ModelError("knowledge level must be non-negative")
    result = formula
    for _ in range(level):
        result = EveryoneKnows(group, result)
    return result


def knowledge_level_reached(system, state, formula, group, max_level=None):
    """Return the largest ``k`` such that ``E_G^k formula`` holds at
    ``state`` (0 if even ``formula`` fails; ``None`` means the iteration
    stabilised at common knowledge).

    The iteration is stopped at ``max_level`` (default: number of reachable
    states, after which the extension must have stabilised).
    """
    if max_level is None:
        max_level = len(system.states) + 1
    if not system.holds(state, formula):
        return 0
    level = 0
    current = formula
    while level < max_level:
        next_formula = EveryoneKnows(group, current)
        if not system.holds(state, next_formula):
            return level
        level += 1
        current = next_formula
    if system.holds(state, CommonKnows(group, formula)):
        return None
    return level


def is_common_knowledge(system, state, formula, group):
    """Return ``True`` iff ``formula`` is common knowledge among ``group`` at
    ``state``."""
    return system.holds(state, CommonKnows(group, formula))


def knowledge_progression(systems_by_round, formula, group):
    """Given a mapping ``round -> (system, states at that round)``, return
    for each round the number of those states at which ``E_G formula`` and
    ``C_G formula`` hold.  Used to tabulate how group knowledge grows round
    by round in synchronous protocols."""
    progression = {}
    for round_index, (system, states) in sorted(systems_by_round.items()):
        everyone = EveryoneKnows(group, formula)
        common = CommonKnows(group, formula)
        everyone_extension = system.extension(everyone)
        common_extension = system.extension(common)
        progression[round_index] = {
            "states": len(states),
            "everyone_knows": sum(1 for state in states if state in everyone_extension),
            "common_knowledge": sum(1 for state in states if state in common_extension),
        }
    return progression
