"""Group knowledge: everyone-knows iterations and common knowledge.

Common knowledge of ``phi`` among a group is the infinite conjunction
``E phi``, ``E E phi``, ... ; over a finite structure the iteration
stabilises, and ``C`` can equivalently be computed through the transitive
closure of the union of the group's accessibility relations (as done in
:mod:`repro.logic.semantics`).  The helpers below expose the *level*
structure, which the analysis of protocols such as the muddy children and
coordinated-attack style arguments relies on.
"""

from repro import obs as _obs
from repro.engine import evaluator_for
from repro.logic.formula import CommonKnows, EveryoneKnows
from repro.util.errors import ModelError


def everyone_knows_level(formula, group, level):
    """Return the formula ``E_G^level formula`` (``level`` nested E's)."""
    if level < 0:
        raise ModelError("knowledge level must be non-negative")
    result = formula
    for _ in range(level):
        result = EveryoneKnows(group, result)
    return result


def knowledge_level_reached(system, state, formula, group, max_level=None):
    """Return the largest ``k`` such that ``E_G^k formula`` holds at
    ``state`` (0 if even ``formula`` fails; ``None`` means the iteration
    stabilised at common knowledge).

    The iteration is stopped at ``max_level`` (default: number of reachable
    states, after which the extension must have stabilised).

    The ``E``-levels are computed by iterating the backend's
    ``everyone_knows`` operator on the extension of ``formula`` directly —
    one world-set pass per level instead of re-evaluating an ever deeper
    nested formula — when the system exposes its epistemic ``structure``
    (both :class:`repro.systems.interpreted_system.InterpretedSystem` and
    :class:`repro.interpretation.functional.StateSetView` do).
    """
    if max_level is None:
        max_level = len(system.states) + 1
    structure = getattr(system, "structure", None)
    if structure is not None:
        return _level_reached_via_backend(structure, state, formula, group, max_level)
    if not system.holds(state, formula):
        return 0
    level = 0
    current = formula
    while level < max_level:
        next_formula = EveryoneKnows(group, current)
        if not system.holds(state, next_formula):
            return level
        level += 1
        current = next_formula
    if system.holds(state, CommonKnows(group, formula)):
        return None
    return level


def _level_reached_via_backend(structure, state, formula, group, max_level):
    """Backend implementation of :func:`knowledge_level_reached`."""
    if state not in structure:
        raise ModelError(f"state {state!r} does not belong to the system")
    evaluator = evaluator_for(structure)
    backend = evaluator.backend
    # Reuse the formula layer's group validation (non-empty, agent names) so
    # the fast path rejects exactly what the formula-based path rejects.
    group = EveryoneKnows(group, formula).group
    current = evaluator.extension_ws(formula)
    if not backend.contains(structure, current, state):
        return 0
    level = 0
    while level < max_level:
        nxt = backend.everyone_knows(structure, group, current)
        if _obs.ENABLED:
            _obs.event(
                "fixpoint.iter",
                loop="knowledge_level",
                backend=backend.name,
                iteration=level + 1,
            )
        if not backend.contains(structure, nxt, state):
            return level
        level += 1
        if backend.equals(nxt, current):
            # The E-iteration has stabilised with ``state`` still inside, so
            # every deeper level up to ``max_level`` would also succeed; skip
            # straight to the common-knowledge check.
            level = max_level
            break
        current = nxt
    common = backend.common_knows(structure, group, evaluator.extension_ws(formula))
    if backend.contains(structure, common, state):
        return None
    return level


def is_common_knowledge(system, state, formula, group):
    """Return ``True`` iff ``formula`` is common knowledge among ``group`` at
    ``state``."""
    return system.holds(state, CommonKnows(group, formula))


def knowledge_progression(systems_by_round, formula, group):
    """Given a mapping ``round -> (system, states at that round)``, return
    for each round the number of those states at which ``E_G formula`` and
    ``C_G formula`` hold.  Used to tabulate how group knowledge grows round
    by round in synchronous protocols."""
    progression = {}
    for round_index, (system, states) in sorted(systems_by_round.items()):
        everyone = EveryoneKnows(group, formula)
        common = CommonKnows(group, formula)
        everyone_extension = system.extension(everyone)
        common_extension = system.extension(common)
        progression[round_index] = {
            "states": len(states),
            "everyone_knows": sum(1 for state in states if state in everyone_extension),
            "common_knowledge": sum(1 for state in states if state in common_extension),
        }
    return progression
