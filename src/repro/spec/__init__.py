"""Declarative protocol specs — the ``.kbp`` grammar and its lowerings.

The paper treats a knowledge-based program as a *specification*: variables
an environment acts on, what each agent observes, the actions it may take,
and guarded clauses over knowledge formulas.  This package makes that
specification a first-class object, :class:`ProtocolSpec`, with a small
textual grammar and two lowerings sharing one source of truth:

- ``spec.variable_context()`` — the explicit path
  (:func:`repro.systems.variable_context.variable_context`);
- ``spec.symbolic_model()`` — the enumeration-free path
  (:class:`repro.symbolic.model.SymbolicContextModel`), honouring the
  spec's declared ``order`` hint.

``spec.program(name)`` builds the corresponding
:class:`~repro.programs.knowledge_based.KnowledgeBasedProgram`.  The
bundled zoo specs live in ``repro/spec/specs/*.kbp`` and are loaded with
:func:`load_spec`.

Grammar reference
=================

A spec is line-oriented.  ``#`` starts a comment; blank lines are ignored;
``agent``, ``program`` and ``foreach`` open blocks closed by ``end``.

Top-level directives::

    protocol NAME              # display name (may use {meta} templates)
    param NAME = META          # integer parameter; overridable at load time
    var NAME : bool            # a boolean state variable
    var NAME : LO..HI          # an integer-ranged variable (bounds: meta-exprs)
    order NAME...              # BDD variable-order hint (appending; when
                               # present, the lines must total a permutation)
    let NAME = FORMULA         # formula macro, referenced as $NAME in guards
    env NAME [: UPDATES]       # an environment action
    init EXPR                  # initial condition (multiple lines conjoin)
    constraint EXPR            # global state constraint (multiple conjoin)

Agent blocks declare observability, actions, and the default (``main``)
program's clauses::

    agent NAME
      observes NAME...         # appending; a line may list zero names
      action NAME [: UPDATES]  # UPDATES = "var := EXPR; var := EXPR; ..."
      if FORMULA do ACTION     # a clause of the agent's KB program
      otherwise ACTION         # fallback (defaults to noop)
    end

Alternative programs for the same spec (e.g. the variable-setting family)
are named ``program`` blocks containing agent blocks with only
``if``/``otherwise`` lines::

    program NAME
      agent NAME
        if FORMULA do ACTION
      end
    end

Parameterised *families* use meta-expansion, evaluated before parsing:

- ``{META}`` substitutes the integer (or boolean) value of a meta
  expression over ``param`` values and enclosing ``foreach`` variables —
  e.g. ``muddy{i}``, ``coin{(i-1) % n}``, ``ite(day < {num_days}, ...)``.
- ``foreach i in LO..HI [where META] ... end`` repeats its body lines
  (variable/agent/clause/init declarations, nestable).
- ``any(i in LO..HI [where META] : BODY)`` / ``all(...)`` unroll inside
  expressions and formulas to ``|``/``&`` chains (empty range: ``false`` /
  ``true``).

Expressions (effects, ``init``, ``constraint``, and guard atoms) support
``true``/``false``, integer literals, variables, ``+ - * %``, comparisons
``== != < <= > >=``, boolean ``! & |`` and ``ite(c, t, e)``.  Formulas
(guards, ``let`` bodies) combine boolean atoms with ``! & |``, let
references ``$NAME``, and the modalities ``K[a]``, ``M[a]`` (possibility),
``E[a,b,...]``, ``C[a,b,...]``, ``D[a,b,...]``; parentheses group either
level.  Guard atoms compile through
:meth:`~repro.modeling.expressions.Expression.to_formula`, so they land on
the state-space labelling convention (bare name for booleans,
``name=value`` otherwise).

Validation (:func:`validate_spec`, run automatically after parsing and by
the lowerings' callers) reports spec-level mistakes — unknown variables,
overlapping write sets across agents/environment, out-of-domain constants,
non-permutation order hints, undeclared clause actions — as
:class:`~repro.util.errors.SpecError` with file/line positions, *before*
any model is built.
"""

from repro.spec.ir import (
    DEFAULT_PROGRAM,
    AgentClauses,
    ProtocolSpec,
    is_boolean_expression,
    render_expression,
    render_formula,
)
from repro.spec.library import bundled_spec_names, bundled_spec_path, load_spec
from repro.spec.parser import parse_spec, parse_spec_file
from repro.spec.validate import validate_spec
from repro.util.errors import SpecError

__all__ = [
    "AgentClauses",
    "DEFAULT_PROGRAM",
    "ProtocolSpec",
    "SpecError",
    "bundled_spec_names",
    "bundled_spec_path",
    "is_boolean_expression",
    "load_spec",
    "parse_spec",
    "parse_spec_file",
    "render_expression",
    "render_formula",
    "validate_spec",
]
