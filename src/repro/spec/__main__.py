"""Command-line front end of the spec layer.

Usage::

    python -m repro.spec <file.kbp | bundled-name> [--param n=5 ...]
    python -m repro.spec --list
    python -m repro.spec --fuzz 50 --seed 0

Given a spec (a ``.kbp`` path or the name of a bundled protocol), the tool
parses it, validates it and prints its statistics: variables, agents,
state-space size and the symbolic reachable-state count of its main
program's implementation (computed on BDDs, so it works at sizes the
explicit path cannot enumerate).  ``--kbp`` echoes the canonical rendering
instead.  ``--fuzz`` runs the spec-level differential fuzzer.
"""

import argparse
import sys

from repro.spec import SpecError, bundled_spec_names, load_spec


def _parse_params(pairs):
    params = {}
    for pair in pairs or ():
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise SpecError(f"--param expects NAME=INTEGER, got {pair!r}")
        try:
            params[name] = int(value)
        except ValueError:
            raise SpecError(f"parameter {name!r} must be an integer, got {value!r}")
    return params


def _reachable_count(spec):
    """The reachable-state count of the main program's implementation,
    computed entirely on BDDs.  Falls back to the liberal over-approximation
    (every enabled action taken) when the construction fails."""
    from repro.interpretation import construct_by_rounds
    from repro.interpretation.symbolic import _reach, _seed_selection

    model = spec.symbolic_model()
    program = spec.program()
    try:
        result = construct_by_rounds(
            program.check_against_context(model), model, verify=False
        )
        return result.system.state_count(), "implementation"
    except Exception:
        selection = _seed_selection(program, model, "liberal")
        states, _, _ = _reach(program, model, selection)
        return model.view(states).state_count(), "liberal over-approximation"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.spec",
        description="Parse, validate and summarise .kbp protocol specs.",
    )
    parser.add_argument(
        "spec", nargs="?", help="a .kbp file path or the name of a bundled spec"
    )
    parser.add_argument(
        "--param",
        "-p",
        action="append",
        metavar="NAME=INT",
        help="override a spec parameter (repeatable)",
    )
    parser.add_argument(
        "--kbp", action="store_true", help="print the canonical .kbp rendering"
    )
    parser.add_argument(
        "--no-reachable",
        action="store_true",
        help="skip the symbolic reachability computation",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the bundled protocol specs"
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help="generate and differential-check N random specs",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fuzzer seed (default 0)"
    )
    parser.add_argument(
        "--spec-deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-spec wall-clock budget for --fuzz; a spec whose check "
        "exceeds it is counted as timed out instead of stalling the "
        "campaign (default 60, 0 disables)",
    )
    options = parser.parse_args(argv)

    if options.list:
        for name in bundled_spec_names():
            print(name)
        return 0

    if options.fuzz is not None:
        from repro.spec.fuzz import run_fuzz

        stats = run_fuzz(
            options.fuzz,
            seed=options.seed,
            timings=True,
            spec_deadline=options.spec_deadline or None,
        )
        print(
            f"checked {stats['checked']} specs (seed {options.seed}): "
            f"{stats['converged']} constructed ({stats['states_total']} states total), "
            f"{stats['failed_cleanly']} failed identically on both paths, "
            f"{stats['timed_out']} timed out"
        )
        timing = stats.get("timing")
        if timing:
            print(
                "per-spec check time: "
                f"p50 {timing['p50'] * 1000:.1f} ms, "
                f"p90 {timing['p90'] * 1000:.1f} ms, "
                f"p99 {timing['p99'] * 1000:.1f} ms, "
                f"max {timing['max'] * 1000:.1f} ms"
            )
        return 0

    if not options.spec:
        parser.error("expected a spec file or bundled name (or --list/--fuzz)")

    try:
        spec = load_spec(options.spec, **_parse_params(options.param))
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if options.kbp:
        print(spec.to_kbp(), end="")
        return 0

    print(spec.describe())
    if not options.no_reachable:
        count, method = _reachable_count(spec)
        print(f"  reachable:   {count} states ({method}, symbolic)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
