"""Parser for the textual ``.kbp`` protocol grammar.

The grammar is line-oriented; see the :mod:`repro.spec` package docstring
for the full reference.  Parsing proceeds in three phases:

1. **Lines and blocks** — comments (``#``) are stripped, blank lines are
   dropped, and ``agent``/``foreach``/``program`` ... ``end`` blocks are
   matched into a tree.
2. **Meta expansion** — each line is *textually* expanded under the
   current meta environment (``param`` values plus enclosing ``foreach``
   loop variables): ``any(i in lo..hi : body)`` / ``all(...)`` folds are
   unrolled into ``|``/``&`` chains, and ``{meta-expr}`` substitutions are
   evaluated to integer (or boolean) literals.  This is what makes
   parameterised protocol *families* (``muddy{i}``, ``coin{(i-1) % n}``)
   expressible in a flat grammar.
3. **Expression/formula parsing** — the expanded text is tokenized and
   parsed into :mod:`repro.modeling.expressions` trees (effects, ``init``,
   ``constraint``) or :mod:`repro.logic.formula` trees (guards).  Guard
   atoms are comparison-level boolean expressions compiled through
   :meth:`Expression.to_formula`, so they land on exactly the ``"x=v"``
   atom convention of the state-space labelling.

Every error is reported as a :class:`repro.util.errors.SpecError` carrying
the source name and 1-based line number.
"""

import re

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    Knows,
    Not,
    Or,
    Possible,
)
from repro.modeling.expressions import (
    BinaryOp,
    BoolOp,
    Comparison,
    Const,
    Ite,
    NotOp,
    VarRef,
)
from repro import obs as _obs
from repro.modeling.state_space import Assignment
from repro.modeling.variables import boolean, ranged
from repro.spec.ir import DEFAULT_PROGRAM, AgentClauses, ProtocolSpec, is_boolean_expression
from repro.systems.actions import NOOP_NAME
from repro.util.errors import SpecError

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_TOKEN_RE = re.compile(
    r"(?P<ws>\s+)"
    r"|(?P<number>\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<let>\$[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>:=|==|!=|<=|>=|<|>|=|&|\||!|\+|-|\*|%|\(|\)|\[|\]|,|;|:)"
)
_FOLD_RE = re.compile(r"\b(any|all)\s*\(")
_BRACE_RE = re.compile(r"\{([^{}]*)\}")
_CMP_OPS = ("==", "!=", "<=", ">=", "<", ">", "=")
_MODALITIES = {"K", "M", "E", "C", "D"}


def _tokenize(text, source=None, line=None):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SpecError(
                f"unexpected character {text[pos]!r} in {text.strip()!r}",
                source=source,
                line=line,
            )
        pos = match.end()
        if match.lastgroup != "ws":
            tokens.append((match.lastgroup, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _ExprParser:
    """Recursive-descent parser over a token list.

    ``resolve`` maps an identifier to an :class:`Expression` — a
    :class:`VarRef` for spec expressions, a :class:`Const` for meta
    expressions.  ``lets`` (formula macros) and ``check_atom`` (domain
    check for guard atoms) are only used on the formula side.
    """

    def __init__(self, tokens, resolve, source=None, line=None, lets=None, check_atom=None):
        self.tokens = tokens
        self.i = 0
        self.resolve = resolve
        self.source = source
        self.line = line
        self.lets = lets or {}
        self.check_atom = check_atom

    # -- token plumbing ----------------------------------------------------

    def _error(self, message):
        return SpecError(message, source=self.source, line=self.line)

    def peek(self):
        return self.tokens[self.i]

    def advance(self):
        token = self.tokens[self.i]
        self.i += 1
        return token

    def at_op(self, *ops):
        kind, value = self.peek()
        return kind == "op" and value in ops

    def expect_op(self, op):
        kind, value = self.advance()
        if kind != "op" or value != op:
            raise self._error(f"expected {op!r}, got {value!r}")

    def expect_ident(self, what="identifier"):
        kind, value = self.advance()
        if kind != "ident":
            raise self._error(f"expected {what}, got {value!r}")
        return value

    def expect_eof(self):
        kind, value = self.peek()
        if kind != "eof":
            raise self._error(f"unexpected trailing input {value!r}")

    # -- expressions -------------------------------------------------------

    def parse_expression(self):
        return self._expr_or()

    def _expr_or(self):
        operands = [self._expr_and()]
        while self.at_op("|"):
            self.advance()
            operands.append(self._expr_and())
        return operands[0] if len(operands) == 1 else BoolOp("or", operands)

    def _expr_and(self):
        operands = [self._expr_not()]
        while self.at_op("&"):
            self.advance()
            operands.append(self._expr_not())
        return operands[0] if len(operands) == 1 else BoolOp("and", operands)

    def _expr_not(self):
        if self.at_op("!"):
            self.advance()
            return NotOp(self._expr_not())
        return self._expr_cmp()

    def _expr_cmp(self):
        left = self._expr_sum()
        if self.at_op(*_CMP_OPS):
            _, op = self.advance()
            right = self._expr_sum()
            return Comparison("==" if op == "=" else op, left, right)
        return left

    def _expr_sum(self):
        left = self._expr_term()
        while self.at_op("+", "-"):
            _, op = self.advance()
            left = BinaryOp(op, left, self._expr_term())
        return left

    def _expr_term(self):
        left = self._expr_factor()
        while self.at_op("*", "%"):
            _, op = self.advance()
            left = BinaryOp(op, left, self._expr_factor())
        return left

    def _expr_factor(self):
        kind, value = self.peek()
        if kind == "number":
            self.advance()
            return Const(int(value))
        if kind == "op" and value == "-":
            self.advance()
            nkind, nvalue = self.peek()
            if nkind != "number":
                raise self._error("unary '-' is only supported on integer literals")
            self.advance()
            return Const(-int(nvalue))
        if kind == "op" and value == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if kind == "let":
            raise self._error(
                f"let-defined formula {value!r} cannot be used inside an expression "
                "(lets are guard formulas)"
            )
        if kind == "ident":
            if value == "true":
                self.advance()
                return Const(True)
            if value == "false":
                self.advance()
                return Const(False)
            if value == "ite" and self.tokens[self.i + 1] == ("op", "("):
                self.advance()
                self.expect_op("(")
                condition = self.parse_expression()
                self.expect_op(",")
                then = self.parse_expression()
                self.expect_op(",")
                otherwise = self.parse_expression()
                self.expect_op(")")
                return Ite(condition, then, otherwise)
            self.advance()
            return self.resolve(value)
        raise self._error(f"expected an expression, got {value!r}")

    # -- formulas ----------------------------------------------------------

    def parse_formula(self):
        return self._f_or()

    def _f_or(self):
        operands = [self._f_and()]
        while self.at_op("|"):
            self.advance()
            operands.append(self._f_and())
        # Constant folding keeps degenerate folds (empty any/all) canonical,
        # matching the simplification the expression route applies.
        if any(operand == TRUE for operand in operands):
            return TRUE
        operands = [operand for operand in operands if operand != FALSE]
        if not operands:
            return FALSE
        return operands[0] if len(operands) == 1 else Or(operands)

    def _f_and(self):
        operands = [self._f_unary()]
        while self.at_op("&"):
            self.advance()
            operands.append(self._f_unary())
        if any(operand == FALSE for operand in operands):
            return FALSE
        operands = [operand for operand in operands if operand != TRUE]
        if not operands:
            return TRUE
        return operands[0] if len(operands) == 1 else And(operands)

    def _f_unary(self):
        kind, value = self.peek()
        if kind == "op" and value == "!":
            self.advance()
            return Not(self._f_unary())
        if kind == "ident" and value in _MODALITIES and self.tokens[self.i + 1] == ("op", "["):
            self.advance()
            self.expect_op("[")
            agents = [self.expect_ident("agent name")]
            while self.at_op(","):
                self.advance()
                agents.append(self.expect_ident("agent name"))
            self.expect_op("]")
            operand = self._f_unary()
            if value in ("K", "M"):
                if len(agents) != 1:
                    raise self._error(f"{value}[...] takes exactly one agent, got {agents!r}")
                return (Knows if value == "K" else Possible)(agents[0], operand)
            group_cls = {"E": EveryoneKnows, "C": CommonKnows, "D": DistributedKnows}[value]
            return group_cls(tuple(agents), operand)
        return self._f_atom()

    def _f_atom(self):
        kind, value = self.peek()
        if kind == "let":
            name = value[1:]
            if name not in self.lets:
                raise self._error(
                    f"unknown let ${name} (known: {sorted(self.lets) or 'none'})"
                )
            self.advance()
            return self.lets[name]
        # Try a comparison-level boolean expression; on failure, backtrack
        # and re-parse a parenthesized formula (needed for e.g. ``(K[a] p)``).
        start = self.i
        try:
            expr = self._expr_cmp()
        except SpecError:
            self.i = start
            if self.at_op("("):
                self.advance()
                inner = self.parse_formula()
                self.expect_op(")")
                return inner
            raise
        if not is_boolean_expression(expr):
            raise self._error(
                f"guard atom {expr} is not boolean (comparisons and boolean "
                "variables are allowed; bare arithmetic is not)"
            )
        if self.check_atom is not None:
            self.check_atom(expr)
        return expr.to_formula()


# -- meta expansion ------------------------------------------------------------


def _meta_eval(text, env, source, line):
    def resolve(name):
        if name in env:
            return Const(env[name])
        raise SpecError(
            f"unknown parameter {name!r} in meta expression {text.strip()!r} "
            f"(known: {sorted(env) or 'none'})",
            source=source,
            line=line,
        )

    parser = _ExprParser(_tokenize(text, source, line), resolve, source, line)
    expression = parser.parse_expression()
    parser.expect_eof()
    return expression.evaluate({})


def _substitute_braces(text, env, source, line):
    while True:
        match = _BRACE_RE.search(text)
        if match is None:
            return text
        value = _meta_eval(match.group(1), env, source, line)
        if value is True:
            rendered = "true"
        elif value is False:
            rendered = "false"
        else:
            rendered = str(value)
        text = text[: match.start()] + rendered + text[match.end():]


def _matching_paren(text, open_index, source, line):
    depth = 0
    for index in range(open_index, len(text)):
        if text[index] == "(":
            depth += 1
        elif text[index] == ")":
            depth -= 1
            if depth == 0:
                return index
    raise SpecError(f"unbalanced parentheses in {text.strip()!r}", source=source, line=line)


def _split_fold(inner, source, line):
    depth = 0
    for index, char in enumerate(inner):
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        elif char == ":" and depth == 0:
            return inner[:index], inner[index + 1:]
    raise SpecError(
        f"fold is missing its ':' separator: {inner.strip()!r}", source=source, line=line
    )


def _parse_fold_header(header, env, source, line):
    header = _substitute_braces(header, env, source, line).strip()
    match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s+in\s+(.*)$", header)
    if match is None:
        raise SpecError(
            f"malformed fold header {header!r} (expected 'IDENT in lo..hi [where cond]')",
            source=source,
            line=line,
        )
    loop_var, bounds = match.group(1), match.group(2)
    where = None
    if " where " in bounds:
        bounds, where = bounds.split(" where ", 1)
    pieces = bounds.split("..")
    if len(pieces) != 2:
        raise SpecError(
            f"malformed fold range {bounds.strip()!r} (expected 'lo..hi')",
            source=source,
            line=line,
        )
    low = _meta_eval(pieces[0], env, source, line)
    high = _meta_eval(pieces[1], env, source, line)
    return loop_var, low, high, where


def _expand_text(text, env, source, line):
    """Expand ``any``/``all`` folds and ``{meta}`` substitutions in a line."""
    while True:
        match = _FOLD_RE.search(text)
        if match is None:
            break
        kind = match.group(1)
        open_index = match.end() - 1
        close_index = _matching_paren(text, open_index, source, line)
        header, body = _split_fold(text[open_index + 1 : close_index], source, line)
        loop_var, low, high, where = _parse_fold_header(header, env, source, line)
        pieces = []
        for value in range(low, high + 1):
            sub_env = dict(env)
            sub_env[loop_var] = value
            if where is not None and not _meta_eval(where, sub_env, source, line):
                continue
            pieces.append("(" + _expand_text(body, sub_env, source, line) + ")")
        if pieces:
            joiner = " | " if kind == "any" else " & "
            replacement = "(" + joiner.join(pieces) + ")"
        else:
            replacement = "false" if kind == "any" else "true"
        text = text[: match.start()] + replacement + text[close_index + 1:]
    return _substitute_braces(text, env, source, line)


# -- line/block structure ------------------------------------------------------


class _Block:
    __slots__ = ("kind", "header", "line", "children")

    def __init__(self, kind, header, line):
        self.kind = kind
        self.header = header
        self.line = line
        self.children = []


_BLOCK_KEYWORDS = ("agent", "foreach", "program")


def _build_tree(text, source):
    root = _Block("root", "", 0)
    stack = [root]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        keyword = line.split(None, 1)[0]
        rest = line[len(keyword):].strip()
        if keyword == "end":
            if rest:
                raise SpecError("'end' takes no arguments", source=source, line=lineno)
            if len(stack) == 1:
                raise SpecError("unmatched 'end'", source=source, line=lineno)
            stack.pop()
        elif keyword in _BLOCK_KEYWORDS:
            block = _Block(keyword, rest, lineno)
            stack[-1].children.append(block)
            stack.append(block)
        else:
            stack[-1].children.append((lineno, line))
    if len(stack) > 1:
        raise SpecError(
            f"unclosed {stack[-1].kind!r} block", source=source, line=stack[-1].line
        )
    return root


# -- the builder ---------------------------------------------------------------


class _Builder:
    def __init__(self, source, overrides):
        self.source = source
        self.overrides = dict(overrides or {})
        self.used_overrides = set()
        self.name = None
        self.params = {}
        self.variables = []
        self.var_index = {}
        self.order = []
        self.lets = {}
        self.observables = {}
        self.actions = {}
        self.env_effects = {}
        self.inits = []
        self.constraints = []
        self.programs = {DEFAULT_PROGRAM: {}}

    def _error(self, message, line=None):
        return SpecError(message, source=self.source, line=line)

    def _meta_env(self, loop_env):
        env = dict(self.params)
        env.update(loop_env)
        return env

    def _resolve_spec_ident(self, name, line):
        variable = self.var_index.get(name)
        if variable is None:
            raise self._error(
                f"unknown variable {name!r} (declared: "
                f"{', '.join(sorted(self.var_index)) or 'none'})",
                line,
            )
        return VarRef(variable)

    def _spec_parser(self, text, line, with_lets=False):
        tokens = _tokenize(text, self.source, line)
        return _ExprParser(
            tokens,
            lambda name: self._resolve_spec_ident(name, line),
            self.source,
            line,
            lets=self.lets if with_lets else None,
            check_atom=lambda expr: _check_comparison_constants(expr, self.source, line),
        )

    def _parse_spec_expression(self, text, line, boolean_required=True):
        parser = self._spec_parser(text, line)
        expression = parser.parse_expression()
        parser.expect_eof()
        if boolean_required and not is_boolean_expression(expression):
            raise self._error(f"expected a boolean expression, got {expression}", line)
        _check_comparison_constants(expression, self.source, line)
        return expression

    def _parse_updates(self, text, line, owner):
        updates = {}
        for piece in text.split(";"):
            piece = piece.strip()
            if not piece:
                continue
            parser = self._spec_parser(piece, line)
            target = parser.expect_ident("variable name")
            if target not in self.var_index:
                raise self._error(
                    f"unknown variable {target!r} written by {owner}", line
                )
            parser.expect_op(":=")
            expression = parser.parse_expression()
            parser.expect_eof()
            _check_comparison_constants(expression, self.source, line)
            if target in updates:
                raise self._error(f"{owner} writes {target!r} twice", line)
            updates[target] = expression
        return Assignment(updates)

    # -- walking -----------------------------------------------------------

    def walk(self, block, loop_env, context):
        for child in block.children:
            if isinstance(child, _Block):
                self._enter_block(child, loop_env, context)
            else:
                lineno, text = child
                expanded = _expand_text(text, self._meta_env(loop_env), self.source, lineno)
                self._line(expanded, lineno, loop_env, context)

    def _enter_block(self, block, loop_env, context):
        if block.kind == "foreach":
            loop_var, low, high, where = _parse_fold_header(
                block.header, self._meta_env(loop_env), self.source, block.line
            )
            for value in range(low, high + 1):
                sub_env = dict(loop_env)
                sub_env[loop_var] = value
                if where is not None and not _meta_eval(
                    where, self._meta_env(sub_env), self.source, block.line
                ):
                    continue
                self.walk(block, sub_env, context)
            return
        if block.kind == "agent":
            name = _expand_text(
                block.header, self._meta_env(loop_env), self.source, block.line
            ).strip()
            if not _IDENT_RE.match(name):
                raise self._error(f"invalid agent name {name!r}", block.line)
            if context[0] == "top":
                if name in self.observables:
                    raise self._error(f"duplicate agent {name!r}", block.line)
                self.observables[name] = []
                self.actions[name] = {}
                self.walk(block, loop_env, ("agent", name, DEFAULT_PROGRAM))
            elif context[0] == "program":
                if name not in self.observables:
                    raise self._error(
                        f"program {context[1]!r} mentions unknown agent {name!r}",
                        block.line,
                    )
                self.walk(block, loop_env, ("agent", name, context[1]))
            else:
                raise self._error("agent blocks cannot be nested", block.line)
            return
        if block.kind == "program":
            if context[0] != "top":
                raise self._error(
                    "program blocks are only allowed at the top level", block.line
                )
            name = block.header.strip()
            if not _IDENT_RE.match(name):
                raise self._error(f"invalid program name {name!r}", block.line)
            if name == DEFAULT_PROGRAM:
                raise self._error(
                    f"program name {DEFAULT_PROGRAM!r} is reserved for the "
                    "clauses declared inside agent blocks",
                    block.line,
                )
            if name in self.programs:
                raise self._error(f"duplicate program {name!r}", block.line)
            self.programs[name] = {}
            self.walk(block, loop_env, ("program", name))
            return
        raise self._error(f"unknown block {block.kind!r}", block.line)

    def _clause_slot(self, agent, program):
        return self.programs[program].setdefault(
            agent, {"clauses": [], "fallback": None}
        )

    def _line(self, text, lineno, loop_env, context):
        keyword = text.split(None, 1)[0]
        rest = text[len(keyword):].strip()
        if context[0] == "agent":
            self._agent_line(keyword, rest, lineno, context)
            return
        if context[0] == "program":
            raise self._error(
                f"only agent blocks are allowed inside a program block, got {keyword!r}",
                lineno,
            )
        handler = getattr(self, f"_top_{keyword}", None)
        if handler is None:
            raise self._error(f"unknown directive {keyword!r}", lineno)
        handler(rest, lineno, loop_env)

    # -- top-level directives ----------------------------------------------

    def _top_protocol(self, rest, lineno, loop_env):
        if self.name is not None:
            raise self._error("duplicate 'protocol' line", lineno)
        if not rest:
            raise self._error("'protocol' needs a name", lineno)
        self.name = rest

    def _top_param(self, rest, lineno, loop_env):
        if loop_env:
            raise self._error("'param' is not allowed inside foreach", lineno)
        if "=" not in rest:
            raise self._error("expected 'param NAME = default'", lineno)
        name, default = rest.split("=", 1)
        name = name.strip()
        if not _IDENT_RE.match(name):
            raise self._error(f"invalid parameter name {name!r}", lineno)
        if name in self.params:
            raise self._error(f"duplicate parameter {name!r}", lineno)
        if name in self.overrides:
            value = self.overrides[name]
            self.used_overrides.add(name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise self._error(
                    f"parameter {name!r} must be an integer, got {value!r}", lineno
                )
        else:
            value = _meta_eval(default, self.params, self.source, lineno)
            if not isinstance(value, int) or isinstance(value, bool):
                raise self._error(
                    f"default of parameter {name!r} must be an integer, got {value!r}",
                    lineno,
                )
        self.params[name] = value

    def _top_var(self, rest, lineno, loop_env):
        if ":" not in rest:
            raise self._error("expected 'var NAME : bool' or 'var NAME : lo..hi'", lineno)
        name, domain = rest.split(":", 1)
        name = name.strip()
        domain = domain.strip()
        if not _IDENT_RE.match(name):
            raise self._error(f"invalid variable name {name!r}", lineno)
        if name in self.var_index:
            raise self._error(f"duplicate variable {name!r}", lineno)
        if domain == "bool":
            variable = boolean(name)
        else:
            pieces = domain.split("..")
            if len(pieces) != 2:
                raise self._error(
                    f"invalid domain {domain!r} (expected 'bool' or 'lo..hi')", lineno
                )
            env = self._meta_env(loop_env)
            low = _meta_eval(pieces[0], env, self.source, lineno)
            high = _meta_eval(pieces[1], env, self.source, lineno)
            if high < low:
                raise self._error(f"empty domain {low}..{high} for {name!r}", lineno)
            variable = ranged(name, low, high)
        self.variables.append(variable)
        self.var_index[name] = variable

    def _top_order(self, rest, lineno, loop_env):
        for name in rest.split():
            if name not in self.var_index:
                raise self._error(f"unknown variable {name!r} in order hint", lineno)
            self.order.append(name)

    def _top_let(self, rest, lineno, loop_env):
        if "=" not in rest:
            raise self._error("expected 'let NAME = formula'", lineno)
        name, body = rest.split("=", 1)
        name = name.strip()
        if not _IDENT_RE.match(name):
            raise self._error(f"invalid let name {name!r}", lineno)
        if name in self.lets:
            raise self._error(f"duplicate let {name!r}", lineno)
        parser = self._spec_parser(body, lineno, with_lets=True)
        formula = parser.parse_formula()
        parser.expect_eof()
        self.lets[name] = formula

    def _top_env(self, rest, lineno, loop_env):
        name, _, updates = rest.partition(":")
        name = name.strip()
        if not _IDENT_RE.match(name):
            raise self._error(f"invalid environment action name {name!r}", lineno)
        if name in self.env_effects:
            raise self._error(f"duplicate environment action {name!r}", lineno)
        self.env_effects[name] = self._parse_updates(
            updates, lineno, f"environment action {name!r}"
        )

    def _top_init(self, rest, lineno, loop_env):
        self.inits.append(self._parse_spec_expression(rest, lineno))

    def _top_constraint(self, rest, lineno, loop_env):
        self.constraints.append(self._parse_spec_expression(rest, lineno))

    # -- agent-block directives --------------------------------------------

    def _agent_line(self, keyword, rest, lineno, context):
        _, agent, program = context
        in_program_block = program != DEFAULT_PROGRAM
        if keyword == "observes":
            if in_program_block:
                raise self._error("'observes' is not allowed inside a program block", lineno)
            for name in rest.split():
                if name not in self.var_index:
                    raise self._error(
                        f"unknown variable {name!r} in observes of agent {agent!r}",
                        lineno,
                    )
                self.observables[agent].append(name)
            return
        if keyword == "action":
            if in_program_block:
                raise self._error("'action' is not allowed inside a program block", lineno)
            name, _, updates = rest.partition(":")
            name = name.strip()
            if not _IDENT_RE.match(name):
                raise self._error(f"invalid action name {name!r}", lineno)
            if name in self.actions[agent]:
                raise self._error(
                    f"duplicate action {name!r} of agent {agent!r}", lineno
                )
            self.actions[agent][name] = self._parse_updates(
                updates, lineno, f"action {name!r} of agent {agent!r}"
            )
            return
        if keyword == "if":
            parser = self._spec_parser(rest, lineno, with_lets=True)
            guard = parser.parse_formula()
            do_word = parser.expect_ident("'do'")
            if do_word != "do":
                raise self._error(f"expected 'do', got {do_word!r}", lineno)
            action = parser.expect_ident("action name")
            parser.expect_eof()
            from repro.programs import Clause

            self._clause_slot(agent, program)["clauses"].append(Clause(guard, action))
            return
        if keyword == "otherwise":
            if not _IDENT_RE.match(rest):
                raise self._error(f"invalid fallback action {rest!r}", lineno)
            slot = self._clause_slot(agent, program)
            if slot["fallback"] is not None:
                raise self._error(
                    f"duplicate 'otherwise' for agent {agent!r}", lineno
                )
            slot["fallback"] = rest
            return
        raise self._error(
            f"unknown directive {keyword!r} inside agent block", lineno
        )

    # -- assembly ----------------------------------------------------------

    def finish(self):
        if self.name is None:
            raise self._error("spec is missing its 'protocol' line")
        unknown = set(self.overrides) - self.used_overrides
        if unknown:
            raise self._error(
                f"unknown parameter override(s) {sorted(unknown)} "
                f"(declared parameters: {sorted(self.params) or 'none'})"
            )
        if not self.inits:
            initial = Const(True)
        elif len(self.inits) == 1:
            initial = self.inits[0]
        else:
            initial = BoolOp("and", self.inits)
        if not self.constraints:
            constraint = None
        elif len(self.constraints) == 1:
            constraint = self.constraints[0]
        else:
            constraint = BoolOp("and", self.constraints)
        programs = {}
        for prog_name, table in self.programs.items():
            programs[prog_name] = {
                agent: AgentClauses(
                    slot["clauses"],
                    slot["fallback"] if slot["fallback"] is not None else NOOP_NAME,
                )
                for agent, slot in table.items()
            }
        spec = ProtocolSpec(
            name=self.name,
            variables=self.variables,
            observables=self.observables,
            actions=self.actions,
            initial=initial,
            env_effects=self.env_effects,
            global_constraint=constraint,
            variable_order=self.order or None,
            programs=programs,
            params=self.params,
            source=self.source,
        )
        return spec.validate()


def _check_comparison_constants(expression, source, line):
    """Reject ``==``/``!=`` comparisons of a variable against a constant
    outside its domain — almost always a typo, and silently constant
    otherwise.  Recurses through the whole expression tree."""
    if isinstance(expression, Comparison) and expression.op in ("==", "!="):
        pairs = (
            (expression.left, expression.right),
            (expression.right, expression.left),
        )
        for ref, other in pairs:
            if isinstance(ref, VarRef) and isinstance(other, Const):
                if not ref.variable.contains(other.value):
                    raise SpecError(
                        f"constant {other.value!r} is outside the domain of "
                        f"variable {ref.variable.name!r} "
                        f"(domain: {list(ref.variable.domain)})",
                        source=source,
                        line=line,
                    )
    for attr in ("left", "right", "operand", "condition", "then", "otherwise"):
        child = getattr(expression, attr, None)
        if child is not None:
            _check_comparison_constants(child, source, line)
    for child in getattr(expression, "operands", ()):
        _check_comparison_constants(child, source, line)


# -- public API ----------------------------------------------------------------


def parse_spec(text, params=None, source=None):
    """Parse ``.kbp`` text into a validated :class:`ProtocolSpec`.

    ``params`` overrides the spec's declared ``param`` defaults (all values
    must be integers); ``source`` names the spec in error messages.
    """
    with _obs.span("spec.parse", source=source):
        tree = _build_tree(text, source)
        builder = _Builder(source, params)
        builder.walk(tree, {}, ("top",))
        return builder.finish()


def parse_spec_file(path, **params):
    """Parse a ``.kbp`` file (see :func:`parse_spec`)."""
    import os

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_spec(text, params=params, source=os.path.basename(str(path)))
