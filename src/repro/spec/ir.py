"""The :class:`ProtocolSpec` intermediate representation.

A ``ProtocolSpec`` is the declarative description of a knowledge-based
protocol: finite-domain variables, per-agent observability, named
actions with :class:`repro.modeling.state_space.Assignment` effects,
environment effects, an initial-state constraint, an optional global
constraint, an optional BDD variable-order hint and one or more named
knowledge-based programs.  It is produced by the ``.kbp`` parser
(:mod:`repro.spec.parser`) or built directly (e.g. by the fuzzer in
:mod:`repro.spec.fuzz`), validated by :mod:`repro.spec.validate`, and
lowered to either model path:

* :meth:`ProtocolSpec.variable_context` — the explicit path
  (:func:`repro.systems.variable_context.variable_context`);
* :meth:`ProtocolSpec.symbolic_model` — the enumeration-free path
  (:class:`repro.symbolic.model.SymbolicContextModel`), honouring the
  spec's declared ``order`` hint.

:meth:`ProtocolSpec.to_kbp` renders the spec back to the textual grammar
(monomorphised: parameters and ``foreach`` loops already expanded), and
re-parsing the rendering yields an :meth:`equivalent` spec — the
round-trip property the fuzzer checks.
"""

from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Formula,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro.modeling.expressions import (
    BinaryOp,
    BoolOp,
    Comparison,
    Const,
    Expression,
    Ite,
    NotOp,
    VarRef,
)
from repro import obs as _obs
from repro.modeling.state_space import Assignment, StateSpace
from repro.modeling.variables import Variable
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems.actions import NOOP_NAME
from repro.util.errors import SpecError

DEFAULT_PROGRAM = "main"


class AgentClauses:
    """The clauses and fallback of one agent within one named program."""

    __slots__ = ("clauses", "fallback")

    def __init__(self, clauses=(), fallback=NOOP_NAME):
        object.__setattr__(self, "clauses", tuple(clauses))
        object.__setattr__(self, "fallback", fallback)

    def __setattr__(self, key, value):
        raise AttributeError("AgentClauses is immutable")

    def __eq__(self, other):
        if not isinstance(other, AgentClauses):
            return NotImplemented
        return self.clauses == other.clauses and self.fallback == other.fallback

    def __repr__(self):
        return f"AgentClauses({len(self.clauses)} clauses, fallback={self.fallback!r})"


class ProtocolSpec:
    """Declarative protocol description; see the module docstring.

    Parameters
    ----------
    name:
        Context name (reported by the lowered models).
    variables:
        Ordered iterable of :class:`repro.modeling.variables.Variable`.
    observables:
        Mapping ``agent -> iterable of variable names``; the mapping's key
        order fixes the agent order of the lowered context.
    actions:
        Mapping ``agent -> {action name -> Assignment}``.
    env_effects:
        Optional mapping ``env action name -> Assignment``.
    initial:
        Boolean :class:`~repro.modeling.expressions.Expression` selecting
        the initial states.
    global_constraint:
        Optional boolean expression restricting the state space.
    variable_order:
        Optional BDD variable-order hint (must be a permutation of the
        variable names when given); used by :meth:`symbolic_model`.
    programs:
        Mapping ``program name -> {agent -> AgentClauses}``.  The program
        called :data:`DEFAULT_PROGRAM` is the one :meth:`program` returns
        by default.
    params:
        The resolved integer parameters the spec was instantiated with
        (informational; recorded by :meth:`describe` and ``to_kbp``
        comments).
    source:
        Where the spec came from (file name), for error reporting.
    """

    def __init__(
        self,
        name,
        variables,
        observables,
        actions,
        initial,
        env_effects=None,
        global_constraint=None,
        variable_order=None,
        programs=None,
        params=None,
        source=None,
    ):
        if not isinstance(name, str) or not name:
            raise SpecError("protocol name must be a non-empty string", source=source)
        self.name = name
        self.variables = tuple(variables)
        for variable in self.variables:
            if not isinstance(variable, Variable):
                raise SpecError(f"expected Variable, got {variable!r}", source=source)
        self.observables = {agent: tuple(names) for agent, names in dict(observables).items()}
        self.actions = {
            agent: dict(agent_actions) for agent, agent_actions in dict(actions).items()
        }
        for agent in self.observables:
            self.actions.setdefault(agent, {})
        if not isinstance(initial, Expression):
            raise SpecError("the initial condition must be a boolean Expression", source=source)
        self.initial = initial
        self.env_effects = dict(env_effects or {})
        self.global_constraint = global_constraint
        self.variable_order = tuple(variable_order) if variable_order else None
        self.programs = {
            prog_name: dict(agent_clauses)
            for prog_name, agent_clauses in dict(programs or {}).items()
        }
        if DEFAULT_PROGRAM not in self.programs:
            self.programs[DEFAULT_PROGRAM] = {}
        self.params = dict(params or {})
        self.source = source
        self._space = None

    # -- structure ---------------------------------------------------------

    @property
    def agents(self):
        """The agent names, in declaration order."""
        return tuple(self.observables)

    @property
    def program_names(self):
        """The names of the declared programs (``"main"`` always present)."""
        return tuple(self.programs)

    def state_space(self):
        """The :class:`StateSpace` over the spec's variables (cached)."""
        if self._space is None:
            self._space = StateSpace(self.variables)
        return self._space

    def variable(self, name):
        """Return the declared variable called ``name``."""
        return self.state_space().variable(name)

    # -- lowerings ---------------------------------------------------------

    def validate(self):
        """Run the spec-level validator; returns the spec for chaining."""
        from repro.spec.validate import validate_spec

        with _obs.span("spec.validate", spec=self.name):
            validate_spec(self)
        return self

    def context_parts(self):
        """The keyword arguments of
        :func:`repro.systems.variable_context.variable_context` — the shared
        ``context_parts()`` convention of the protocol zoo.  The variable
        order hint is *not* part of the dict (it only concerns the symbolic
        path); pull it from :attr:`variable_order`.
        """
        parts = dict(
            name=self.name,
            state_space=self.state_space(),
            observables={agent: list(names) for agent, names in self.observables.items()},
            actions={agent: dict(table) for agent, table in self.actions.items()},
            initial=self.initial,
        )
        if self.env_effects:
            parts["env_effects"] = dict(self.env_effects)
        if self.global_constraint is not None:
            parts["global_constraint"] = self.global_constraint
        return parts

    def variable_context(self):
        """Lower to the explicit path: a
        :class:`repro.systems.context.Context` (with ``context.spec``)."""
        from repro.systems import variable_context

        with _obs.span("spec.lower.explicit", spec=self.name):
            return variable_context(**self.context_parts())

    def symbolic_model(self, variable_order=None, **kwargs):
        """Lower to the enumeration-free path: a
        :class:`repro.symbolic.model.SymbolicContextModel`.

        ``variable_order`` overrides the spec's declared ``order`` hint;
        remaining keyword arguments (``cache_ceiling``, ``reorder``) are
        forwarded.
        """
        from repro.symbolic.model import SymbolicContextModel

        if variable_order is None:
            variable_order = list(self.variable_order) if self.variable_order else None
        with _obs.span("spec.lower.symbolic", spec=self.name):
            return SymbolicContextModel(
                **self.context_parts(), variable_order=variable_order, **kwargs
            )

    def program(self, name=DEFAULT_PROGRAM):
        """Build the named :class:`KnowledgeBasedProgram`.

        Every agent of the spec appears in the joint program; agents without
        clauses in the named program get an empty case statement (they only
        observe).
        """
        try:
            table = self.programs[name]
        except KeyError:
            raise SpecError(
                f"spec {self.name!r} has no program {name!r} "
                f"(available: {sorted(self.programs)})",
                source=self.source,
            ) from None
        agent_programs = []
        for agent in self.agents:
            entry = table.get(agent, AgentClauses())
            agent_programs.append(
                AgentProgram(agent, entry.clauses, fallback=entry.fallback)
            )
        return KnowledgeBasedProgram(agent_programs)

    # -- equality (used by the fuzzer's round-trip check) ------------------

    def equivalent(self, other):
        """Structural equality of two specs (names, variables, observables,
        actions, constraints, order hint and programs)."""
        if not isinstance(other, ProtocolSpec):
            return False
        if self.name != other.name:
            return False
        if self.variables != other.variables:
            return False
        if self.observables != other.observables:
            return False
        if set(self.actions) != set(other.actions):
            return False
        for agent, table in self.actions.items():
            if not _action_tables_equal(table, other.actions[agent]):
                return False
        if not _assignment_tables_equal(self.env_effects, other.env_effects):
            return False
        if not self.initial.equals(other.initial):
            return False
        if (self.global_constraint is None) != (other.global_constraint is None):
            return False
        if self.global_constraint is not None and not self.global_constraint.equals(
            other.global_constraint
        ):
            return False
        if self.variable_order != other.variable_order:
            return False
        if set(self.programs) != set(other.programs):
            return False
        for prog_name, table in self.programs.items():
            if table != other.programs[prog_name]:
                return False
        return True

    # -- rendering ---------------------------------------------------------

    def to_kbp(self):
        """Render the spec in the textual ``.kbp`` grammar (monomorphised:
        any parameters and loops of the original source are already
        expanded).  Re-parsing the rendering yields an :meth:`equivalent`
        spec."""
        lines = [f"protocol {self.name}"]
        if self.params:
            lines.append("# instantiated with " + ", ".join(
                f"{key} = {value}" for key, value in sorted(self.params.items())
            ))
        lines.append("")
        for variable in self.variables:
            lines.append(f"var {variable.name} : {_render_domain(variable)}")
        if self.variable_order:
            lines.append("")
            lines.append("order " + " ".join(self.variable_order))
        lines.append("")
        for agent in self.agents:
            lines.append(f"agent {agent}")
            lines.append("  observes " + " ".join(self.observables[agent]))
            for action_name, effect in self.actions[agent].items():
                lines.append("  " + _render_action(action_name, effect))
            entry = self.programs.get(DEFAULT_PROGRAM, {}).get(agent)
            if entry is not None:
                lines.extend("  " + text for text in _render_clauses(entry))
            lines.append("end")
            lines.append("")
        for env_name, effect in self.env_effects.items():
            lines.append(_render_action(env_name, effect, keyword="env"))
        if self.env_effects:
            lines.append("")
        lines.append(f"init {render_expression(self.initial)}")
        if self.global_constraint is not None:
            lines.append(f"constraint {render_expression(self.global_constraint)}")
        for prog_name, table in self.programs.items():
            if prog_name == DEFAULT_PROGRAM:
                continue
            lines.append("")
            lines.append(f"program {prog_name}")
            for agent, entry in table.items():
                lines.append(f"  agent {agent}")
                lines.extend("    " + text for text in _render_clauses(entry))
                lines.append("  end")
            lines.append("end")
        return "\n".join(lines) + "\n"

    def describe(self):
        """A short human-readable summary (used by the CLI)."""
        space = self.state_space()
        lines = [
            f"protocol {self.name}",
            f"  variables:   {len(self.variables)}"
            f" ({', '.join(v.name for v in self.variables[:8])}"
            f"{', ...' if len(self.variables) > 8 else ''})",
            f"  agents:      {len(self.agents)} ({', '.join(self.agents[:8])}"
            f"{', ...' if len(self.agents) > 8 else ''})",
            f"  state space: {space.size()} states",
            f"  env actions: {len(self.env_effects)}",
            f"  programs:    {', '.join(self.program_names)}",
        ]
        if self.params:
            lines.insert(1, "  parameters:  " + ", ".join(
                f"{key}={value}" for key, value in sorted(self.params.items())
            ))
        if self.variable_order:
            lines.append(f"  order hint:  {' '.join(self.variable_order)}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"ProtocolSpec({self.name!r}, {len(self.variables)} variables, "
            f"{len(self.agents)} agents)"
        )


# -- helpers -------------------------------------------------------------------


def _action_tables_equal(left, right):
    if set(left) != set(right):
        return False
    return all(_assignments_equal(left[name], right[name]) for name in left)


def _assignment_tables_equal(left, right):
    if set(left) != set(right):
        return False
    return all(_assignments_equal(left[name], right[name]) for name in left)


def _assignments_equal(left, right):
    if set(left.updates) != set(right.updates):
        return False
    return all(left.updates[name].equals(right.updates[name]) for name in left.updates)


def _render_domain(variable):
    if variable.is_boolean:
        return "bool"
    domain = variable.domain
    values = list(domain)
    if values == list(range(values[0], values[-1] + 1)):
        return f"{values[0]}..{values[-1]}"
    raise SpecError(
        f"variable {variable.name!r} has a domain the grammar cannot express: "
        f"{values!r} (only bool and contiguous integer ranges are renderable)"
    )


def _render_action(name, effect, keyword="action"):
    updates = effect.updates
    if not updates:
        return f"{keyword} {name}"
    rendered = "; ".join(
        f"{target} := {render_expression(expr)}" for target, expr in updates.items()
    )
    return f"{keyword} {name}: {rendered}"


def _render_clauses(entry):
    lines = [
        f"if {render_formula(clause.guard)} do {clause.action}"
        for clause in entry.clauses
    ]
    if entry.fallback != NOOP_NAME:
        lines.append(f"otherwise {entry.fallback}")
    return lines


def render_expression(expression):
    """Render an :class:`Expression` in the grammar's expression syntax."""
    if isinstance(expression, Const):
        value = expression.value
        if value is True:
            return "true"
        if value is False:
            return "false"
        return str(value)
    if isinstance(expression, VarRef):
        return expression.variable.name
    if isinstance(expression, BinaryOp):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Comparison):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, BoolOp):
        joiner = " & " if expression.op == "and" else " | "
        return "(" + joiner.join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, NotOp):
        return f"!{render_expression(expression.operand)}"
    if isinstance(expression, Ite):
        return (
            f"ite({render_expression(expression.condition)}, "
            f"{render_expression(expression.then)}, "
            f"{render_expression(expression.otherwise)})"
        )
    raise SpecError(f"cannot render expression {expression!r} in the grammar")


def render_formula(formula, _level=0):
    """Render a guard :class:`Formula` in the grammar's formula syntax.

    Atoms follow the labelling convention in reverse: ``Prop("x=3")``
    renders as ``x == 3`` and a bare ``Prop("b")`` as ``b`` — re-parsing
    (which compiles comparisons back to ``"x=v"`` atoms) restores the
    original formula.

    Parentheses are minimal (``_level`` tracks the binding strength of the
    enclosing context: 0 = or, 1 = and, 2 = unary/modal operand).  This is
    what makes the rendering a structural round-trip: an unparenthesized
    ``a & b`` re-parses through the formula route, preserving operand
    order, whereas a parenthesized pure-propositional group would take the
    expression route and come back in ``to_formula``'s canonical order.
    Nested groups that *do* need parentheses are always already canonical
    (the parser canonicalises every parenthesized propositional atom when
    first parsing), so those stay stable too.
    """
    if isinstance(formula, Prop):
        name = formula.name
        if "=" in name:
            variable, value = name.split("=", 1)
            text = f"{variable} == {value}"
            return f"({text})" if _level >= 2 else text
        return name
    if isinstance(formula, TrueFormula):
        return "true"
    if isinstance(formula, FalseFormula):
        return "false"
    if isinstance(formula, Not):
        return f"!{render_formula(formula.operand, 2)}"
    if isinstance(formula, And):
        text = " & ".join(render_formula(op, 2) for op in formula.operands)
        return f"({text})" if _level >= 2 else text
    if isinstance(formula, Or):
        text = " | ".join(render_formula(op, 1) for op in formula.operands)
        return f"({text})" if _level >= 1 else text
    if isinstance(formula, Knows):
        return f"K[{formula.agent}] {render_formula(formula.operand, 2)}"
    if isinstance(formula, Possible):
        return f"M[{formula.agent}] {render_formula(formula.operand, 2)}"
    if isinstance(formula, EveryoneKnows):
        return f"E[{','.join(formula.group)}] {render_formula(formula.operand, 2)}"
    if isinstance(formula, CommonKnows):
        return f"C[{','.join(formula.group)}] {render_formula(formula.operand, 2)}"
    if isinstance(formula, DistributedKnows):
        return f"D[{','.join(formula.group)}] {render_formula(formula.operand, 2)}"
    raise SpecError(
        f"cannot render formula {formula} in the grammar "
        f"(implication and bi-implication are not part of the guard syntax)"
    )


def is_boolean_expression(expression):
    """Whether an :class:`Expression` is boolean-valued — i.e. may be used
    as a guard atom, an ``init``/``constraint`` condition, or compiled via
    :meth:`Expression.to_formula`."""
    if isinstance(expression, (Comparison, BoolOp, NotOp)):
        return True
    if isinstance(expression, Const):
        return isinstance(expression.value, bool)
    if isinstance(expression, VarRef):
        return expression.variable.is_boolean
    if isinstance(expression, Ite):
        return is_boolean_expression(expression.then) and is_boolean_expression(
            expression.otherwise
        )
    return False
