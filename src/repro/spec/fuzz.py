"""Spec-level fuzzing: random well-formed :class:`ProtocolSpec`\\ s,
differential-tested across every lowering.

The generator (:func:`random_spec`) builds specs directly in the IR —
variables with mixed domains, a random observation structure, a write-set
partition that keeps agents' and the environment's effects disjoint (so the
validator's overlap check passes by construction), in-domain effects, a
witness-based satisfiable initial condition and knowledge guards local to
each agent's observables.  Guards are canonicalised through
``Expression.to_formula`` so the textual round trip is stable.

The checker (:func:`differential_check`) then pits the two lowerings
against each other on the *same* spec: initial sets, guard tables,
``derive_protocol`` and the round-by-round construction must agree between
the explicit ``variable_context`` path and the BDD-backed
``symbolic_model`` path — including which exception type they raise when
the construction legitimately fails — and the spec must survive
``to_kbp`` → ``parse_spec`` → ``equivalent``.

``python -m repro.spec --fuzz N --seed S`` drives this from the command
line; ``tests/test_spec_fuzz.py`` pins a seeded run in tier-1.
"""

import random

from repro import obs as _obs
from repro import resilience as _res
from repro.logic.formula import Knows, Not
from repro.util.errors import BudgetExceededError, IterationLimitError
from repro.modeling.expressions import Comparison, Const, Ite, VarRef
from repro.modeling.state_space import Assignment
from repro.modeling.variables import boolean, ranged
from repro.programs import Clause
from repro.spec.ir import DEFAULT_PROGRAM, AgentClauses, ProtocolSpec
from repro.systems.actions import NOOP_NAME

__all__ = ["differential_check", "random_spec", "run_fuzz"]


# -- generation --------------------------------------------------------------------------


def _random_variables(rng):
    count = rng.randint(2, 4)
    variables = []
    for index in range(count):
        name = f"v{index}"
        if rng.random() < 0.5:
            variables.append(boolean(name))
        else:
            variables.append(ranged(name, 0, rng.randint(1, 3)))
    return variables


def _random_value(rng, variable):
    if variable.is_boolean:
        return rng.random() < 0.5
    return rng.choice(list(variable.domain))


def _random_condition(rng, variables):
    """A boolean expression over ``variables`` (guaranteed non-empty)."""
    conjuncts = []
    for variable in variables:
        if len(conjuncts) >= 2:
            break
        if rng.random() < 0.6:
            continue
        if variable.is_boolean and rng.random() < 0.5:
            atom = VarRef(variable)
        else:
            atom = Comparison("==", VarRef(variable), Const(_random_value(rng, variable)))
        if rng.random() < 0.3:
            atom = ~atom
        conjuncts.append(atom)
    if not conjuncts:
        variable = rng.choice(variables)
        return Comparison("==", VarRef(variable), Const(_random_value(rng, variable)))
    condition = conjuncts[0]
    for conjunct in conjuncts[1:]:
        condition = condition & conjunct if rng.random() < 0.5 else condition | conjunct
    return condition


def _random_effect(rng, target, readable):
    """An in-domain update expression for ``target`` reading ``readable``."""
    roll = rng.random()
    if roll < 0.4:
        return Const(_random_value(rng, target))
    if roll < 0.6:
        # A same-domain copy (possibly of the target itself: a frame axiom).
        # Same *type* too: True == 1 in Python, so a naive domain comparison
        # would conflate bool with 0..1 — the validator rejects such copies.
        peers = [
            v
            for v in readable
            if v.is_boolean == target.is_boolean
            and tuple(v.domain) == tuple(target.domain)
        ]
        return VarRef(rng.choice(peers)) if peers else Const(_random_value(rng, target))
    return Ite(
        _random_condition(rng, readable),
        Const(_random_value(rng, target)),
        VarRef(target),
    )


def random_spec(rng, name=None):
    """Generate a random well-formed :class:`ProtocolSpec`.

    ``rng`` is a :class:`random.Random`; equal seeds give equal specs.  The
    spec always validates, its state space stays small enough to enumerate
    (at most ``4^4`` states), and its initial condition is satisfiable by
    construction (a witness state is drawn first and the condition only
    pins variables to the witness's values).
    """
    variables = _random_variables(rng)
    agent_count = rng.randint(1, 3)
    agents = [f"a{i}" for i in range(agent_count)]

    observables = {}
    for agent in agents:
        observed = [v.name for v in variables if rng.random() < 0.6]
        if not observed:
            observed = [rng.choice(variables).name]
        observables[agent] = observed

    # Partition write access: every variable gets at most one writer, so
    # effects can never overlap between parties.
    owners = {}
    for variable in variables:
        owner = rng.choice(agents + ["env", None])
        if owner is not None:
            owners.setdefault(owner, []).append(variable)

    actions = {agent: {} for agent in agents}
    for agent in agents:
        owned = owners.get(agent, [])
        if not owned:
            continue
        for index in range(rng.randint(1, 2)):
            written = [v for v in owned if rng.random() < 0.8] or [rng.choice(owned)]
            updates = {v.name: _random_effect(rng, v, variables) for v in written}
            actions[agent][f"act{index}"] = Assignment(updates)

    env_effects = {}
    env_owned = owners.get("env", [])
    if env_owned:
        for index in range(rng.randint(1, 2)):
            written = [v for v in env_owned if rng.random() < 0.8] or [rng.choice(env_owned)]
            updates = {v.name: _random_effect(rng, v, variables) for v in written}
            env_effects[f"env{index}"] = Assignment(updates)

    witness = {v.name: _random_value(rng, v) for v in variables}
    initial = Const(True)
    pinned = [v for v in variables if rng.random() < 0.7]
    for variable in pinned:
        conjunct = Comparison("==", VarRef(variable), Const(witness[variable.name]))
        initial = conjunct if initial.equals(Const(True)) else initial & conjunct

    clauses = {}
    for agent in agents:
        available = sorted(actions[agent]) + [NOOP_NAME]
        agent_clauses = []
        for _ in range(rng.randint(1, 2)):
            observed = [v for v in variables if v.name in observables[agent]]
            # Mostly guards local to the agent's observables (constructions
            # converge); occasionally a guard over everything, which may be
            # non-local — both paths must then fail identically.
            basis = variables if rng.random() < 0.15 else observed
            guard = _random_condition(rng, basis).to_formula()
            if rng.random() < 0.6:
                guard = Knows(agent, guard)
                if rng.random() < 0.3:
                    guard = Not(guard)
            agent_clauses.append(Clause(guard, rng.choice(available)))
        fallback = rng.choice(available)
        clauses[agent] = AgentClauses(agent_clauses, fallback=fallback)

    spec = ProtocolSpec(
        name=name or "fuzzed-protocol",
        variables=variables,
        observables=observables,
        actions=actions,
        initial=initial,
        env_effects=env_effects,
        programs={DEFAULT_PROGRAM: clauses},
        source="<fuzz>",
    )
    return spec.validate()


# -- differential checking ---------------------------------------------------------------


def _construct(program, context_or_model):
    from repro.interpretation import construct_by_rounds

    try:
        checked = program.check_against_context(context_or_model)
        return construct_by_rounds(checked, context_or_model), None
    except IterationLimitError as error:
        # A loop-limit failure is a legitimate, deterministic outcome both
        # lowerings must agree on — and it now carries the partial progress.
        return None, type(error).__name__
    except BudgetExceededError:
        # A deadline/cancellation raise is *not* a property of the spec
        # (wall time is nondeterministic); let the fuzz driver count it.
        raise
    except Exception as error:  # the construction may legitimately fail
        return None, type(error).__name__


def differential_check(spec):
    """Differential-test one spec across its lowerings.

    Raises :class:`AssertionError` on the first divergence; returns a small
    stats dict (``states``, ``outcome``) when every comparison agrees.
    """
    from repro.interpretation import StateSetView, derive_protocol
    from repro.interpretation.functional import guard_table
    from repro.spec.parser import parse_spec

    context = spec.variable_context()
    model = spec.symbolic_model()
    program = spec.program()

    # Textual round trip.
    reparsed = parse_spec(spec.to_kbp(), source="<roundtrip>")
    assert spec.equivalent(reparsed), "to_kbp -> parse_spec changed the spec"

    # Initial sets.
    explicit_initial = set(context.initial_states)
    symbolic_initial = set(model.encoding.iter_states(model.initial))
    assert symbolic_initial == explicit_initial, "initial sets diverge"
    assert explicit_initial, "generated initial condition is unsatisfiable"

    # Guard tables over the initial states.
    states = sorted(explicit_initial, key=repr)
    explicit_view = StateSetView(context, states)
    symbolic_view = model.view(
        model.view(model.initial).structure.encoding.worlds_node(states)
    )
    explicit_table = guard_table(explicit_view, program)
    symbolic_table = guard_table(symbolic_view, program)
    for agent_program in program:
        agent = agent_program.agent
        for local_state in explicit_view.local_states(agent):
            for clause in agent_program.clauses:
                explicit_value = explicit_table.value(agent, local_state, clause.guard)
                symbolic_value = symbolic_table.value(agent, local_state, clause.guard)
                assert symbolic_value == explicit_value, (
                    f"guard tables diverge for {agent} at {local_state}: "
                    f"{symbolic_value} != {explicit_value}"
                )

    # Protocol derivation over the initial view.
    explicit_derived = derive_protocol(program, explicit_view, require_local=False)
    symbolic_derived = derive_protocol(program, symbolic_view, require_local=False)
    for agent in context.agents:
        for local_state in context.local_states_of(agent, states):
            assert symbolic_derived.actions(agent, local_state) == explicit_derived.actions(
                agent, local_state
            ), f"derived protocols diverge for {agent} at {local_state}"

    # Round-by-round construction, including agreeing failures.
    explicit_result, explicit_outcome = _construct(program, context)
    symbolic_result, symbolic_outcome = _construct(program, model)
    assert symbolic_outcome == explicit_outcome, (
        f"construction outcomes diverge: {symbolic_outcome} != {explicit_outcome}"
    )
    if explicit_result is None:
        return {"states": None, "outcome": explicit_outcome}
    assert symbolic_result.iterations == explicit_result.iterations
    assert symbolic_result.verified == explicit_result.verified
    explicit_states = set(explicit_result.system.states)
    assert set(symbolic_result.system.iter_states()) == explicit_states, (
        "reachable sets diverge"
    )
    for agent in context.agents:
        for local_state in context.local_states_of(agent, explicit_states):
            assert symbolic_result.protocol.actions(
                agent, local_state
            ) == explicit_result.protocol.actions(agent, local_state), (
                f"implementations diverge for {agent} at {local_state}"
            )
    return {"states": len(explicit_states), "outcome": "converged"}


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_fuzz(count=50, seed=0, timings=False, spec_deadline=None):
    """Generate and differential-check ``count`` random specs.

    Returns a summary dict (``checked``, ``converged``, ``failed_cleanly``,
    ``timed_out``, ``states_total``); raises on the first divergence, with
    the failing seed offset in the message.

    With ``timings=True`` each differential check runs inside an
    observability span (``spec.fuzz.check``) and the summary gains a
    ``timing`` block with the per-spec wall-clock percentiles
    (``p50``/``p90``/``p99``/``max``, seconds) read back from the recorded
    spans.

    ``spec_deadline`` (seconds) installs a fresh wall-clock
    :class:`repro.resilience.Budget` around *each* spec's differential
    check, so one pathological generated spec cannot stall the whole
    campaign: a spec whose check exceeds the deadline is counted under
    ``timed_out`` and the run moves on.
    """
    rng = random.Random(seed)
    converged = failed_cleanly = timed_out = states_total = 0
    recorder = None
    if timings:
        from repro.obs.sinks import RecordingSink

        recorder = RecordingSink(kinds=("span",))
        _obs.add_sink(recorder)
    try:
        for index in range(count):
            spec = random_spec(rng, name=f"fuzz-{seed}-{index}")
            try:
                with _obs.span("spec.fuzz.check", index=index):
                    if spec_deadline:
                        with _res.Budget(wall_seconds=spec_deadline):
                            stats = differential_check(spec)
                    else:
                        stats = differential_check(spec)
            except AssertionError as error:
                raise AssertionError(
                    f"differential check failed on spec {index} (seed {seed}): {error}\n"
                    f"{spec.to_kbp()}"
                ) from error
            except IterationLimitError:
                raise  # a divergence-relevant loop limit escaping _construct
            except BudgetExceededError:
                timed_out += 1
                continue
            if stats["outcome"] == "converged":
                converged += 1
                states_total += stats["states"]
            else:
                failed_cleanly += 1
    finally:
        if recorder is not None:
            _obs.remove_sink(recorder)
    summary = {
        "checked": count,
        "converged": converged,
        "failed_cleanly": failed_cleanly,
        "timed_out": timed_out,
        "states_total": states_total,
    }
    if recorder is not None:
        durations = sorted(
            record["dur"]
            for record in recorder.records
            if record["name"] == "spec.fuzz.check"
        )
        if durations:
            summary["timing"] = {
                "p50": _percentile(durations, 0.50),
                "p90": _percentile(durations, 0.90),
                "p99": _percentile(durations, 0.99),
                "max": durations[-1],
            }
    return summary
