"""Spec-level validation — precise errors *before* lowering.

:func:`validate_spec` checks a :class:`~repro.spec.ir.ProtocolSpec` for the
classes of mistakes that would otherwise surface as obscure failures deep in
the explicit or symbolic lowering (or worse, as silently-wrong models):

- no agents, duplicate variables, duplicate agents;
- unknown variables in observability lists, order hints, effect targets, or
  the support of any expression (effects, ``init``, ``constraint``);
- overlapping write sets between any two participants (two agents, or an
  agent and the environment) — the lowering requires every variable to have
  a single writer, and the symbolic path would reject this much later with
  a less helpful message;
- out-of-domain constants: a value assigned (directly or via an ``ite``
  branch) outside the target variable's domain, or an ``==``/``!=``
  comparison against a constant no assignment can ever satisfy;
- type mismatches in effects: a boolean expression assigned to a ranged
  variable or vice versa (``True == 1`` in Python, so the domain check
  alone would let such a copy through and the lowerings would diverge);
- ``order`` hints that are not a permutation of the variables (missing,
  unknown, or repeated names);
- program clauses whose action (or ``otherwise`` fallback) is not declared
  by the agent, and knowledge modalities naming unknown agents.

Everything raises :class:`~repro.util.errors.SpecError` with the spec's
source attached.
"""

from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro.modeling.expressions import Comparison, Const, Ite, VarRef
from repro.spec.ir import is_boolean_expression
from repro.systems.actions import NOOP_NAME
from repro.util.errors import SpecError

__all__ = ["validate_spec"]


def validate_spec(spec):
    """Validate ``spec``; raises :class:`SpecError` on the first problem."""
    checker = _Checker(spec)
    checker.run()
    return spec


class _Checker:
    def __init__(self, spec):
        self.spec = spec
        self.var_index = {}

    def _error(self, message):
        return SpecError(message, source=self.spec.source)

    def run(self):
        spec = self.spec
        for variable in spec.variables:
            if variable.name in self.var_index:
                raise self._error(f"duplicate variable {variable.name!r}")
            self.var_index[variable.name] = variable
        if not spec.variables:
            raise self._error(f"spec {spec.name!r} declares no variables")
        if not spec.observables:
            raise self._error(f"spec {spec.name!r} declares no agents")
        self._check_observables()
        self._check_effects()
        self._check_write_sets()
        self._check_expression(spec.initial, "the init condition")
        if not is_boolean_expression(spec.initial):
            raise self._error("the init condition must be boolean")
        if spec.global_constraint is not None:
            self._check_expression(spec.global_constraint, "the global constraint")
            if not is_boolean_expression(spec.global_constraint):
                raise self._error("the global constraint must be boolean")
        self._check_order()
        self._check_programs()

    # -- pieces ------------------------------------------------------------

    def _check_observables(self):
        for agent, names in self.spec.observables.items():
            seen = set()
            for name in names:
                if name not in self.var_index:
                    raise self._error(
                        f"agent {agent!r} observes unknown variable {name!r}"
                    )
                if name in seen:
                    raise self._error(
                        f"agent {agent!r} observes {name!r} twice"
                    )
                seen.add(name)
        for agent in self.spec.actions:
            if agent not in self.spec.observables:
                raise self._error(
                    f"actions are declared for unknown agent {agent!r}"
                )

    def _effect_tables(self):
        yield "the environment", self.spec.env_effects
        for agent, table in self.spec.actions.items():
            yield f"agent {agent!r}", table

    def _check_effects(self):
        for owner, table in self._effect_tables():
            for action_name, effect in table.items():
                what = f"action {action_name!r} of {owner}"
                for target, expression in effect.updates.items():
                    if target not in self.var_index:
                        raise self._error(f"{what} writes unknown variable {target!r}")
                    self._check_expression(expression, what)
                    self._check_assigned_domain(
                        self.var_index[target], expression, what
                    )
                    self._check_assigned_type(
                        self.var_index[target], expression, what
                    )

    def _check_write_sets(self):
        written = {}
        for owner, table in self._effect_tables():
            names = set()
            for effect in table.values():
                names.update(effect.updates)
            for name in sorted(names):
                if name in written and written[name] != owner:
                    raise self._error(
                        f"overlapping write sets: variable {name!r} is written "
                        f"by both {written[name]} and {owner}"
                    )
                written[name] = owner

    def _check_order(self):
        order = self.spec.variable_order
        if order is None:
            return
        declared = [variable.name for variable in self.spec.variables]
        seen = set()
        for name in order:
            if name not in self.var_index:
                raise self._error(f"order hint names unknown variable {name!r}")
            if name in seen:
                raise self._error(f"order hint repeats variable {name!r}")
            seen.add(name)
        missing = [name for name in declared if name not in seen]
        if missing:
            raise self._error(
                f"order hint is not a permutation of the variables "
                f"(missing: {missing})"
            )

    def _check_programs(self):
        for prog_name, table in self.spec.programs.items():
            for agent, entry in table.items():
                if agent not in self.spec.observables:
                    raise self._error(
                        f"program {prog_name!r} has clauses for unknown agent {agent!r}"
                    )
                declared = set(self.spec.actions.get(agent, ())) | {NOOP_NAME}
                for clause in entry.clauses:
                    if clause.action not in declared:
                        raise self._error(
                            f"program {prog_name!r}: agent {agent!r} has no action "
                            f"{clause.action!r} (declared: {sorted(declared)})"
                        )
                    self._check_formula(
                        clause.guard, f"a guard of agent {agent!r} in {prog_name!r}"
                    )
                if entry.fallback not in declared:
                    raise self._error(
                        f"program {prog_name!r}: fallback of agent {agent!r} is not "
                        f"a declared action: {entry.fallback!r}"
                    )

    # -- expression / formula walkers --------------------------------------

    def _check_expression(self, expression, what):
        for variable in sorted(expression.variables(), key=lambda v: v.name):
            if self.var_index.get(variable.name) != variable:
                raise self._error(
                    f"{what} reads unknown variable {variable.name!r}"
                )
        self._check_comparisons(expression, what)

    def _check_comparisons(self, expression, what):
        if isinstance(expression, Comparison) and expression.op in ("==", "!="):
            for ref, other in (
                (expression.left, expression.right),
                (expression.right, expression.left),
            ):
                if isinstance(ref, VarRef) and isinstance(other, Const):
                    if not ref.variable.contains(other.value):
                        raise self._error(
                            f"{what}: constant {other.value!r} is outside the "
                            f"domain of variable {ref.variable.name!r} "
                            f"(domain: {list(ref.variable.domain)})"
                        )
        for attr in ("left", "right", "operand", "condition", "then", "otherwise"):
            child = getattr(expression, attr, None)
            if child is not None:
                self._check_comparisons(child, what)
        for child in getattr(expression, "operands", ()):
            self._check_comparisons(child, what)

    def _check_assigned_domain(self, variable, expression, what):
        """Constants that an effect can assign must lie in the target's
        domain.  Only top-level constants and ``ite`` branch constants are
        checked — arithmetic results are range-checked at simulation time by
        :meth:`Variable.check`."""
        if isinstance(expression, Const):
            if not variable.contains(expression.value):
                raise self._error(
                    f"{what} assigns out-of-domain constant {expression.value!r} "
                    f"to {variable.name!r} (domain: {list(variable.domain)})"
                )
            return
        if isinstance(expression, Ite):
            self._check_assigned_domain(variable, expression.then, what)
            self._check_assigned_domain(variable, expression.otherwise, what)

    def _check_assigned_type(self, variable, expression, what):
        """Boolean expressions may only be assigned to boolean variables and
        vice versa.  Python's bool/int conflation (``True == 1``) would
        otherwise let a copy like ``n := b`` pass the domain check and then
        silently diverge between the lowerings: the explicit path stores the
        boolean value itself, the symbolic path encodes by domain index."""
        if isinstance(expression, Ite):
            self._check_assigned_type(variable, expression.then, what)
            self._check_assigned_type(variable, expression.otherwise, what)
            return
        if is_boolean_expression(expression) != variable.is_boolean:
            expression_kind = (
                "boolean" if is_boolean_expression(expression) else "non-boolean"
            )
            variable_kind = "boolean" if variable.is_boolean else "non-boolean"
            raise self._error(
                f"{what} assigns a {expression_kind} expression to "
                f"{variable_kind} variable {variable.name!r}"
            )

    def _check_formula(self, formula, what):
        if isinstance(formula, Prop):
            name, equals, value_text = formula.name.partition("=")
            if name not in self.var_index:
                raise self._error(f"{what} mentions unknown variable {name!r}")
            variable = self.var_index[name]
            if equals:
                try:
                    value = int(value_text)
                except ValueError:
                    value = value_text
                if not variable.contains(value) and not any(
                    str(candidate) == value_text for candidate in variable.domain
                ):
                    raise self._error(
                        f"{what}: atom {formula.name!r} tests an out-of-domain "
                        f"value (domain of {name!r}: {list(variable.domain)})"
                    )
            elif not variable.is_boolean:
                raise self._error(
                    f"{what}: bare atom {name!r} refers to a non-boolean "
                    f"variable (use '{name} == value')"
                )
            return
        if isinstance(formula, (TrueFormula, FalseFormula)):
            return
        if isinstance(formula, Not):
            self._check_formula(formula.operand, what)
            return
        if isinstance(formula, (And, Or)):
            for operand in formula.operands:
                self._check_formula(operand, what)
            return
        if isinstance(formula, (Knows, Possible)):
            if formula.agent not in self.spec.observables:
                raise self._error(
                    f"{what} uses a knowledge modality for unknown agent "
                    f"{formula.agent!r}"
                )
            self._check_formula(formula.operand, what)
            return
        if isinstance(formula, (EveryoneKnows, CommonKnows, DistributedKnows)):
            for agent in formula.group:
                if agent not in self.spec.observables:
                    raise self._error(
                        f"{what} uses a group modality naming unknown agent "
                        f"{agent!r}"
                    )
            self._check_formula(formula.operand, what)
            return
        raise self._error(
            f"{what} uses a formula outside the guard fragment: {formula}"
        )
