"""Loading bundled and external ``.kbp`` protocol specs.

The protocol zoo's specs ship inside the package, under
``repro/spec/specs/``.  :func:`load_spec` accepts either a bundled name
(``"muddy_children"``) or a filesystem path (anything containing a path
separator or ending in ``.kbp``), with keyword arguments overriding the
spec's declared ``param`` defaults::

    spec = load_spec("muddy_children", n=4)
    context = spec.variable_context()
    model = spec.symbolic_model()
"""

import os

from repro.spec.parser import parse_spec_file
from repro.util.errors import SpecError

__all__ = ["bundled_spec_names", "bundled_spec_path", "load_spec"]

_SPEC_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "specs")
_SPEC_SUFFIX = ".kbp"


def bundled_spec_names():
    """Sorted names of the specs bundled with the library."""
    return sorted(
        entry[: -len(_SPEC_SUFFIX)]
        for entry in os.listdir(_SPEC_DIR)
        if entry.endswith(_SPEC_SUFFIX)
    )


def bundled_spec_path(name):
    """Filesystem path of the bundled spec called ``name``."""
    path = os.path.join(_SPEC_DIR, name + _SPEC_SUFFIX)
    if not os.path.exists(path):
        raise SpecError(
            f"no bundled spec {name!r} (available: {', '.join(bundled_spec_names())})"
        )
    return path


def load_spec(name_or_path, **params):
    """Parse a bundled spec by name, or any ``.kbp`` file by path.

    Keyword arguments override the spec's ``param`` defaults (values must
    be integers); unknown parameter names are rejected.
    """
    candidate = str(name_or_path)
    if os.sep in candidate or candidate.endswith(_SPEC_SUFFIX):
        path = candidate
        if not os.path.exists(path):
            raise SpecError(f"spec file not found: {path}")
    else:
        path = bundled_spec_path(candidate)
    return parse_spec_file(path, **params)
