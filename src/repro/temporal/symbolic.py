"""Symbolic CTLK model checking — BDD pre-image fixed points end-to-end.

:class:`SymbolicCTLKModelChecker` is the enumeration-free twin of
:class:`repro.temporal.ctlk.CTLKModelChecker`: it checks the same CTLK
language over a :class:`repro.interpretation.symbolic.SymbolicSystem` — the
output of :func:`~repro.interpretation.symbolic.construct_by_rounds_symbolic`
— without ever materialising a :class:`~repro.modeling.state_space.State`:

* every extension is a world-set BDD over the system's reachable set;
* ``EX φ`` is one pre-image ``∃x'. R(x, x') ∧ φ(x')`` — an ``and_exists``
  (relational product) through the system's compiled, totalised transition
  relation (:meth:`SymbolicSystem.transition_node`);
* ``E[φ U ψ]`` and ``EG φ`` are the standard least/greatest fixed points of
  that pre-image, converging by node-id comparison (canonicity makes set
  equality O(1)); the universal operators are their complements relative to
  the reachable set;
* epistemic subformulas dispatch through the existing ``"bdd"`` backend's
  relational products over the system's :class:`SymbolicStructure` — the
  same batched ``*_many`` prefetch the explicit checker uses, so a formula
  DAG's epistemic nodes are grouped by (operator, agent/group) and resolved
  innermost-first.

State objects appear only at the lazy API boundary (``extension``,
``witness_state``, ``holds`` membership tests).  The checker cooperates with
dynamic variable reordering: between fixed-point iterations it offers the
manager a safe point, rooting the transition relation, all cached
extensions, and the current iterate.

Instances are normally obtained transparently: ``CTLKModelChecker(system)``
returns a :class:`SymbolicCTLKModelChecker` whenever ``system`` is symbolic
(``system.is_symbolic_system``), so :func:`repro.temporal.ctlk.check_valid`
and :func:`~repro.temporal.ctlk.check_reachable` work unchanged on systems
no explicit checker could hold in memory.
"""

from repro import obs as _obs
from repro import resilience as _res
from repro.engine import (
    apply_epistemic_many,
    collect_ready_epistemic,
    resolve_backend,
)
from repro.obs.registry import attach_aliases
from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro.symbolic.backend_bdd import SymbolicWorldSet
from repro.symbolic.bdd import FALSE
from repro.temporal.ctlk import AF, AG, AU, AX, EF, EG, EU, EX
from repro.util.errors import EngineError, FormulaError, ModelError

__all__ = ["SymbolicCTLKModelChecker"]


class SymbolicCTLKModelChecker:
    """CTLK model checking over a symbolic system, all sets as BDDs.

    Accepts the ``backend=`` argument of the explicit checker for signature
    compatibility, but only the ``"bdd"`` backend makes sense here (every
    other backend would have to enumerate the reachable set); passing a
    different one raises :class:`~repro.util.errors.EngineError`.
    """

    def __init__(self, system, backend=None):
        resolved = resolve_backend("bdd" if backend is None else backend)
        if resolved.name != "bdd":
            raise EngineError(
                f"a symbolic system can only be checked through the 'bdd' "
                f"backend, not {resolved.name!r}"
            )
        self.system = system
        self.backend = resolved
        self.model = system.model
        self.encoding = self.model.encoding
        self.bdd = self.encoding.bdd
        self.states_node = system.states_node
        self.transition = system.transition_node()
        self._structure = system.structure
        self._ws_encoding = self._structure.encoding
        self._cache = {}
        self._hits = 0
        self._misses = 0

    # -- public API --------------------------------------------------------------------

    def extension_node(self, formula):
        """The set of reachable states satisfying ``formula``, as a BDD."""
        cached = self._cache.get(formula)
        if cached is not None or formula in self._cache:
            self._hits += 1
            return cached
        self._misses += 1
        self._prefetch_epistemic(formula)
        if formula not in self._cache:
            self._cache[formula] = self._evaluate(formula)
        return self._cache[formula]

    def extension(self, formula):
        """The extension as a frozenset of states (enumerating boundary)."""
        return frozenset(self.encoding.iter_states(self.extension_node(formula)))

    def holds(self, state, formula):
        """Return ``True`` iff ``formula`` holds at the reachable ``state``."""
        if not self.encoding.evaluate_node(self.states_node, state):
            raise ModelError(f"state {state!r} is not reachable in the checked system")
        return self.encoding.evaluate_node(self.extension_node(formula), state)

    def valid(self, formula):
        """Return ``True`` iff ``formula`` holds at every initial state."""
        initial = self.bdd.and_(self.model.initial, self.states_node)
        return self.bdd.diff(initial, self.extension_node(formula)) == FALSE

    def reachable(self, formula):
        """Return ``True`` iff some reachable state satisfies ``formula``."""
        return self.extension_node(formula) != FALSE

    def witness_state(self, formula):
        """Return some reachable state satisfying ``formula`` (or ``None``)."""
        for state in self.encoding.iter_states(self.extension_node(formula)):
            return state
        return None

    def cache_info(self):
        """Observability of the per-formula extension memo, keyed by the
        canonical schema of :mod:`repro.obs.registry`: ``memo.formulas``
        counts entries, ``cache.hits``/``cache.misses`` the
        :meth:`extension_node` lookups (recursive subformula lookups
        included — shared subformulas show up as hits).  The historical
        ``formulas`` / ``hits`` / ``misses`` keys remain as aliases for one
        release."""
        info = {
            "memo.formulas": len(self._cache),
            "cache.hits": self._hits,
            "cache.misses": self._misses,
        }
        return attach_aliases(
            info,
            {
                "memo.formulas": "formulas",
                "cache.hits": "hits",
                "cache.misses": "misses",
            },
        )

    # -- evaluation --------------------------------------------------------------------

    def _evaluate(self, formula):
        bdd = self.bdd
        states = self.states_node
        if isinstance(formula, TrueFormula):
            return states
        if isinstance(formula, FalseFormula):
            return FALSE
        if isinstance(formula, Prop):
            return bdd.and_(self.model.atom_node(formula.name), states)
        if isinstance(formula, Not):
            return bdd.diff(states, self.extension_node(formula.operand))
        if isinstance(formula, And):
            result = states
            for operand in formula.operands:
                result = bdd.and_(result, self.extension_node(operand))
            return result
        if isinstance(formula, Or):
            result = FALSE
            for operand in formula.operands:
                result = bdd.or_(result, self.extension_node(operand))
            return result
        if isinstance(formula, Implies):
            return bdd.or_(
                bdd.diff(states, self.extension_node(formula.antecedent)),
                self.extension_node(formula.consequent),
            )
        if isinstance(formula, Iff):
            left = self.extension_node(formula.left)
            right = self.extension_node(formula.right)
            return bdd.diff(states, bdd.xor(left, right))
        if isinstance(
            formula, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)
        ):
            return self._evaluate_epistemic(formula)
        if isinstance(formula, EX):
            return self._pre_exists(self.extension_node(formula.operand))
        if isinstance(formula, EF):
            return self._least_fixpoint_eu(states, self.extension_node(formula.operand))
        if isinstance(formula, EU):
            return self._least_fixpoint_eu(
                self.extension_node(formula.left), self.extension_node(formula.right)
            )
        if isinstance(formula, EG):
            return self._greatest_fixpoint_eg(self.extension_node(formula.operand))
        if isinstance(formula, AX):
            # AX φ == ¬EX ¬φ (the relation is total, so this is exact).
            return bdd.diff(
                states,
                self._pre_exists(bdd.diff(states, self.extension_node(formula.operand))),
            )
        if isinstance(formula, AF):
            # AF φ == ¬EG ¬φ
            return bdd.diff(
                states,
                self._greatest_fixpoint_eg(
                    bdd.diff(states, self.extension_node(formula.operand))
                ),
            )
        if isinstance(formula, AG):
            # AG φ == ¬EF ¬φ
            return bdd.diff(
                states,
                self._least_fixpoint_eu(
                    states, bdd.diff(states, self.extension_node(formula.operand))
                ),
            )
        if isinstance(formula, AU):
            # A[φ U ψ] == ¬(E[¬ψ U (¬φ ∧ ¬ψ)] ∨ EG ¬ψ)
            left = self.extension_node(formula.left)
            right = self.extension_node(formula.right)
            not_right = bdd.diff(states, right)
            bad_until = self._least_fixpoint_eu(not_right, bdd.diff(not_right, left))
            bad_globally = self._greatest_fixpoint_eg(not_right)
            return bdd.diff(states, bdd.or_(bad_until, bad_globally))
        raise FormulaError(f"cannot model check unknown formula node {formula!r}")

    def _evaluate_epistemic(self, formula):
        """Scalar epistemic dispatch (the prefetch normally resolves these in
        batches first): the operand's extension — possibly temporal — wraps
        as a backend world-set and goes through one relational product."""
        inner = SymbolicWorldSet(self._ws_encoding, self.extension_node(formula.operand))
        results = apply_epistemic_many(self.backend, self._structure, [formula], [inner])
        return results[0].node

    def _prefetch_epistemic(self, formula):
        """Resolve the uncached epistemic nodes of the formula DAG in batched
        backend calls, innermost modalities first — the exact strategy of the
        explicit checker, but with world sets staying BDDs throughout."""
        is_cached = self._cache.__contains__
        while True:
            groups = {}
            collect_ready_epistemic(formula, is_cached, groups, {})
            if not groups:
                return
            for nodes in groups.values():
                inners = [
                    SymbolicWorldSet(self._ws_encoding, self.extension_node(node.operand))
                    for node in nodes
                ]
                results = apply_epistemic_many(self.backend, self._structure, nodes, inners)
                for node, result in zip(nodes, results):
                    self._cache[node] = result.node

    # -- fixed points ------------------------------------------------------------------

    def _pre_exists(self, target):
        """States with some successor in ``target``: the relational product
        ``∃x'. R(x, x') ∧ target(x')``, one ``and_exists``."""
        return self.bdd.and_exists(
            self.transition, self.encoding.prime(target), self.encoding.primed_levels
        )

    def _least_fixpoint_eu(self, hold, target):
        """Backward least fixed point ``Z = target ∨ (hold ∧ EX Z)``."""
        bdd = self.bdd
        current = target
        iterations = 0
        while True:
            iterations += 1
            if _obs.ENABLED:
                _obs.event(
                    "fixpoint.iter",
                    loop="ctlk.eu",
                    backend="bdd",
                    iteration=iterations,
                    node=current,
                )
            self._safe_point((hold, target, current), iterations)
            expanded = bdd.or_(current, bdd.and_(hold, self._pre_exists(current)))
            if expanded == current:
                if _obs.ENABLED:
                    _obs.counter("fixpoint.iterations", iterations)
                    _obs.event(
                        "fixpoint", loop="ctlk.eu", backend="bdd", iterations=iterations
                    )
                return current
            current = expanded

    def _greatest_fixpoint_eg(self, hold):
        """Greatest fixed point ``Z = hold ∧ EX Z`` (states that can stay in
        ``hold`` forever — the relation is total, so paths never strand)."""
        bdd = self.bdd
        current = hold
        iterations = 0
        while True:
            iterations += 1
            if _obs.ENABLED:
                _obs.event(
                    "fixpoint.iter",
                    loop="ctlk.eg",
                    backend="bdd",
                    iteration=iterations,
                    node=current,
                )
            self._safe_point((hold, current), iterations)
            contracted = bdd.and_(current, self._pre_exists(current))
            if contracted == current:
                if _obs.ENABLED:
                    _obs.counter("fixpoint.iterations", iterations)
                    _obs.event(
                        "fixpoint", loop="ctlk.eg", backend="bdd", iterations=iterations
                    )
                return current
            current = contracted

    def _safe_point(self, in_flight, iterations=None):
        """Between fixed-point iterations the manager may sift — and an
        installed :class:`repro.resilience.Budget` gets its check: root the
        relation, every cached extension, and the iterate the loop holds."""
        if _res.ACTIVE:
            bud = _res.current_budget()
            if bud is not None:
                bud.tick(
                    "fixpoint.iter",
                    iterations=iterations,
                    manager=self.bdd,
                    roots=lambda: self._reorder_roots(in_flight),
                    groups=self.encoding.reorder_groups,
                    partial=lambda: _res.PartialProgress(
                        "ctlk.fixpoint", iteration=iterations, node=in_flight[-1]
                    ),
                )
        if not self.bdd.reorder_pending:
            return
        self.model.maybe_reorder(self._reorder_roots(in_flight))

    def _reorder_roots(self, in_flight):
        roots = [self.transition, self.states_node]
        roots.extend(node for node in self._cache.values() if node is not None)
        roots.extend(in_flight)
        return roots


def _symbolic_checker(system, backend=None):
    """Factory used by :class:`repro.temporal.ctlk.CTLKModelChecker`'s
    dispatch (kept separate so the explicit module never imports the
    symbolic stack unless a symbolic system actually shows up)."""
    return SymbolicCTLKModelChecker(system, backend)
