"""CTLK: branching-time temporal logic combined with epistemic operators.

Formulas are built from the epistemic language of :mod:`repro.logic` plus the
path-quantified temporal operators ``EX``, ``EG``, ``E[· U ·]`` and their
universal duals.  Satisfaction is defined over an interpreted system (or any
object exposing ``states``, a transition relation and the knowledge
structure): temporal operators quantify over the paths of the transition
relation, epistemic operators over indistinguishable reachable states.

Deadlock states (no outgoing transition) are given an implicit self-loop so
that path quantification is total; the library's example systems either are
total or end in stable "finished" states where this convention is the
intended reading.
"""

from repro import obs as _obs
from repro import resilience as _res
from repro.engine import (
    apply_epistemic,
    apply_epistemic_many,
    collect_ready_epistemic,
    resolve_backend,
)
from repro.obs.registry import attach_aliases
from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro.util.errors import FormulaError, ModelError


class TemporalFormula(Formula):
    """Base class of the temporal operators (they compose with the epistemic
    formulas of :mod:`repro.logic`)."""

    __slots__ = ()


class _UnaryTemporal(TemporalFormula):
    __slots__ = ("operand",)
    _symbol = "?"

    def __init__(self, operand):
        if not isinstance(operand, Formula):
            raise FormulaError(f"temporal operand must be a Formula, got {operand!r}")
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, key, value):
        raise AttributeError("temporal formulas are immutable")

    def children(self):
        return (self.operand,)

    def _key(self):
        return self.operand

    def _substitute(self, mapping):
        return type(self)(self.operand._substitute(mapping))

    def __str__(self):
        return f"{self._symbol} {self.operand}"


class _BinaryTemporal(TemporalFormula):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left, right):
        for operand in (left, right):
            if not isinstance(operand, Formula):
                raise FormulaError(f"temporal operand must be a Formula, got {operand!r}")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, key, value):
        raise AttributeError("temporal formulas are immutable")

    def children(self):
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)

    def _substitute(self, mapping):
        return type(self)(self.left._substitute(mapping), self.right._substitute(mapping))


class EX(_UnaryTemporal):
    """``EX phi`` — on some path, ``phi`` holds in the next state."""

    __slots__ = ()
    _symbol = "EX"


class EG(_UnaryTemporal):
    """``EG phi`` — on some path, ``phi`` holds forever."""

    __slots__ = ()
    _symbol = "EG"


class EF(_UnaryTemporal):
    """``EF phi`` — on some path, ``phi`` eventually holds."""

    __slots__ = ()
    _symbol = "EF"


class AX(_UnaryTemporal):
    """``AX phi`` — on every path, ``phi`` holds in the next state."""

    __slots__ = ()
    _symbol = "AX"


class AG(_UnaryTemporal):
    """``AG phi`` — on every path, ``phi`` holds forever (invariance)."""

    __slots__ = ()
    _symbol = "AG"


class AF(_UnaryTemporal):
    """``AF phi`` — on every path, ``phi`` eventually holds."""

    __slots__ = ()
    _symbol = "AF"


class EU(_BinaryTemporal):
    """``E[phi U psi]`` — on some path, ``phi`` holds until ``psi`` does."""

    __slots__ = ()

    def __str__(self):
        return f"E[{self.left} U {self.right}]"


class AU(_BinaryTemporal):
    """``A[phi U psi]`` — on every path, ``phi`` holds until ``psi`` does."""

    __slots__ = ()

    def __str__(self):
        return f"A[{self.left} U {self.right}]"


class CTLKModelChecker:
    """Explicit-state CTLK model checking over an interpreted system.

    Temporal operators are computed by the standard fixed-point algorithms
    over the (totalised) transition relation; epistemic operators are
    delegated to the knowledge structure of the system through a world-set
    backend that is resolved *once*, at construction (``backend=`` accepts a
    name or a :class:`repro.engine.SetBackend`; the default is the process
    default **at construction time**).  Pinning the backend keeps a
    long-lived checker answering through one representation even when the
    ambient default changes between queries (e.g. a
    :func:`repro.engine.use_backend` context exiting mid-lifetime).

    Before a formula is evaluated, the uncached epistemic nodes of its DAG
    are resolved in *batches*: nodes are grouped by ``(operator,
    agent/group)`` (innermost modalities first, so operands — possibly
    temporal — are always evaluable) and each group goes through one backend
    ``*_many`` call, one stacked pass on the matrix backend.

    Constructing a checker on a *symbolic* system (one flagged
    ``is_symbolic_system`` — the output of
    :func:`repro.interpretation.symbolic.construct_by_rounds_symbolic`)
    transparently returns a
    :class:`repro.temporal.symbolic.SymbolicCTLKModelChecker` instead, which
    runs the same fixed points as BDD pre-images without enumerating a
    single state.
    """

    def __new__(cls, system, backend=None):
        if cls is CTLKModelChecker and getattr(system, "is_symbolic_system", False):
            # Lazy import: the explicit checker must not drag in the symbolic
            # stack (and the returned object, not being an instance of this
            # class, skips __init__ below).
            from repro.temporal.symbolic import _symbolic_checker

            return _symbolic_checker(system, backend)
        return super().__new__(cls)

    def __init__(self, system, backend=None):
        self.system = system
        self.backend = resolve_backend(backend)
        self._states = list(system.states)
        self._state_set = set(self._states)
        relation = system.transition_system.transition_relation()
        successors = {state: set() for state in self._states}
        predecessors = {state: set() for state in self._states}
        for source, target in relation:
            successors[source].add(target)
            predecessors[target].add(source)
        # Totalise: deadlock states loop to themselves.
        for state in self._states:
            if not successors[state]:
                successors[state].add(state)
                predecessors[state].add(state)
        self._successors = successors
        self._predecessors = predecessors
        self._cache = {}
        self._hits = 0
        self._misses = 0

    # -- public API ------------------------------------------------------------------

    def extension(self, formula):
        """Return the set of reachable states satisfying ``formula``.

        Extensions are memoised per formula node across ``extension``/
        ``holds``/``valid`` calls — structural equality of formulas makes
        the memo a DAG cache, so a subformula shared between separate
        queries is computed once (see :meth:`cache_info`)."""
        if formula not in self._cache:
            self._misses += 1
            self._prefetch_epistemic(formula)
            # A top-level epistemic formula is already cached by the prefetch;
            # recomputing it would pay the modal image a second time.
            if formula not in self._cache:
                self._cache[formula] = frozenset(self._evaluate(formula))
        else:
            self._hits += 1
        return self._cache[formula]

    def cache_info(self):
        """Observability of the per-formula extension memo, keyed by the
        canonical schema of :mod:`repro.obs.registry`: ``memo.formulas``
        counts entries, ``cache.hits``/``cache.misses`` the
        :meth:`extension` lookups (recursive subformula lookups included —
        shared subformulas show up as hits).  The historical ``formulas`` /
        ``hits`` / ``misses`` keys remain as aliases for one release."""
        info = {
            "memo.formulas": len(self._cache),
            "cache.hits": self._hits,
            "cache.misses": self._misses,
        }
        return attach_aliases(
            info,
            {
                "memo.formulas": "formulas",
                "cache.hits": "hits",
                "cache.misses": "misses",
            },
        )

    def holds(self, state, formula):
        """Return ``True`` iff ``formula`` holds at the reachable ``state``."""
        if state not in self._state_set:
            raise ModelError(f"state {state!r} is not reachable in the checked system")
        return state in self.extension(formula)

    def valid(self, formula):
        """Return ``True`` iff ``formula`` holds at every initial state."""
        ext = self.extension(formula)
        return all(state in ext for state in self.system.initial_states)

    def reachable(self, formula):
        """Return ``True`` iff some reachable state satisfies ``formula``."""
        return bool(self.extension(formula))

    def witness_state(self, formula):
        """Return some reachable state satisfying ``formula`` (or ``None``)."""
        ext = self.extension(formula)
        for state in self._states:
            if state in ext:
                return state
        return None

    # -- evaluation ------------------------------------------------------------------

    def _evaluate(self, formula):
        states = set(self._states)
        if isinstance(formula, TrueFormula):
            return states
        if isinstance(formula, FalseFormula):
            return set()
        if isinstance(formula, Prop):
            return {s for s in states if formula.name in self.system.context.labelling(s)}
        if isinstance(formula, Not):
            return states - self.extension(formula.operand)
        if isinstance(formula, And):
            result = set(states)
            for operand in formula.operands:
                result &= self.extension(operand)
            return result
        if isinstance(formula, Or):
            result = set()
            for operand in formula.operands:
                result |= self.extension(operand)
            return result
        if isinstance(formula, Implies):
            return (states - self.extension(formula.antecedent)) | self.extension(
                formula.consequent
            )
        if isinstance(formula, Iff):
            left = self.extension(formula.left)
            right = self.extension(formula.right)
            return (left & right) | ((states - left) & (states - right))
        if isinstance(
            formula, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)
        ):
            return self._evaluate_epistemic(formula)
        if isinstance(formula, EX):
            return self._pre_exists(self.extension(formula.operand))
        if isinstance(formula, EF):
            return self._least_fixpoint_eu(set(states), self.extension(formula.operand))
        if isinstance(formula, EU):
            return self._least_fixpoint_eu(
                self.extension(formula.left), self.extension(formula.right)
            )
        if isinstance(formula, EG):
            return self._greatest_fixpoint_eg(self.extension(formula.operand))
        if isinstance(formula, AX):
            target = self.extension(formula.operand)
            return {s for s in states if self._successors[s] <= target}
        if isinstance(formula, AF):
            # AF phi == not EG not phi
            return states - self._greatest_fixpoint_eg(states - self.extension(formula.operand))
        if isinstance(formula, AG):
            # AG phi == not EF not phi
            return states - self._least_fixpoint_eu(
                set(states), states - self.extension(formula.operand)
            )
        if isinstance(formula, AU):
            # A[phi U psi] == not (E[!psi U (!phi & !psi)] | EG !psi)
            left = self.extension(formula.left)
            right = self.extension(formula.right)
            not_right = states - right
            bad_until = self._least_fixpoint_eu(not_right, not_right - left)
            bad_globally = self._greatest_fixpoint_eg(not_right)
            return states - (bad_until | bad_globally)
        raise FormulaError(f"cannot model check unknown formula node {formula!r}")

    def _evaluate_epistemic(self, formula):
        """Evaluate an epistemic operator whose operand may itself be a CTLK
        formula: the operand's extension is computed first and the knowledge
        relation of the system's structure is applied to it through the
        checker's pinned world-set backend (the structure's worlds are
        exactly the reachable states, so checker state-sets convert
        losslessly).  This is the scalar path; epistemic nodes reached
        through :meth:`extension` are normally resolved in batches by
        :meth:`_prefetch_epistemic` before evaluation gets here."""
        structure = self.system.structure
        backend = self.backend
        inner = backend.from_worlds(structure, self.extension(formula.operand))
        result = apply_epistemic(backend, structure, formula, inner)
        # Restrict to the checker's states: a duck-typed system may expose a
        # knowledge structure over more worlds than the checked state space.
        return backend.to_frozenset(structure, result) & self._state_set

    def _prefetch_epistemic(self, formula):
        """Resolve the uncached epistemic nodes of the formula DAG in batched
        backend calls, innermost modalities first.

        Each pass collects the epistemic nodes whose (uncached part of the)
        operand contains no further epistemic node — their operands, temporal
        or not, can be evaluated without any epistemic dispatch — groups them
        by ``(operator, agent/group)``, and applies each group through one
        ``*_many`` backend call.  Results land in the checker cache, so the
        subsequent :meth:`_evaluate` walk finds every epistemic extension
        precomputed."""
        structure = self.system.structure
        backend = self.backend
        is_cached = self._cache.__contains__
        while True:
            groups = {}
            collect_ready_epistemic(formula, is_cached, groups, {})
            if not groups:
                return
            for nodes in groups.values():
                inners = [
                    backend.from_worlds(structure, self.extension(node.operand))
                    for node in nodes
                ]
                results = apply_epistemic_many(backend, structure, nodes, inners)
                for node, result in zip(nodes, results):
                    self._cache[node] = (
                        backend.to_frozenset(structure, result) & self._state_set
                    )

    # -- fixed points -------------------------------------------------------------------

    def _pre_exists(self, target):
        """States with some successor in ``target``."""
        return {s for s in self._states if self._successors[s] & target}

    def _least_fixpoint_eu(self, hold, target):
        """Standard backward fixed point for ``E[hold U target]``."""
        result = set(target)
        frontier = list(target)
        processed = 0
        while frontier:
            processed += 1
            if _res.ACTIVE and processed % 256 == 0:
                # Deadline/cancellation checks are batched: a perf_counter
                # read per popped state would dominate this linear loop.
                bud = _res.current_budget()
                if bud is not None:
                    bud.tick("fixpoint.iter")
            state = frontier.pop()
            for predecessor in self._predecessors[state]:
                if predecessor in result:
                    continue
                if predecessor in hold or predecessor in target:
                    result.add(predecessor)
                    frontier.append(predecessor)
        if _obs.ENABLED:
            _obs.event(
                "fixpoint",
                loop="ctlk.eu",
                backend="explicit",
                iterations=processed,
                result=len(result),
            )
        return result

    def _greatest_fixpoint_eg(self, hold):
        """Greatest fixed point for ``EG hold`` by successor-count deletion.

        Each candidate state tracks how many of its successors are still in
        the candidate set; a state whose count hits zero cannot start an
        infinite ``hold`` path and is deleted, decrementing the counts of its
        predecessors inside the set.  Every edge is examined at most twice
        (once to initialise the counts, at most once on deletion), so the
        fixed point is linear in the transition relation — the previous
        implementation rescanned the whole candidate set until stable, which
        is quadratic on chain-shaped systems.
        """
        result = set(hold)
        counts = {}
        dead = []
        for state in result:
            count = sum(1 for successor in self._successors[state] if successor in result)
            counts[state] = count
            if not count:
                dead.append(state)
        deleted = 0
        while dead:
            deleted += 1
            if _res.ACTIVE and deleted % 256 == 0:
                bud = _res.current_budget()
                if bud is not None:
                    bud.tick("fixpoint.iter")
            state = dead.pop()
            result.discard(state)
            for predecessor in self._predecessors[state]:
                if predecessor in result:
                    counts[predecessor] -= 1
                    if not counts[predecessor]:
                        dead.append(predecessor)
        if _obs.ENABLED:
            _obs.event(
                "fixpoint",
                loop="ctlk.eg",
                backend="explicit",
                iterations=deleted,
                result=len(result),
            )
        return result


def check_valid(system, formula):
    """Return ``True`` iff ``formula`` holds at every initial state of the
    interpreted system."""
    return CTLKModelChecker(system).valid(formula)


def check_reachable(system, formula):
    """Return ``True`` iff some reachable state of the interpreted system
    satisfies ``formula``."""
    return CTLKModelChecker(system).reachable(formula)
