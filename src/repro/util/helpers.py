"""Small generic helpers used throughout the library.

These are deliberately dependency-free and pure; they operate on builtin
containers only.
"""

from itertools import chain, combinations, product
from types import MappingProxyType


def frozen_mapping(mapping):
    """Return a read-only view of ``mapping``.

    The view reflects the underlying dictionary, so callers should pass a
    private copy when true immutability is needed::

        >>> m = frozen_mapping({"a": 1})
        >>> m["a"]
        1
    """
    return MappingProxyType(dict(mapping))


def powerset(iterable):
    """Yield all subsets of ``iterable`` as tuples, smallest first.

    >>> list(powerset([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    items = list(iterable)
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))

def product_dicts(domains):
    """Yield every assignment (as a dict) choosing one value per key.

    ``domains`` maps keys to iterables of candidate values.  The iteration
    order of the keys is preserved so the enumeration is deterministic.

    >>> list(product_dicts({"x": [0, 1]}))
    [{'x': 0}, {'x': 1}]
    """
    keys = list(domains)
    value_lists = [list(domains[key]) for key in keys]
    for combo in product(*value_lists):
        yield dict(zip(keys, combo))


def stable_sort_key(value):
    """Return a sort key for ``value`` that equal values always share.

    Sorting heterogeneous hashable objects (local states, global states) by
    ``repr`` is unsound as a canonicalisation device: the default
    ``object.__repr__`` embeds the memory address, so two *equal* objects
    created at different times sort differently, and any signature built
    from the sorted sequence flips nondeterministically between runs (and
    between equal-but-distinct instances within one run).

    This key is structural instead: builtin scalars and containers are
    ordered by type rank and (recursively canonicalised) value, and any
    other object is keyed by its type name and value ``hash`` — equal
    objects hash equal, so they always receive the same key regardless of
    identity or ``repr``.  Distinct unequal objects of the same type can
    collide only when their hashes collide, in which case the sort merely
    leaves them in input order.

    The hash fallback is the only generically value-faithful canonical:
    keying an opaque object by its attributes instead would hand *unequal*
    keys to objects that compare equal while differing in an
    equality-irrelevant attribute, recreating the instability this key
    exists to remove.  The trade-off is that the relative order of
    *unequal* opaque objects follows their hashes, so for salted hashes
    (e.g. over strings) it is stable within a process but may differ
    across runs under different ``PYTHONHASHSEED`` values; anything that
    only needs equal collections to canonicalise identically — protocol
    signatures, fixed-point and cycle detection — is unaffected.

    >>> stable_sort_key((1, "a")) == stable_sort_key((1, "a"))
    True
    >>> sorted([2, "b", None, ()], key=stable_sort_key)
    [None, 2, 'b', ()]
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    if isinstance(value, (tuple, list)):
        return (5, tuple(stable_sort_key(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return (6, tuple(sorted(stable_sort_key(item) for item in value)))
    if isinstance(value, dict):
        return (
            7,
            tuple(
                sorted(
                    (stable_sort_key(key), stable_sort_key(val))
                    for key, val in value.items()
                )
            ),
        )
    return (8, type(value).__name__, hash(value))


def stable_unique(items):
    """Return ``items`` with duplicates removed, preserving first-seen order.

    >>> stable_unique([3, 1, 3, 2, 1])
    [3, 1, 2]
    """
    seen = set()
    result = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
