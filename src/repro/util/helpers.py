"""Small generic helpers used throughout the library.

These are deliberately dependency-free and pure; they operate on builtin
containers only.
"""

from itertools import chain, combinations, product
from types import MappingProxyType


def frozen_mapping(mapping):
    """Return a read-only view of ``mapping``.

    The view reflects the underlying dictionary, so callers should pass a
    private copy when true immutability is needed::

        >>> m = frozen_mapping({"a": 1})
        >>> m["a"]
        1
    """
    return MappingProxyType(dict(mapping))


def powerset(iterable):
    """Yield all subsets of ``iterable`` as tuples, smallest first.

    >>> list(powerset([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    items = list(iterable)
    return chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))

def product_dicts(domains):
    """Yield every assignment (as a dict) choosing one value per key.

    ``domains`` maps keys to iterables of candidate values.  The iteration
    order of the keys is preserved so the enumeration is deterministic.

    >>> list(product_dicts({"x": [0, 1]}))
    [{'x': 0}, {'x': 1}]
    """
    keys = list(domains)
    value_lists = [list(domains[key]) for key in keys]
    for combo in product(*value_lists):
        yield dict(zip(keys, combo))


def stable_unique(items):
    """Return ``items`` with duplicates removed, preserving first-seen order.

    >>> stable_unique([3, 1, 3, 2, 1])
    [3, 1, 2]
    """
    seen = set()
    result = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
