"""Shared utilities: error types and small generic helpers."""

from repro.util.errors import (
    ReproError,
    FormulaError,
    ParseError,
    ModelError,
    ProgramError,
    InterpretationError,
)
from repro.util.helpers import (
    frozen_mapping,
    powerset,
    product_dicts,
    stable_sort_key,
    stable_unique,
)

__all__ = [
    "ReproError",
    "FormulaError",
    "ParseError",
    "ModelError",
    "ProgramError",
    "InterpretationError",
    "frozen_mapping",
    "powerset",
    "product_dicts",
    "stable_sort_key",
    "stable_unique",
]
