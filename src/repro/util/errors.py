"""Exception hierarchy for the :mod:`repro` library.

All library-specific exceptions derive from :class:`ReproError` so that
callers can catch any library failure with a single ``except`` clause while
still being able to distinguish the broad failure classes below.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FormulaError(ReproError):
    """Raised when an epistemic or temporal formula is malformed or used in a
    context where it is not meaningful (e.g. an unknown agent in ``K``)."""


class ParseError(FormulaError):
    """Raised by the formula parser on syntactically invalid input.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        Character offset at which the error was detected.
    """

    def __init__(self, message, text=None, position=None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self):
        base = super().__str__()
        if self.text is not None and self.position is not None:
            pointer = " " * self.position + "^"
            return f"{base}\n  {self.text}\n  {pointer}"
        return base


class ModelError(ReproError):
    """Raised when a Kripke structure, context or interpreted system is
    inconsistent (unknown worlds, non-equivalence accessibility where one is
    required, undefined transitions, ...)."""


class EngineError(ReproError):
    """Raised by the evaluation engine on misuse of the set-backend layer
    (unknown backend name, invalid group-relation mode, ...)."""


class VariableOrderError(EngineError, ValueError):
    """Raised by the symbolic kernel when an operation would produce a
    mis-ordered diagram — a node whose children do not test strictly deeper
    levels, or a rename mapping that is not order-preserving on the support
    of its operand.

    The class derives from both :class:`EngineError` (it is an engine-layer
    failure) and :class:`ValueError` (the caller passed an invalid mapping or
    node triple), so either idiom catches it.
    """


class SpecError(ReproError):
    """Raised by the protocol-spec layer (:mod:`repro.spec`) on a malformed
    spec: a syntax error in a ``.kbp`` file, an unknown variable or agent, an
    overlapping write set, an out-of-domain constant, ...

    Attributes
    ----------
    source:
        The name of the spec (file name or protocol name), when known.
    line:
        1-based line number in the spec text, when the error is attributable
        to a line.
    """

    def __init__(self, message, source=None, line=None):
        super().__init__(message)
        self.source = source
        self.line = line

    def __str__(self):
        base = super().__str__()
        if self.source is not None and self.line is not None:
            return f"{self.source}:{self.line}: {base}"
        if self.line is not None:
            return f"line {self.line}: {base}"
        if self.source is not None:
            return f"{self.source}: {base}"
        return base


class ProgramError(ReproError):
    """Raised when a standard or knowledge-based program is malformed, e.g.
    a clause refers to an unknown agent or action."""


class InterpretationError(ReproError):
    """Raised when interpreting a knowledge-based program fails, e.g. the
    iterative interpretation is asked for a unique implementation of a
    program that has none."""


class BudgetExceededError(ReproError):
    """Raised when a computation exhausts an installed resource budget
    (:class:`repro.resilience.Budget`): wall-clock deadline, BDD node
    ceiling, fixed-point iteration ceiling, or an explicit cancellation.

    Attributes
    ----------
    reason:
        Which limit fired: ``"deadline"``, ``"nodes"``, ``"iterations"``
        or ``"cancelled"``.
    site:
        The safe-point name at which the check fired — the same dotted
        vocabulary the obs layer uses for its hook points
        (``"construct.round"``, ``"fixpoint.iter"``, ``"bdd.unique_growth"``,
        ``"evaluator.batch"``, ``"synthesis.candidate"``, ...).
    diagnostics:
        A plain dict of structured facts about the budget state at the
        moment of the raise (elapsed seconds, node counts, limits, the
        mitigation steps already tried).
    partial:
        The partial result the interrupted loop had accumulated — a
        :class:`repro.resilience.PartialProgress` when the loop provides
        one, else ``None``.  Loops that accept a ``resume=`` argument can
        continue from it instead of starting over.
    """

    def __init__(self, message, *, reason=None, site=None, diagnostics=None, partial=None):
        super().__init__(message)
        self.reason = reason
        self.site = site
        self.diagnostics = dict(diagnostics) if diagnostics else {}
        self.partial = partial

    def attach_partial(self, partial):
        """Attach ``partial`` (kept only if none is recorded yet) and return
        ``self`` — the idiom loops use to decorate a kernel-level raise with
        their own progress snapshot while re-raising it."""
        if self.partial is None:
            self.partial = partial
        return self


class IterationLimitError(BudgetExceededError, InterpretationError):
    """Raised when an interpretation loop exhausts its ``max_rounds`` /
    ``max_iterations`` ceiling without stabilising.

    Derives from both :class:`BudgetExceededError` (it is a resource
    exhaustion and carries the partial progress) and
    :class:`InterpretationError` (the historical class of these raises, so
    existing ``except InterpretationError`` callers keep working).
    """
