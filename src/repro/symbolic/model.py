"""Enumeration-free symbolic models of variable contexts.

This is the upper half of the direct-compilation pipeline
(:mod:`repro.symbolic.compile` is the lower half): a
:class:`SymbolicContextModel` takes the *same ingredients* as
:func:`repro.systems.variable_context.variable_context` — state space,
per-agent observables, named :class:`~repro.modeling.state_space.Assignment`
effects, an initial-state constraint, environment effects, an optional
global constraint — and compiles them to BDDs without ever materialising a
single state:

* the **initial set** and **global constraint** compile through the
  expression compiler (:meth:`VariableEncoding.truth_node`);
* per-agent **observational equivalence** is the conjunction
  ``⋀ (obs = obs')`` of per-variable equality BDDs over the agent's
  observable variables;
* the **transition relation** is assembled from per-variable update
  functions of the named effects: for each participant (environment or
  agent) and each of its actions, the compiled relation constrains exactly
  the participant's written variables (``v' = e(x)`` through the value-range
  case split of ``e``) and frames the rest of the participant's write set;
  variables no participant writes are framed globally.  Write sets of
  distinct participants must be disjoint — the symbolic path rejects
  potentially conflicting writes at compile time, where the explicit
  transition function reports them state by state.

On top of the model sit three small adapters that plug the compiled BDDs
into the *existing* evaluation machinery:

:class:`SymbolicStructure`
    A duck-typed epistemic structure over a world set given as a BDD.  Its
    ``engine_cache`` is pre-seeded with a :class:`StateSetEncoding`, an
    implementation of the encoding protocol of
    :mod:`repro.symbolic.encode`, so the unmodified ``"bdd"``
    :class:`~repro.symbolic.backend_bdd.SymbolicBackend` and
    :class:`~repro.engine.evaluator.Evaluator` operate on it directly —
    modal operators, batching, fixed points and all.  The
    :class:`~repro.modeling.state_space.State`-level conversions
    (``from_worlds``/``to_frozenset``/``contains``) exist only at the API
    boundary and are lazy: nothing enumerates unless explicitly asked to.

:class:`SymbolicStateSetView`
    The enumeration-free analogue of
    :class:`repro.interpretation.functional.StateSetView`: a set of states
    assumed reachable, with knowledge evaluated over them.  It routes
    :func:`repro.interpretation.functional.guard_table` to a
    :class:`SymbolicGuardTable`.

:class:`SymbolicGuardTable`
    Decides program guards per *local-state class* without touching
    individual states: a local guard's extension is a union of observation
    classes, so projecting the extension (and its complement) onto the
    agent's observable variables yields the classes where the guard is
    true (false) in one quantification each — the per-class loop of the
    explicit table becomes two BDD operations per guard.

The round-based interpretation loop living on top of these is
:func:`repro.interpretation.symbolic.construct_by_rounds_symbolic`.
"""

import os

from repro.engine import evaluator_for
from repro.interpretation.functional import GuardTable
from repro.modeling.expressions import Expression
from repro.modeling.state_space import Assignment, State, StateSpace, atom_name
from repro.obs.registry import attach_aliases
from repro.symbolic.bdd import FALSE, TRUE
from repro.symbolic.compile import VariableEncoding
from repro.systems.actions import NOOP_NAME
from repro.systems.variable_context import _normalise_actions, _resolve_variable_names
from repro.util.errors import InterpretationError, ModelError, ProgramError

__all__ = [
    "SymbolicContextModel",
    "SymbolicStructure",
    "SymbolicStateSetView",
    "SymbolicGuardTable",
    "compile_context",
]


class SymbolicContextModel:
    """A variable context compiled to BDDs, never enumerating states.

    Accepts the same arguments as
    :func:`repro.systems.variable_context.variable_context`; the Python-
    function escape hatches of the explicit path (custom environment
    protocols, admissibility predicates, extra label functions) cannot be
    compiled and are rejected.  Instances satisfy the small slice of the
    :class:`repro.systems.context.Context` interface the interpretation
    layer consults (``agents``, ``agent_actions``, ``local_state``,
    ``name``), so programs validate against a model with the usual
    ``program.check_against_context(model)``.
    """

    #: Dispatch marker for :func:`repro.interpretation.iteration.construct_by_rounds`.
    is_symbolic_model = True

    def __init__(
        self,
        name,
        state_space,
        observables,
        actions,
        initial,
        env_effects=None,
        env_protocol=None,
        global_constraint=None,
        admissibility=None,
        extra_labels=None,
        cache_ceiling=None,
        variable_order=None,
        reorder=None,
    ):
        if not isinstance(state_space, StateSpace):
            raise ModelError("state_space must be a StateSpace instance")
        if env_protocol is not None:
            raise ModelError(
                "the symbolic path supports only the default environment "
                "protocol (every environment action offered everywhere)"
            )
        if admissibility is not None:
            raise ModelError("the symbolic path does not support admissibility predicates")
        if extra_labels is not None:
            raise ModelError("the symbolic path does not support extra label functions")

        self.name = name
        self.state_space = state_space
        # The raw (pre-compilation) ingredients, kept so the model can be
        # rebuilt as an explicit context when the universe is enumerable —
        # the last rung of the resilience fallback ladder.
        self._raw_initial = initial
        self._raw_global_constraint = global_constraint
        self.encoding = VariableEncoding(
            state_space, cache_ceiling=cache_ceiling, variable_order=variable_order
        )
        bdd = self.encoding.bdd

        self.agents = tuple(observables)
        if not self.agents:
            raise ModelError("a context needs at least one agent")
        self.observables = {
            agent: _resolve_variable_names(state_space, names)
            for agent, names in observables.items()
        }
        self.actions = _normalise_actions(actions)
        for agent in self.agents:
            if agent not in self.actions:
                self.actions[agent] = _normalise_actions({agent: {}})[agent]
        self.env_effects = {
            env_name: (effect if isinstance(effect, Assignment) else Assignment(effect))
            for env_name, effect in dict(env_effects or {}).items()
        }
        if not self.env_effects:
            self.env_effects = {None: Assignment({})}

        # Valid states: valid codes, restricted by the global constraint.
        self.domain = self.encoding.domain_node()
        if global_constraint is not None:
            self.domain = bdd.and_(self.domain, self.encoding.truth_node(global_constraint))
        self.domain_primed = self.encoding.prime(self.domain)

        # Initial set: compiled constraint, or explicit state cubes.
        if isinstance(initial, Expression):
            self.initial = bdd.and_(self.encoding.truth_node(initial), self.domain)
        else:
            self.initial = FALSE
            for state in initial:
                self.initial = bdd.or_(self.initial, self.encoding.state_node(state))
            if bdd.diff(self.initial, self.domain) != FALSE:
                raise ModelError("an initial state violates the global constraint")
        if self.initial == FALSE:
            raise ModelError("no initial states satisfy the initial condition")

        # Labelling: the canonical atom of every variable/value pair.
        self._atoms = {}
        for variable in state_space.variables:
            if variable.is_boolean:
                self._atoms[variable.name] = (variable.name, True)
            else:
                for value in variable.domain:
                    self._atoms[atom_name(variable, value)] = (variable.name, value)

        self._compile_transitions()
        self._obs_equivalence = {}
        self._non_obs_levels = {}
        self._views = {}

        # Dynamic reordering opt-in: the declared ``variable_order`` becomes a
        # hint and the kernel sifts itself when the unique table outgrows its
        # trigger.  ``reorder=None`` defers to the ``REPRO_BDD_REORDER``
        # environment variable (value ``"sift"``).
        if reorder is None:
            reorder = os.environ.get("REPRO_BDD_REORDER", "") == "sift"
        if reorder:
            self.encoding.enable_reordering()

    # -- transition compilation --------------------------------------------------------

    def _compile_transitions(self):
        """Build the per-participant effect relations and the global frame.

        Each participant's relation constrains only its own write set;
        disjointness of the write sets (checked here) makes the conjunction
        over participants the joint transition relation.
        """
        bdd = self.encoding.bdd
        participants = [("env", {name: effect for name, effect in self.env_effects.items()})]
        participants += [
            (agent, {name: action.effect for name, action in self.actions[agent].items()})
            for agent in self.agents
        ]
        space_names = {variable.name for variable in self.state_space.variables}
        write_sets = {}
        for who, effects in participants:
            writes = set()
            for effect in effects.values():
                writes |= effect.written_variables()
            unknown = writes - space_names
            if unknown:
                raise ModelError(
                    f"effects of {who!r} write unknown variables {sorted(unknown)}"
                )
            for other, other_writes in write_sets.items():
                clash = writes & other_writes
                if clash:
                    raise ModelError(
                        f"the symbolic path requires disjoint write sets: "
                        f"{who!r} and {other!r} both write {sorted(clash)}"
                    )
            write_sets[who] = writes

        def effect_relation(effect, writes):
            relation = TRUE
            illegal = FALSE
            for name in sorted(writes):
                if name in effect.updates:
                    update, bad = self._update_node(name, effect.updates[name])
                    relation = bdd.and_(relation, update)
                    illegal = bdd.or_(illegal, bad)
                else:
                    relation = bdd.and_(relation, self.encoding.equality_node(name))
            return relation, illegal

        self._agent_effects = {}
        for agent in self.agents:
            writes = write_sets[agent]
            table = {}
            for action_name, action in self.actions[agent].items():
                table[action_name] = effect_relation(action.effect, writes)
            self._agent_effects[agent] = table

        env_relation = FALSE
        self._env_illegal = []
        for env_name, effect in self.env_effects.items():
            relation, illegal = effect_relation(effect, write_sets["env"])
            env_relation = bdd.or_(env_relation, relation)
            if illegal != FALSE:
                self._env_illegal.append((env_name, illegal))
        self._env_relation = env_relation

        frame = TRUE
        untouched = space_names - set().union(*write_sets.values())
        for name in sorted(untouched, reverse=True):
            frame = bdd.and_(self.encoding.equality_node(name), frame)
        self._frame = frame

    def _update_node(self, name, expression):
        """The relation ``name' = expression(x)`` via the value-range case
        split, plus the set of states where the update is *ill-defined* —
        the computed value falls outside the variable's domain, or the
        evaluation itself raises (the ``EVALUATION_ERROR`` region of the
        case split, which is never in any domain).  The ill-defined set is
        checked against each round's sources, as the explicit transition
        function checks per evaluated state."""
        bdd = self.encoding.bdd
        variable = self.state_space.variable(name)
        relation = FALSE
        illegal = FALSE
        for value, guard in self.encoding.values_map(expression).items():
            if variable.contains(value):
                relation = bdd.or_(
                    relation,
                    bdd.and_(guard, self.encoding.value_node(name, value, primed=True)),
                )
            else:
                illegal = bdd.or_(illegal, guard)
        return relation, illegal

    # -- context interface -------------------------------------------------------------

    def agent_actions(self, agent):
        """The tuple of action names available to ``agent``."""
        try:
            return tuple(self.actions[agent])
        except KeyError:
            raise ModelError(f"unknown agent {agent!r}") from None

    def local_state(self, agent, state):
        """The agent's local state of a concrete state (the restriction of
        the assignment to the agent's observable variables)."""
        if agent not in self.actions:
            raise ModelError(f"unknown agent {agent!r}")
        return state.restrict(self.observables[agent])

    def local_states_of(self, agent, states):
        """The set of local states of ``agent`` over concrete states."""
        return {self.local_state(agent, state) for state in states}

    # -- compiled relations ------------------------------------------------------------

    def obs_equivalence(self, agent):
        """The observational-equivalence relation BDD of ``agent`` over the
        *full* code space: ``⋀ (v = v')`` for the agent's observables.
        (Views conjoin their state set on both sides.)"""
        cached = self._obs_equivalence.get(agent)
        if cached is None:
            if agent not in self.observables:
                raise ModelError(f"unknown agent {agent!r}")
            bdd = self.encoding.bdd
            cached = TRUE
            for name in reversed(self.observables[agent]):
                cached = bdd.and_(self.encoding.equality_node(name), cached)
            self._obs_equivalence[agent] = cached
        return cached

    def non_observable_levels(self, agent):
        """The current-variable levels of the variables ``agent`` does not
        observe (the quantification set of local-state projections)."""
        cached = self._non_obs_levels.get(agent)
        if cached is None:
            observed = set(self.observables[agent])
            levels = []
            for variable in self.state_space.variables:
                if variable.name not in observed:
                    levels.extend(self.encoding.variable_levels(variable.name))
            cached = tuple(levels)
            self._non_obs_levels[agent] = cached
        return cached

    def atom_node(self, name):
        """The (unrestricted) extension BDD of a labelling atom; ``FALSE``
        for names outside the variable labelling, matching the explicit
        backends' empty extension for unknown propositions."""
        pair = self._atoms.get(name)
        if pair is None:
            return FALSE
        variable_name, value = pair
        return self.encoding.value_node(variable_name, value)

    def explicit_context(self):
        """Rebuild this model as an explicit (enumerating)
        :class:`repro.systems.context.Context` from the same ingredients —
        the inverse of :func:`compile_context`.

        Only meaningful when the state space is small enough to enumerate;
        :func:`repro.interpretation.iteration.construct_by_rounds` uses it
        as the final mitigation rung when a symbolic construction exhausts
        its BDD node budget on an enumerable universe.
        """
        from repro.systems.variable_context import variable_context

        return variable_context(
            self.name,
            self.state_space,
            self.observables,
            self.actions,
            self._raw_initial,
            env_effects=self.env_effects,
            global_constraint=self._raw_global_constraint,
        )

    # -- dynamic reordering ------------------------------------------------------------

    def reorder_roots(self):
        """Every node the model and its memoised satellites (views, their
        evaluators, their guard tables) hold a reference to.  A reorder
        invalidates unreachable nodes (see :meth:`repro.symbolic.bdd.BDD.reorder`),
        so this set must cover every node a cached object may hand out
        again; it also steers the sift's live-size metric towards the
        diagrams that actually matter."""
        roots = list(self.encoding.reorder_roots())
        roots += (self.domain, self.domain_primed, self.initial, self._frame)
        roots.append(self._env_relation)
        roots += (illegal for _, illegal in self._env_illegal)
        for table in self._agent_effects.values():
            for relation, illegal in table.values():
                roots.append(relation)
                roots.append(illegal)
        roots += self._obs_equivalence.values()
        for states_node, view in self._views.items():
            roots.append(states_node)
            encoding = view.structure.encoding
            roots.append(encoding.domain_primed)
            roots += encoding._relations.values()
            for entry in view.structure.engine_cache.values():
                cache = getattr(entry, "cache", None)
                if isinstance(cache, dict):  # an Evaluator's formula memo
                    for world_set in cache.values():
                        node = getattr(world_set, "node", None)
                        if node is not None:
                            roots.append(node)
            for table in getattr(view, "_guard_tables", {}).values():
                for true_classes, false_classes in table._class_values.values():
                    roots.append(true_classes)
                    roots.append(false_classes)
        return roots

    def maybe_reorder(self, extra=None):
        """Safe point: run a pending growth-triggered sift, if any.  Called
        between (never inside) BDD operations by the transition engine and
        the symbolic fixed-point loops; returns ``True`` if a reorder ran.

        With ``extra=None`` the sift is pessimistic (``roots=None``: every
        node stays valid, only sift transients are collected) — the safe
        default when callers up the stack may hold nodes of their own.  A
        caller that can enumerate *everything* it holds passes those nodes
        as ``extra``; together with :meth:`reorder_roots` they then form the
        complete live set and unreachable junk is collected too."""
        bdd = self.encoding.bdd
        if not bdd.reorder_pending:
            return False
        if extra is None:
            return bdd.maybe_reorder(None)
        return bdd.maybe_reorder(self.reorder_roots() + list(extra))

    # -- transitions -------------------------------------------------------------------

    def successors(self, frontier, selection):
        """The successor set of ``frontier`` under the (partial) protocol
        ``selection`` — per agent, a map ``action -> class BDD`` over the
        agent's observable variables.

        Every frontier state must have at least one selected action per
        agent; effects whose computed value leaves a variable's domain and
        transitions into states violating the global constraint raise
        :class:`ModelError`, mirroring the explicit transition function.
        """
        self.maybe_reorder()
        bdd = self.encoding.bdd
        for env_name, illegal in self._env_illegal:
            if bdd.and_(frontier, illegal) != FALSE:
                raise ModelError(
                    f"environment effect {env_name!r} leaves a variable's domain "
                    f"or fails to evaluate at a reachable state"
                )
        relation = bdd.and_(self._frame, self._env_relation)
        for agent in self.agents:
            effects = self._agent_effects[agent]
            choice = FALSE
            covered = FALSE
            for action_name, classes in selection.get(agent, {}).items():
                if classes == FALSE:
                    continue
                entry = effects.get(action_name)
                if entry is None:
                    raise ProgramError(f"agent {agent!r} has no action {action_name!r}")
                effect_relation, illegal = entry
                if illegal != FALSE and bdd.and_(bdd.and_(classes, frontier), illegal) != FALSE:
                    raise ModelError(
                        f"effect of action {action_name!r} of agent {agent!r} "
                        f"leaves a variable's domain or fails to evaluate"
                    )
                choice = bdd.or_(choice, bdd.and_(classes, effect_relation))
                covered = bdd.or_(covered, classes)
            if bdd.diff(frontier, covered) != FALSE:
                raise ProgramError(
                    f"no action selected for agent {agent!r} at some frontier state"
                )
            relation = bdd.and_(relation, choice)
        image = bdd.and_exists(relation, frontier, self.encoding.current_levels)
        targets = self.encoding.unprime(image)
        if bdd.diff(targets, self.domain) != FALSE:
            raise ModelError(
                "a transition target violates the global constraint "
                f"(context {self.name!r})"
            )
        return targets

    # -- structures and views ----------------------------------------------------------

    def structure(self, states_node):
        """A :class:`SymbolicStructure` over the given world-set BDD."""
        return SymbolicStructure(self, states_node)

    def view(self, states_node):
        """The (memoised) :class:`SymbolicStateSetView` of a world-set BDD.

        Canonicity makes the node id a perfect memo key: the same state set
        always returns the same view, so its evaluator and guard tables are
        shared — consecutive construction rounds that discover nothing new
        (and the a-posteriori verification pass) reuse all cached guard
        extensions.
        """
        view = self._views.get(states_node)
        if view is None:
            view = SymbolicStateSetView(self, states_node)
            self._views[states_node] = view
        return view

    def initial_view(self):
        """The view of the initial states."""
        return self.view(self.initial)

    def __repr__(self):
        return (
            f"SymbolicContextModel({self.name!r}, agents={list(self.agents)}, "
            f"|space|={self.state_space.size()}, bits={self.encoding.total_bits})"
        )


class StateSetEncoding:
    """The encoding protocol of :mod:`repro.symbolic.encode`, realised by a
    model and a world-set BDD instead of a world list.

    ``domain`` is the state set itself — complements, box operators and
    empty-group conventions are automatically relative to the view's states,
    exactly as the explicit backends are relative to a structure's worlds.
    Relations conjoin the state set on both sides of the agent's
    observational equivalence, matching
    :func:`repro.kripke.builders.structure_from_local_states`.
    """

    def __init__(self, model, states_node):
        self.model = model
        self.base = model.encoding
        self.bdd = self.base.bdd
        self.bits = self.base.total_bits
        self.current_levels = self.base.current_levels
        self.primed_levels = self.base.primed_levels
        self.domain = states_node
        self.domain_primed = self.base.prime(states_node)
        self._relations = {}

    # -- current <-> primed ------------------------------------------------------------

    def prime(self, node):
        return self.base.prime(node)

    def unprime(self, node):
        return self.base.unprime(node)

    # -- boundary protocol (State-level conversions, lazy) -----------------------------

    def worlds_node(self, worlds):
        node = FALSE
        for state in worlds:
            node = self.bdd.or_(node, self.base.state_node(state))
        if self.bdd.diff(node, self.domain) != FALSE:
            raise ModelError("a world does not belong to the structure")
        return node

    def node_worlds(self, node):
        return frozenset(self.base.iter_states(node))

    def node_contains(self, node, world):
        return self.base.evaluate_node(node, world)

    def prop_node(self, name):
        return self.bdd.and_(self.model.atom_node(name), self.domain)

    def count(self, node):
        return self.base.count(node)

    # -- relations ---------------------------------------------------------------------

    def agent_relation(self, agent):
        relation = self._relations.get(agent)
        if relation is None:
            # Conjoin the equality constraint *before* the primed copy of the
            # state set: ``obs_eq ∧ S`` keeps the two variable copies
            # correlated (near-linear in the size of ``S``), whereas
            # ``S ∧ S'`` first would materialise an uncorrelated product of
            # the set with itself.
            relation = self.bdd.and_(self.model.obs_equivalence(agent), self.domain)
            relation = self.bdd.and_(relation, self.domain_primed)
            self._relations[agent] = relation
        return relation

    def group_relation(self, group, mode):
        key = (frozenset(group), mode)
        relation = self._relations.get(key)
        if relation is None:
            members = [self.agent_relation(agent) for agent in group]
            if mode == "union":
                relation = FALSE
                for member in members:
                    relation = self.bdd.or_(relation, member)
            elif mode == "intersection":
                if not members:
                    relation = self.bdd.and_(self.domain, self.domain_primed)
                else:
                    relation = members[0]
                    for member in members[1:]:
                        relation = self.bdd.and_(relation, member)
            else:
                from repro.util.errors import EngineError

                raise EngineError(f"unknown group relation mode {mode!r}")
            self._relations[key] = relation
        return relation

    # -- observability -----------------------------------------------------------------

    def clear_operation_caches(self):
        self.bdd.clear_operation_caches()

    def cache_info(self):
        info = self.base.cache_info()
        info["memo.relations"] = len(self._relations)
        return attach_aliases(info, {"memo.relations": "relations"})


class SymbolicStructure:
    """A duck-typed epistemic structure whose world set is a BDD.

    Carries exactly what the ``"bdd"`` backend and the evaluator consult:
    ``engine_cache`` (pre-seeded with the :class:`StateSetEncoding`),
    ``agents``, and membership of :class:`State` objects.  Worlds are never
    enumerated unless a caller crosses the frozenset boundary explicitly.
    """

    def __init__(self, model, states_node):
        self.model = model
        self.states_node = states_node
        self.agents = model.agents
        self.engine_cache = {"bdd_encoding": StateSetEncoding(model, states_node)}

    @property
    def encoding(self):
        return self.engine_cache["bdd_encoding"]

    def __contains__(self, world):
        if not isinstance(world, State):
            return False
        try:
            return self.encoding.node_contains(self.states_node, world)
        except ModelError:
            return False

    def state_count(self):
        """The number of worlds (cheap: a memoised BDD count)."""
        return self.model.encoding.count(self.states_node)

    def iter_states(self):
        """Enumerate the worlds as :class:`State` objects (the boundary)."""
        return self.model.encoding.iter_states(self.states_node)

    def __repr__(self):
        return (
            f"SymbolicStructure({self.model.name!r}, |W|={self.state_count()}, "
            f"node={self.states_node})"
        )


class SymbolicStateSetView:
    """A hypothetical system over a symbolic state set.

    The enumeration-free counterpart of
    :class:`repro.interpretation.functional.StateSetView`: same knowledge
    interface, but states, witness classes and guard decisions are BDDs.
    Obtain instances through :meth:`SymbolicContextModel.view` (memoised by
    state-set node).
    """

    #: Dispatch marker for
    #: :func:`repro.interpretation.functional.derive_protocol`: views (and
    #: systems) carrying it are derived through
    #: :func:`repro.interpretation.symbolic.derive_protocol_symbolic` —
    #: per-class ``enabled_sets`` decisions instead of a per-local-state
    #: tabulation loop.
    is_symbolic_view = True

    def __init__(self, model, states_node):
        if states_node == FALSE:
            raise ModelError("a state-set view needs at least one state")
        self.model = model
        self.context = model
        self.states_node = states_node
        self.structure = SymbolicStructure(model, states_node)

    @property
    def agents(self):
        return self.model.agents

    @property
    def evaluator(self):
        """The persistent evaluator over the view's structure — always the
        ``"bdd"`` backend: the explicit backends would have to enumerate."""
        return evaluator_for(self.structure, "bdd")

    def extension_node(self, formula):
        """The extension of ``formula`` as a world-set BDD (no enumeration)."""
        return self.evaluator.extension_ws(formula).node

    def extension(self, formula):
        """The extension as a frozenset of states (the enumerating boundary)."""
        return self.evaluator.extension(formula)

    def holds(self, state, formula):
        return self.evaluator.holds(state, formula)

    def project(self, agent, node):
        """Project a state-set BDD onto ``agent``'s observable variables:
        the BDD of the agent's local-state classes meeting the set."""
        levels = self.model.non_observable_levels(agent)
        if not levels:
            return node
        return self.model.encoding.bdd.exists(node, levels)

    def state_count(self):
        return self.structure.state_count()

    def iter_states(self):
        return self.structure.iter_states()

    def local_states(self, agent):
        """The local states of ``agent`` occurring in the view, as the same
        sorted ``(name, value)`` tuples the explicit path produces.
        Enumerates the agent's classes — meant for small views (tests,
        protocol materialisation), not for the construction loop."""
        node = self.project(agent, self.states_node)
        names = self.model.observables[agent]
        return {
            tuple(sorted(assignment.items()))
            for assignment in self.model.encoding.iter_assignments(node, names)
        }

    def states_with_local_state(self, agent, local_state):
        """The states of the view carrying the given local state (explicit
        frozenset — boundary API for compatibility with the scalar path)."""
        cube = self.model.encoding.cube_node(local_state)
        node = self.model.encoding.bdd.and_(cube, self.states_node)
        return frozenset(self.model.encoding.iter_states(node))

    def make_guard_table(self, program):
        """Hook for :func:`repro.interpretation.functional.guard_table`."""
        return SymbolicGuardTable(self, program)

    def __repr__(self):
        return f"SymbolicStateSetView({self.model.name!r}, |S|={self.state_count()})"


class SymbolicGuardTable(GuardTable):
    """A guard table whose uniformity decisions are BDD projections.

    Point queries (``value``/``holds``/``enabled_actions``) work on single
    local states like the base class, but against witness *cubes* instead of
    witness frozensets; :meth:`class_values` and :meth:`enabled_sets` decide
    a guard (a whole agent program) on *every* local-state class of a set at
    once — the primitive the symbolic round construction is built from.
    """

    def __init__(self, view, program):
        super().__init__(view, program)
        self._class_values = {}

    # -- per-class decisions (sets of classes at once) ---------------------------------

    def class_values(self, agent, guard):
        """Split the agent's local-state classes by the guard's value:
        returns ``(true_classes, false_classes)`` as BDDs over the agent's
        observable variables — the classes where the guard holds at *some*
        state, and those where it fails at *some* state.

        On a local guard the two projections partition the occupied
        classes; an overlapping class carries both guard values (the guard
        is not local there).  Locality enforcement is the caller's business
        (:meth:`enabled_sets` restricts it to the classes actually being
        decided, like the explicit path, which only ever checks the local
        states it is asked about)."""
        key = (agent, guard)
        cached = self._class_values.get(key)
        if cached is not None:
            return cached
        view = self.view
        bdd = view.model.encoding.bdd
        extension = self._guard_extension(guard).node
        true_classes = view.project(agent, extension)
        false_classes = view.project(agent, bdd.diff(view.states_node, extension))
        cached = (true_classes, false_classes)
        self._class_values[key] = cached
        return cached

    def enabled_sets(self, agent, classes_node, require_local=True):
        """The clause selection of ``agent`` on every class of
        ``classes_node`` at once: a map ``action -> class BDD`` assigning to
        each class the actions of its enabled clauses (the fallback action
        on classes where no clause is enabled).

        Non-locality of a guard *on one of the queried classes* raises
        :class:`InterpretationError` under ``require_local``; with the flag
        off such classes read the guard existentially (they count as
        enabled), matching
        :func:`repro.interpretation.functional.guard_holds_at_local`.
        Classes outside ``classes_node`` never influence the outcome — a
        guard may freely be non-local on classes decided (and frozen) in
        earlier rounds."""
        bdd = self.view.model.encoding.bdd
        try:
            agent_program = self.program.program(agent)
        except ProgramError:  # agent without a program idles
            return {NOOP_NAME: classes_node}
        selection = {}
        none_enabled = classes_node
        for clause in agent_program.clauses:
            true_classes, false_classes = self.class_values(agent, clause.guard)
            if require_local:
                overlap = bdd.and_(bdd.and_(true_classes, false_classes), classes_node)
                if overlap != FALSE:
                    raise InterpretationError(
                        f"guard {clause.guard} of agent {agent!r} is not local: its "
                        f"value differs on indistinguishable states"
                    )
            enabled = bdd.and_(true_classes, classes_node)
            if enabled != FALSE:
                selection[clause.action] = bdd.or_(
                    selection.get(clause.action, FALSE), enabled
                )
            none_enabled = bdd.diff(none_enabled, true_classes)
        if none_enabled != FALSE:
            if agent_program.fallback is None:
                raise InterpretationError(
                    f"no clause of agent {agent!r} is enabled at some local state "
                    f"and the program has no fallback action"
                )
            selection[agent_program.fallback] = bdd.or_(
                selection.get(agent_program.fallback, FALSE), none_enabled
            )
        return selection

    # -- per-local-state decisions (base-class API) ------------------------------------

    def value(self, agent, local_state, guard):
        key = (agent, local_state, guard)
        try:
            return self._values[key]
        except KeyError:
            pass
        view = self.view
        encoding = view.model.encoding
        bdd = encoding.bdd
        witnesses = bdd.and_(encoding.cube_node(local_state), view.states_node)
        if witnesses == FALSE:
            raise InterpretationError(
                f"no state in the view has local state {local_state!r} for agent {agent!r}"
            )
        extension = self._guard_extension(guard).node
        if bdd.diff(witnesses, extension) == FALSE:
            value = True
        elif bdd.and_(witnesses, extension) == FALSE:
            value = False
        else:
            value = None
        self._values[key] = value
        return value


def compile_context(context):
    """Compile an explicit :class:`~repro.systems.context.Context` built by
    :func:`~repro.systems.variable_context.variable_context` into a
    :class:`SymbolicContextModel`, from the raw ingredients recorded on its
    ``spec``.  (For contexts too large to *build* explicitly, construct the
    model directly from the same parts instead.)"""
    spec = getattr(context, "spec", None)
    if spec is None:
        raise ModelError(
            "compile_context needs a context built by variable_context "
            "(carrying a VariableContextSpec)"
        )
    initial = spec.initial_condition
    if initial is None:
        initial = spec.initial_states
    return SymbolicContextModel(
        context.name,
        spec.state_space,
        spec.observables,
        spec.actions,
        initial,
        env_effects=spec.env_effects,
        env_protocol=spec.env_protocol,
        global_constraint=spec.global_constraint,
        admissibility=spec.admissibility,
        extra_labels=spec.extra_labels,
    )
