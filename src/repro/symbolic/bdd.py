"""A self-contained pure-Python ROBDD kernel.

A :class:`BDD` manager owns a universe of boolean variables identified by
*levels* ``0 .. num_vars - 1`` (level 0 is tested first on every path) and
represents boolean functions over them as reduced ordered binary decision
diagrams.  Nodes are hash-consed through a unique table, so two structurally
equal functions are always the *same* integer node id — equality, tautology
and unsatisfiability checks are id comparisons, which is what the symbolic
world-set backend's fixed points rely on.

The kernel provides:

* the Shannon operator :meth:`BDD.ite` (if-then-else), memoised, from which
  all binary connectives (:meth:`and_`, :meth:`or_`, :meth:`xor`,
  :meth:`implies`, :meth:`iff`, :meth:`diff`) and negation (:meth:`not_`)
  derive;
* cofactor :meth:`restrict` and existential/universal quantification
  (:meth:`exists`, :meth:`forall`) over arbitrary level sets;
* order-preserving variable renaming (:meth:`rename`) — the
  unprimed ↔ primed swap of the relational encodings;
* the combined relational product :meth:`and_exists`
  (``exists L. f & g`` in one pass, the workhorse of image computation);
* satisfying-assignment counting (:meth:`sat_count`) and path enumeration
  (:meth:`sat_all`) over the fixed variable order, plus point evaluation
  (:meth:`evaluate`).

Everything is plain Python — no third-party dependency — so the ``"bdd"``
world-set backend built on top of this module is always available, unlike
the NumPy-gated ``"matrix"`` backend.

Complement edges are deliberately omitted: negation is a memoised ``ite``
against the terminals, which keeps node identity simple (one id per
function, not per function-up-to-polarity) at the cost of some sharing.

Two memoisation layers exist and are observable through
:meth:`cache_info`: the *unique table* (structural identity of nodes; never
cleared, node ids stay valid for the manager's lifetime) and the *operation
caches* (``ite`` and quantify/rename/count memos), which
:meth:`clear_operation_caches` drops without invalidating any node id —
that is the "boundable" half a long-lived evaluator can safely release.

The operation caches are additionally *bounded*: each is capped at
``cache_ceiling`` entries (:data:`DEFAULT_CACHE_CEILING` unless overridden
at construction) and cleared when it overflows, so long-running loops —
hundreds of rounds of symbolic KBP construction against one shared manager
— cannot grow the memo tables without bound.  Overflows only cost
recomputation, never correctness, and are observable: :meth:`cache_info`
reports the high-water mark of each cache and the number of
overflow-triggered clears.
"""

from repro.util.errors import EngineError

FALSE = 0
TRUE = 1

DEFAULT_CACHE_CEILING = 1 << 20
"""Default per-cache entry ceiling of a manager's operation caches."""


class BDD:
    """A manager for ROBDDs over a fixed number of ordered variables.

    Node ids are small integers private to one manager; the terminals are
    ``FALSE == 0`` and ``TRUE == 1``.  All operations are memoised in the
    manager, so repeated subcomputations — within one call or across a whole
    batch of calls — are paid for once.
    """

    __slots__ = (
        "num_vars",
        "cache_ceiling",
        "_level",
        "_low",
        "_high",
        "_unique",
        "_ite_cache",
        "_op_cache",
        "_ite_high_water",
        "_op_high_water",
        "_cache_clears",
    )

    def __init__(self, num_vars, cache_ceiling=DEFAULT_CACHE_CEILING):
        if num_vars < 0:
            raise EngineError("a BDD manager needs a non-negative variable count")
        if cache_ceiling is not None and cache_ceiling < 1:
            raise EngineError("cache_ceiling must be a positive entry count or None")
        self.num_vars = num_vars
        self.cache_ceiling = cache_ceiling
        # Terminals live below every variable: their level is ``num_vars``.
        self._level = [num_vars, num_vars]
        self._low = [-1, -1]
        self._high = [-1, -1]
        self._unique = {}
        self._ite_cache = {}
        self._op_cache = {}
        self._ite_high_water = 0
        self._op_high_water = 0
        self._cache_clears = 0

    def _bound_ite_cache(self):
        """Clear the ``ite`` memo when it overflows its ceiling (clearing
        only forces recomputation; no node id is invalidated)."""
        if self.cache_ceiling is not None and len(self._ite_cache) >= self.cache_ceiling:
            self._ite_high_water = max(self._ite_high_water, len(self._ite_cache))
            self._ite_cache.clear()
            self._cache_clears += 1

    def _bound_op_cache(self):
        """Clear the quantify/rename/count memo when it overflows."""
        if self.cache_ceiling is not None and len(self._op_cache) >= self.cache_ceiling:
            self._op_high_water = max(self._op_high_water, len(self._op_cache))
            self._op_cache.clear()
            self._cache_clears += 1

    # -- node primitives ---------------------------------------------------------

    def _node(self, level, low, high):
        """Return the (hash-consed) node ``(level, low, high)``; reduced —
        a node whose branches coincide is its branch.

        The order invariant (children test strictly deeper levels) is
        enforced here rather than assumed: a violation silently corrupts
        every diagram sharing the node, so it must be impossible."""
        if low == high:
            return low
        if self._level[low] <= level or self._level[high] <= level:
            raise EngineError(
                f"variable-order violation: node at level {level} over children "
                f"at levels {self._level[low]}/{self._level[high]}"
            )
        key = (level, low, high)
        found = self._unique.get(key)
        if found is None:
            found = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = found
        return found

    def var(self, level):
        """The function of the single variable at ``level``."""
        self._check_level(level)
        return self._node(level, FALSE, TRUE)

    def nvar(self, level):
        """The negation of the variable at ``level``."""
        self._check_level(level)
        return self._node(level, TRUE, FALSE)

    def _check_level(self, level):
        if not 0 <= level < self.num_vars:
            raise EngineError(
                f"variable level {level!r} out of range [0, {self.num_vars})"
            )

    def level_of(self, u):
        """The level tested at node ``u`` (``num_vars`` for the terminals)."""
        return self._level[u]

    def low(self, u):
        """The else-branch of node ``u``."""
        return self._low[u]

    def high(self, u):
        """The then-branch of node ``u``."""
        return self._high[u]

    def _cofactors(self, u, level):
        """Both cofactors of ``u`` with respect to the variable at ``level``
        (``u`` itself twice when ``u`` does not test that level)."""
        if self._level[u] == level:
            return self._low[u], self._high[u]
        return u, u

    # -- ite and the derived connectives -------------------------------------------

    def ite(self, f, g, h):
        """The Shannon operator ``if f then g else h``, memoised."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._node(level, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        self._bound_ite_cache()
        return result

    def not_(self, f):
        return self.ite(f, FALSE, TRUE)

    def and_(self, f, g):
        return self.ite(f, g, FALSE)

    def or_(self, f, g):
        return self.ite(f, TRUE, g)

    def xor(self, f, g):
        return self.ite(f, self.not_(g), g)

    def implies(self, f, g):
        return self.ite(f, g, TRUE)

    def iff(self, f, g):
        return self.ite(f, g, self.not_(g))

    def diff(self, f, g):
        """Set difference ``f & !g``."""
        return self.ite(f, self.not_(g), FALSE)

    # -- cofactor and quantification -------------------------------------------------

    def restrict(self, u, level, value):
        """The cofactor of ``u`` with the variable at ``level`` fixed to
        ``value``."""
        self._check_level(level)
        return self._restrict(u, level, bool(value))

    def _restrict(self, u, level, value):
        node_level = self._level[u]
        if node_level > level:
            return u
        if node_level == level:
            return self._high[u] if value else self._low[u]
        key = ("restrict", u, level, value)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        result = self._node(
            node_level,
            self._restrict(self._low[u], level, value),
            self._restrict(self._high[u], level, value),
        )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def _normalize_levels(self, levels):
        levels = tuple(sorted(set(levels)))
        for level in levels:
            self._check_level(level)
        return levels

    def exists(self, u, levels):
        """Existential quantification of ``u`` over the variables at
        ``levels``."""
        levels = self._normalize_levels(levels)
        if not levels:
            return u
        return self._exists(u, levels)

    def _exists(self, u, levels):
        node_level = self._level[u]
        if node_level > levels[-1]:
            return u
        key = ("exists", u, levels)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        low = self._exists(self._low[u], levels)
        high = self._exists(self._high[u], levels)
        if node_level in levels:
            result = self.or_(low, high)
        else:
            result = self._node(node_level, low, high)
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def forall(self, u, levels):
        """Universal quantification of ``u`` over the variables at
        ``levels``."""
        return self.not_(self.exists(self.not_(u), levels))

    def and_exists(self, f, g, levels):
        """The combined relational product ``exists levels. f & g``.

        Computing the conjunction and the quantification in one recursion
        never materialises the intermediate ``f & g`` BDD and short-circuits
        to ``TRUE`` as soon as one quantified branch is satisfiable — the
        key primitive behind the symbolic backend's modal images.
        """
        levels = self._normalize_levels(levels)
        if not levels:
            return self.and_(f, g)
        return self._and_exists(f, g, levels)

    def _and_exists(self, f, g, levels):
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists(g, levels)
        if g == TRUE:
            return self._exists(f, levels)
        if f > g:  # conjunction is commutative: canonicalise the cache key
            f, g = g, f
        level = min(self._level[f], self._level[g])
        if level > levels[-1]:
            return self.and_(f, g)
        key = ("and_exists", f, g, levels)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        if level in levels:
            result = self._and_exists(f0, g0, levels)
            if result != TRUE:
                result = self.or_(result, self._and_exists(f1, g1, levels))
        else:
            result = self._node(
                level,
                self._and_exists(f0, g0, levels),
                self._and_exists(f1, g1, levels),
            )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    # -- renaming ---------------------------------------------------------------------

    def rename(self, u, mapping):
        """Rename the variables of ``u`` according to ``mapping``.

        ``mapping`` is a sequence of ``(old_level, new_level)`` pairs (or a
        dict).  The mapping must be *order-preserving* on the support of
        ``u`` — relative variable order may not change, which the
        unprimed ↔ primed swaps of interleaved relational encodings satisfy
        by construction.  A violation is detected and raised rather than
        silently producing a mis-ordered diagram.
        """
        if isinstance(mapping, dict):
            mapping = tuple(sorted(mapping.items()))
        else:
            mapping = tuple(mapping)
        for old, new in mapping:
            self._check_level(old)
            self._check_level(new)
        return self._rename(u, mapping, dict(mapping))

    def _rename(self, u, mapping, mapping_dict):
        if u <= TRUE:
            return u
        key = ("rename", u, mapping)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        node_level = self._level[u]
        new_level = mapping_dict.get(node_level, node_level)
        low = self._rename(self._low[u], mapping, mapping_dict)
        high = self._rename(self._high[u], mapping, mapping_dict)
        if self._level[low] <= new_level or self._level[high] <= new_level:
            raise EngineError(
                f"rename mapping {mapping!r} is not order-preserving on the "
                f"support of node {u} (level {node_level} -> {new_level})"
            )
        result = self._node(new_level, low, high)
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    # -- evaluation, counting, enumeration ----------------------------------------------

    def evaluate(self, u, assignment):
        """Evaluate ``u`` at a point.  ``assignment`` maps levels to truth
        values (a dict, or a sequence indexed by level)."""
        while u > TRUE:
            if assignment[self._level[u]]:
                u = self._high[u]
            else:
                u = self._low[u]
        return u == TRUE

    def sat_count(self, u):
        """The number of satisfying assignments of ``u`` over *all*
        ``num_vars`` variables of the manager."""
        return self._sat_count(u) << self._level[u]

    def _sat_count(self, u):
        # Counts assignments to the variables at levels >= level_of(u).
        if u <= TRUE:
            return u
        key = ("count", u)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        low, high = self._low[u], self._high[u]
        level = self._level[u]
        result = (self._sat_count(low) << (self._level[low] - level - 1)) + (
            self._sat_count(high) << (self._level[high] - level - 1)
        )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def sat_all(self, u):
        """Yield the satisfying *paths* of ``u`` as dicts ``level -> bool``.

        Variables absent from a yielded dict are unconstrained (each path
        stands for ``2 ** missing`` full assignments); enumeration follows
        the variable order, so the output is deterministic.
        """
        if u == FALSE:
            return
        if u == TRUE:
            yield {}
            return
        level = self._level[u]
        for value, child in ((False, self._low[u]), (True, self._high[u])):
            for partial in self.sat_all(child):
                path = {level: value}
                path.update(partial)
                yield path

    def support(self, u):
        """The set of levels ``u`` actually depends on."""
        seen = set()
        levels = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return levels

    def size(self, u):
        """The number of distinct internal nodes reachable from ``u``."""
        seen = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    # -- observability -----------------------------------------------------------------

    def cache_info(self):
        """Sizes of the manager's memoisation layers (see module docstring).

        ``ite_high_water``/``op_high_water`` report the largest size each
        operation cache ever reached (including the current size), and
        ``cache_clears`` counts overflow-triggered clears against
        ``cache_ceiling`` — the observability hooks of the bounded caches.
        """
        return {
            "nodes": len(self._level) - 2,
            "ite_cache": len(self._ite_cache),
            "op_cache": len(self._op_cache),
            "ite_high_water": max(self._ite_high_water, len(self._ite_cache)),
            "op_high_water": max(self._op_high_water, len(self._op_cache)),
            "cache_clears": self._cache_clears,
            "cache_ceiling": self.cache_ceiling,
        }

    def clear_operation_caches(self):
        """Drop the ``ite`` and quantify/rename/count memos.

        The unique table is untouched, so every node id remains valid;
        subsequent operations just recompute their memo entries.  This is
        the safe way to bound a long-lived manager's cache footprint.
        """
        self._ite_high_water = max(self._ite_high_water, len(self._ite_cache))
        self._op_high_water = max(self._op_high_water, len(self._op_cache))
        self._ite_cache.clear()
        self._op_cache.clear()

    def __repr__(self):
        return f"BDD(num_vars={self.num_vars}, |nodes|={len(self._level) - 2})"
