"""A self-contained pure-Python ROBDD kernel.

A :class:`BDD` manager owns a universe of boolean variables identified by
*variable indices* ``0 .. num_vars - 1`` and represents boolean functions
over them as reduced ordered binary decision diagrams.  Nodes are
hash-consed through a unique table, so two structurally equal functions are
always the *same* integer node id — equality, tautology and unsatisfiability
checks are id comparisons, which is what the symbolic world-set backend's
fixed points rely on.

Variables versus levels
-----------------------

A variable index is a stable name; a *level* is the variable's current
position in the order (level 0 is tested first on every path).  The two
coincide when the manager is created and stay equal until
:meth:`BDD.reorder` runs, so code that never reorders can keep treating the
two interchangeably.  All public operations — :meth:`restrict`,
:meth:`exists`, :meth:`rename`, :meth:`evaluate`, :meth:`support`,
:meth:`sat_all` — speak *variable indices*, which keeps every client-held
quantification set and rename mapping valid across reorders.
:meth:`var_of` reports the variable a node tests; :meth:`level_of` its
current depth.

The kernel provides:

* the Shannon operator :meth:`BDD.ite` (if-then-else), memoised, from which
  all binary connectives (:meth:`and_`, :meth:`or_`, :meth:`xor`,
  :meth:`implies`, :meth:`iff`, :meth:`diff`) and negation (:meth:`not_`)
  derive;
* cofactor :meth:`restrict` and existential/universal quantification
  (:meth:`exists`, :meth:`forall`) over arbitrary variable sets;
* order-preserving variable renaming (:meth:`rename`) — the
  unprimed ↔ primed swap of the relational encodings — which *validates*
  order preservation and raises :class:`~repro.util.errors.VariableOrderError`
  (a ``ValueError``) instead of silently producing a mis-ordered diagram;
* the combined relational product :meth:`and_exists`
  (``exists V. f & g`` in one pass, the workhorse of image computation);
* satisfying-assignment counting (:meth:`sat_count`) and path enumeration
  (:meth:`sat_all`) over the variable order, plus point evaluation
  (:meth:`evaluate`);
* dynamic variable reordering: :meth:`reorder` runs a pass of Rudell
  *group sifting* built on an in-place adjacent-level swap primitive that
  preserves every node id (see below), :meth:`enable_reordering` arms a
  growth trigger on the unique table, and :meth:`maybe_reorder` runs a
  pending reorder at a *safe point* (no kernel operation may be in flight).

Everything is plain Python — no third-party dependency — so the ``"bdd"``
world-set backend built on top of this module is always available, unlike
the NumPy-gated ``"matrix"`` backend.

Complement edges are deliberately omitted: negation is a memoised ``ite``
against the terminals, which keeps node identity simple (one id per
function, not per function-up-to-polarity) at the cost of some sharing.

Reordering invariants
---------------------

The swap primitive exchanges two *adjacent* levels entirely in place: a
node testing the upper variable whose children do not test the lower one is
untouched; a *dependent* node is rewritten — same id, new ``(var, low,
high)`` triple — to test the lower variable over freshly consed children.
Because every node keeps the boolean function it denotes, node ids held by
clients (cached extensions, compiled relations, fixed-point iterates)
remain valid across any number of swaps, and distinct nodes keep distinct
functions, so rewritten unique-table keys never collide.  Dead nodes are
rewritten along with live ones — the kernel has no garbage collector, so
"dead" only means unreferenced, never invalid.  The *operation* caches are
dropped after a reorder (their level-keyed entries go stale); the unique
table itself is never cleared.

Sifting measures diagram size over the nodes *live from a caller-supplied
root set* (tracked incrementally with reference counts during swaps).
Without roots every table node is pessimistically treated as live, which
makes the metric monotone in allocations and sifting largely a no-op — pass
the roots you care about.

Keep-groups declared through :meth:`enable_reordering` (e.g. the
interleaved current/primed bit pairs of the relational encodings) move as
units and are never split or internally permuted, which keeps the
prime/unprime rename mappings order-preserving by construction.

Two memoisation layers exist and are observable through
:meth:`cache_info`: the *unique table* (structural identity of nodes; never
cleared, node ids stay valid for the manager's lifetime) and the *operation
caches* (``ite`` and quantify/rename/count memos), which
:meth:`clear_operation_caches` drops without invalidating any node id —
that is the "boundable" half a long-lived evaluator can safely release.

The operation caches are additionally *bounded*: each is capped at
``cache_ceiling`` entries (:data:`DEFAULT_CACHE_CEILING` unless overridden
at construction) and cleared when it overflows, so long-running loops —
hundreds of rounds of symbolic KBP construction against one shared manager
— cannot grow the memo tables without bound.  Overflows only cost
recomputation, never correctness, and are observable: :meth:`cache_info`
reports the high-water mark of each cache and the number of
overflow-triggered clears.
"""

from repro import obs as _obs
from repro.obs.registry import attach_aliases, register_manager
from repro.resilience import faults as _faults
from repro.util.errors import EngineError, VariableOrderError

FALSE = 0
TRUE = 1

DEFAULT_CACHE_CEILING = 1 << 20
"""Default per-cache entry ceiling of a manager's operation caches."""

DEFAULT_REORDER_THRESHOLD = 1 << 12
"""Default unique-table size at which an armed manager first requests a
reorder (the trigger doubles after every reorder)."""


class BDD:
    """A manager for ROBDDs over a fixed number of ordered variables.

    Node ids are small integers private to one manager; the terminals are
    ``FALSE == 0`` and ``TRUE == 1``.  All operations are memoised in the
    manager, so repeated subcomputations — within one call or across a whole
    batch of calls — are paid for once.
    """

    __slots__ = (
        "num_vars",
        "cache_ceiling",
        "_var",
        "_low",
        "_high",
        "_unique",
        "_var2level",
        "_level2var",
        "_ite_cache",
        "_op_cache",
        "_ite_high_water",
        "_op_high_water",
        "_ite_hits",
        "_ite_misses",
        "_op_hits",
        "_op_misses",
        "_cache_clears",
        "_gc_passes",
        "_gc_purged",
        "_var_nodes",
        "_group_order",
        "_reorder_enabled",
        "_reorder_threshold",
        "_auto_trigger",
        "_reorder_pending",
        "_in_reorder",
        "_reorder_count",
        "_swap_count",
        "_last_reorder",
        "_live_ref",
        "_live_size",
        "_budget",
        "_budget_check_at",
        "__weakref__",
    )

    def __init__(self, num_vars, cache_ceiling=DEFAULT_CACHE_CEILING):
        if num_vars < 0:
            raise EngineError("a BDD manager needs a non-negative variable count")
        if cache_ceiling is not None and cache_ceiling < 1:
            raise EngineError("cache_ceiling must be a positive entry count or None")
        self.num_vars = num_vars
        self.cache_ceiling = cache_ceiling
        # Terminals live below every variable: their pseudo-variable is
        # ``num_vars``, which both permutation arrays map to itself.
        self._var = [num_vars, num_vars]
        self._low = [-1, -1]
        self._high = [-1, -1]
        self._unique = {}
        self._var2level = list(range(num_vars + 1))
        self._level2var = list(range(num_vars + 1))
        self._ite_cache = {}
        self._op_cache = {}
        self._ite_high_water = 0
        self._op_high_water = 0
        self._ite_hits = 0
        self._ite_misses = 0
        self._op_hits = 0
        self._op_misses = 0
        self._cache_clears = 0
        self._gc_passes = 0
        self._gc_purged = 0
        self._var_nodes = None
        self._group_order = None
        self._reorder_enabled = False
        self._reorder_threshold = DEFAULT_REORDER_THRESHOLD
        self._auto_trigger = None
        self._reorder_pending = False
        self._in_reorder = False
        self._reorder_count = 0
        self._swap_count = 0
        self._last_reorder = None
        self._live_ref = None
        self._live_size = 0
        # Armed by repro.resilience (directly or via the registry hook that
        # register_manager runs): _budget points at the governing Budget and
        # _budget_check_at is the node id at which its next kernel-level
        # check fires.  None means ungoverned — the only per-node cost.
        self._budget = None
        self._budget_check_at = 0
        register_manager(self)

    def _bound_ite_cache(self):
        """Account one ``ite`` memo miss (stores happen exactly on misses)
        and clear the memo when it overflows its ceiling (clearing only
        forces recomputation; no node id is invalidated)."""
        self._ite_misses += 1
        if self.cache_ceiling is not None and len(self._ite_cache) >= self.cache_ceiling:
            self._ite_high_water = max(self._ite_high_water, len(self._ite_cache))
            self._ite_cache.clear()
            self._cache_clears += 1
            if _obs.ENABLED:
                _obs.event("bdd.cache_clear", cache="ite", clears=self._cache_clears)

    def _bound_op_cache(self):
        """Account one op-memo miss and clear the quantify/rename/count
        memo when it overflows."""
        self._op_misses += 1
        if self.cache_ceiling is not None and len(self._op_cache) >= self.cache_ceiling:
            self._op_high_water = max(self._op_high_water, len(self._op_cache))
            self._op_cache.clear()
            self._cache_clears += 1
            if _obs.ENABLED:
                _obs.event("bdd.cache_clear", cache="op", clears=self._cache_clears)

    # -- node primitives ---------------------------------------------------------

    def _node(self, var, low, high):
        """Return the (hash-consed) node ``(var, low, high)``; reduced —
        a node whose branches coincide is its branch.

        The order invariant (children test strictly deeper *levels*) is
        enforced here rather than assumed: a violation silently corrupts
        every diagram sharing the node, so it must be impossible."""
        if low == high:
            return low
        v2l = self._var2level
        level = v2l[var]
        if v2l[self._var[low]] <= level or v2l[self._var[high]] <= level:
            raise VariableOrderError(
                f"variable-order violation: node at level {level} over children "
                f"at levels {v2l[self._var[low]]}/{v2l[self._var[high]]}"
            )
        key = (var, low, high)
        found = self._unique.get(key)
        if found is None:
            found = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = found
            if self._var_nodes is not None:
                self._var_nodes[var].append(found)
            if (
                self._auto_trigger is not None
                and found >= self._auto_trigger
                and not self._in_reorder
            ):
                # Never reorder mid-operation: only raise the flag here and
                # let a safe point (maybe_reorder) run the sift.  Skipped
                # entirely while a sift is rewriting levels: swaps create
                # nodes through _node between their table mutations, and an
                # obs sink raising out of the growth event there would
                # interrupt a half-applied swap (reorder() only recovers
                # from interruptions *between* swaps).  The reorder's exit
                # path re-arms the trigger itself.
                self._reorder_pending = True
                self._auto_trigger <<= 1
                if _obs.ENABLED:
                    _obs.event(
                        "bdd.unique_growth", nodes=found, trigger=self._auto_trigger
                    )
            budget = self._budget
            if budget is not None and found >= self._budget_check_at:
                # Cooperative governance: deadline/cancellation/hard node
                # ceiling, re-checked every check_interval fresh nodes so a
                # runaway single operation is bounded in time and space.
                # The node is fully consed first, so the table stays
                # consistent across the raise.
                budget._kernel_check(self)
        return found

    def var(self, var):
        """The function of the single variable ``var``."""
        self._check_var(var)
        return self._node(var, FALSE, TRUE)

    def nvar(self, var):
        """The negation of the variable ``var``."""
        self._check_var(var)
        return self._node(var, TRUE, FALSE)

    def _check_var(self, var):
        if not 0 <= var < self.num_vars:
            raise EngineError(
                f"variable index {var!r} out of range [0, {self.num_vars})"
            )

    def var_of(self, u):
        """The variable tested at node ``u`` (``num_vars`` for the
        terminals).  Stable across reorders."""
        return self._var[u]

    def level_of(self, u):
        """The current level (depth in the order) of the variable tested at
        node ``u`` (``num_vars`` for the terminals).  Equals :meth:`var_of`
        until the manager reorders."""
        return self._var2level[self._var[u]]

    def level_of_var(self, var):
        """The current level of variable ``var``."""
        self._check_var(var)
        return self._var2level[var]

    def variable_order(self):
        """The current order: the variable index at each level, top down."""
        return tuple(self._level2var[: self.num_vars])

    def low(self, u):
        """The else-branch of node ``u``."""
        return self._low[u]

    def high(self, u):
        """The then-branch of node ``u``."""
        return self._high[u]

    def _cofactors(self, u, level):
        """Both cofactors of ``u`` with respect to the variable at ``level``
        (``u`` itself twice when ``u`` does not test that level)."""
        if self._var2level[self._var[u]] == level:
            return self._low[u], self._high[u]
        return u, u

    # -- ite and the derived connectives -------------------------------------------

    def ite(self, f, g, h):
        """The Shannon operator ``if f then g else h``, memoised."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._ite_hits += 1
            return cached
        var_ = self._var
        v2l = self._var2level
        level = min(v2l[var_[f]], v2l[var_[g]], v2l[var_[h]])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._node(
            self._level2var[level], self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        self._bound_ite_cache()
        return result

    def not_(self, f):
        return self.ite(f, FALSE, TRUE)

    def and_(self, f, g):
        return self.ite(f, g, FALSE)

    def or_(self, f, g):
        return self.ite(f, TRUE, g)

    def xor(self, f, g):
        return self.ite(f, self.not_(g), g)

    def implies(self, f, g):
        return self.ite(f, g, TRUE)

    def iff(self, f, g):
        return self.ite(f, g, self.not_(g))

    def diff(self, f, g):
        """Set difference ``f & !g``."""
        return self.ite(f, self.not_(g), FALSE)

    # -- cofactor and quantification -------------------------------------------------

    def restrict(self, u, var, value):
        """The cofactor of ``u`` with variable ``var`` fixed to ``value``."""
        self._check_var(var)
        return self._restrict(u, var, bool(value))

    def _restrict(self, u, var, value):
        v2l = self._var2level
        node_var = self._var[u]
        if v2l[node_var] > v2l[var]:
            return u
        if node_var == var:
            return self._high[u] if value else self._low[u]
        key = ("restrict", u, var, value)
        cached = self._op_cache.get(key)
        if cached is not None:
            self._op_hits += 1
            return cached
        result = self._node(
            node_var,
            self._restrict(self._low[u], var, value),
            self._restrict(self._high[u], var, value),
        )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def _normalize_levels(self, variables):
        """The *current levels* of the given variable indices, sorted.

        Quantification recurses over levels (the structural order), while
        callers speak stable variable indices; the translation happens once
        per public call, so the cached inner recursions stay consistent
        between reorders (every reorder drops the operation caches)."""
        levels = set()
        for var in variables:
            self._check_var(var)
            levels.add(self._var2level[var])
        return tuple(sorted(levels))

    def exists(self, u, variables):
        """Existential quantification of ``u`` over ``variables``."""
        levels = self._normalize_levels(variables)
        if not levels:
            return u
        return self._exists(u, levels)

    def _exists(self, u, levels):
        node_level = self._var2level[self._var[u]]
        if node_level > levels[-1]:
            return u
        key = ("exists", u, levels)
        cached = self._op_cache.get(key)
        if cached is not None:
            self._op_hits += 1
            return cached
        low = self._exists(self._low[u], levels)
        high = self._exists(self._high[u], levels)
        if node_level in levels:
            result = self.or_(low, high)
        else:
            result = self._node(self._var[u], low, high)
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def forall(self, u, variables):
        """Universal quantification of ``u`` over ``variables``."""
        return self.not_(self.exists(self.not_(u), variables))

    def and_exists(self, f, g, variables):
        """The combined relational product ``exists variables. f & g``.

        Computing the conjunction and the quantification in one recursion
        never materialises the intermediate ``f & g`` BDD and short-circuits
        to ``TRUE`` as soon as one quantified branch is satisfiable — the
        key primitive behind the symbolic backend's modal images.
        """
        levels = self._normalize_levels(variables)
        if not levels:
            return self.and_(f, g)
        return self._and_exists(f, g, levels)

    def _and_exists(self, f, g, levels):
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists(g, levels)
        if g == TRUE:
            return self._exists(f, levels)
        if f > g:  # conjunction is commutative: canonicalise the cache key
            f, g = g, f
        v2l = self._var2level
        level = min(v2l[self._var[f]], v2l[self._var[g]])
        if level > levels[-1]:
            return self.and_(f, g)
        key = ("and_exists", f, g, levels)
        cached = self._op_cache.get(key)
        if cached is not None:
            self._op_hits += 1
            return cached
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        if level in levels:
            result = self._and_exists(f0, g0, levels)
            if result != TRUE:
                result = self.or_(result, self._and_exists(f1, g1, levels))
        else:
            result = self._node(
                self._level2var[level],
                self._and_exists(f0, g0, levels),
                self._and_exists(f1, g1, levels),
            )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    # -- renaming ---------------------------------------------------------------------

    def rename(self, u, mapping):
        """Rename the variables of ``u`` according to ``mapping``.

        ``mapping`` is a sequence of ``(old_var, new_var)`` pairs (or a
        dict).  The mapping must be *order-preserving* on the support of
        ``u`` — relative variable order may not change, which the
        unprimed ↔ primed swaps of interleaved relational encodings satisfy
        by construction (and keep satisfying under reordering, since the
        pairs move as keep-groups).  A violation raises
        :class:`~repro.util.errors.VariableOrderError` (a ``ValueError``)
        rather than silently producing a mis-ordered diagram.
        """
        if isinstance(mapping, dict):
            mapping = tuple(sorted(mapping.items()))
        else:
            mapping = tuple(mapping)
        for old, new in mapping:
            self._check_var(old)
            self._check_var(new)
        return self._rename(u, mapping, dict(mapping))

    def _rename(self, u, mapping, mapping_dict):
        if u <= TRUE:
            return u
        key = ("rename", u, mapping)
        cached = self._op_cache.get(key)
        if cached is not None:
            self._op_hits += 1
            return cached
        node_var = self._var[u]
        new_var = mapping_dict.get(node_var, node_var)
        low = self._rename(self._low[u], mapping, mapping_dict)
        high = self._rename(self._high[u], mapping, mapping_dict)
        v2l = self._var2level
        new_level = v2l[new_var]
        if v2l[self._var[low]] <= new_level or v2l[self._var[high]] <= new_level:
            raise VariableOrderError(
                f"rename mapping {mapping!r} is not order-preserving on the "
                f"support of node {u} (variable {node_var} -> {new_var})"
            )
        result = self._node(new_var, low, high)
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    # -- evaluation, counting, enumeration ----------------------------------------------

    def evaluate(self, u, assignment):
        """Evaluate ``u`` at a point.  ``assignment`` maps variable indices
        to truth values (a dict, or a sequence indexed by variable)."""
        while u > TRUE:
            if assignment[self._var[u]]:
                u = self._high[u]
            else:
                u = self._low[u]
        return u == TRUE

    def sat_count(self, u):
        """The number of satisfying assignments of ``u`` over *all*
        ``num_vars`` variables of the manager."""
        return self._sat_count(u) << self._var2level[self._var[u]]

    def _sat_count(self, u):
        # Counts assignments to the variables at levels >= level_of(u).
        if u <= TRUE:
            return u
        key = ("count", u)
        cached = self._op_cache.get(key)
        if cached is not None:
            self._op_hits += 1
            return cached
        v2l = self._var2level
        low, high = self._low[u], self._high[u]
        level = v2l[self._var[u]]
        result = (self._sat_count(low) << (v2l[self._var[low]] - level - 1)) + (
            self._sat_count(high) << (v2l[self._var[high]] - level - 1)
        )
        self._op_cache[key] = result
        self._bound_op_cache()
        return result

    def sat_all(self, u):
        """Yield the satisfying *paths* of ``u`` as dicts ``var -> bool``.

        Variables absent from a yielded dict are unconstrained (each path
        stands for ``2 ** missing`` full assignments); enumeration follows
        the variable order, so the output is deterministic for a fixed
        order.
        """
        if u == FALSE:
            return
        if u == TRUE:
            yield {}
            return
        var = self._var[u]
        for value, child in ((False, self._low[u]), (True, self._high[u])):
            for partial in self.sat_all(child):
                path = {var: value}
                path.update(partial)
                yield path

    def support(self, u):
        """The set of variable indices ``u`` actually depends on."""
        seen = set()
        variables = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return variables

    def size(self, u):
        """The number of distinct internal nodes reachable from ``u``."""
        seen = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    # -- dynamic variable reordering ----------------------------------------------------

    def enable_reordering(self, groups=None, threshold=None):
        """Arm growth-triggered dynamic reordering.

        ``groups`` is an optional iterable of variable-index tuples that
        must stay adjacent, in the given internal order (keep-groups — the
        current/primed bit pairs of a relational encoding).  ``threshold``
        is the unique-table size at which the manager first *requests* a
        reorder; the request is only a flag (:attr:`reorder_pending`), the
        sift itself runs when a client calls :meth:`maybe_reorder` at a safe
        point.  The trigger re-arms at ``max(threshold, 2 * table)`` after
        every reorder.
        """
        if threshold is not None:
            if threshold < 1:
                raise EngineError("reorder threshold must be a positive node count")
            self._reorder_threshold = threshold
        if groups is not None:
            self._set_groups(groups)
        self._reorder_enabled = True
        self._auto_trigger = max(self._reorder_threshold, len(self._var) + 1)

    def disable_reordering(self):
        """Disarm the growth trigger (a pending request is dropped)."""
        self._reorder_enabled = False
        self._auto_trigger = None
        self._reorder_pending = False

    @property
    def reorder_enabled(self):
        return self._reorder_enabled

    @property
    def reorder_pending(self):
        """True when the growth trigger fired and a safe-point
        :meth:`maybe_reorder` call would run a sift."""
        return self._reorder_pending

    def variable_groups(self):
        """The keep-groups in current level order (singletons for ungrouped
        variables); ``None`` until groups are declared or a reorder ran."""
        if self._group_order is None:
            return None
        return tuple(self._group_order)

    def declare_groups(self, groups):
        """Declare keep-groups without arming the growth trigger.

        :meth:`enable_reordering` both declares groups and arms automatic
        sifting; this declares only, so an *explicit* :meth:`reorder` —
        e.g. the mitigation ladder of :mod:`repro.resilience` on a manager
        whose owner never opted into dynamic reordering — still moves the
        relational current/primed pairs as units and keeps the prime
        renames order-preserving.
        """
        self._set_groups(groups)

    @property
    def live_nodes(self):
        """The current unique-table entry count — the live node population
        a :class:`repro.resilience.Budget` node ceiling governs.  (The node
        arrays never shrink; ``cache_info()['unique.nodes']`` reports that
        monotone peak instead.)"""
        return len(self._unique)

    def _set_groups(self, groups):
        group_of = {}
        for group in groups:
            group = tuple(group)
            if not group:
                continue
            for var in group:
                self._check_var(var)
                if var in group_of:
                    raise EngineError(
                        f"variable {var} appears in more than one keep-group"
                    )
                group_of[var] = group
            levels = [self._var2level[var] for var in group]
            if levels != list(range(levels[0], levels[0] + len(group))):
                raise EngineError(
                    f"keep-group {group!r} must occupy adjacent levels in order "
                    f"(found levels {levels!r})"
                )
        order = []
        level = 0
        while level < self.num_vars:
            var = self._level2var[level]
            group = group_of.get(var, (var,))
            if group[0] != var:
                raise EngineError(
                    f"keep-group {group!r} does not start at its top level"
                )
            order.append(group)
            level += len(group)
        self._group_order = order

    def maybe_reorder(self, roots=None):
        """Run a pending reorder, if any, and return whether one ran.

        This is the *safe point* API: callers invoke it between kernel
        operations (fixed-point loop iterations, construction rounds), never
        from within a recursion, because a swap rewrites nodes that in-flight
        operations may hold in local variables.
        """
        if not self._reorder_pending or not self._reorder_enabled or self._in_reorder:
            return False
        self.reorder(roots)
        return True

    def reorder(self, roots=None):
        """Run one pass of Rudell group sifting; returns ``(before, after)``
        live node counts.

        ``roots`` is an iterable of node ids whose reachable nodes define
        the *live* diagram the sift minimises; liveness is tracked
        incrementally with reference counts as swaps rewrite edges.  Live
        node ids survive: a swap rewrites dependent nodes in place, so every
        live id keeps denoting the same boolean function.

        Nodes *not* reachable from the roots are garbage-collected — their
        unique-table entries are purged and they are never rewritten again,
        so their ids become invalid (this is what keeps a sift's cost
        proportional to the live diagram instead of compounding: a dead node
        rewritten at every swap would spawn fresh dead cofactor nodes each
        time).  Callers must therefore root every node they intend to keep
        using.  With ``roots=None`` every current table node is a root —
        nothing pre-existing can die, ids stay universally valid, and only
        the transient nodes created by the sift itself are collected.

        The operation caches are dropped afterwards (their level-keyed
        entries are stale); ``ite`` results would remain valid but are
        dropped too for uniformity.
        """
        if self._in_reorder:
            raise EngineError("reorder() re-entered — not a safe point")
        if self._group_order is None:
            self._group_order = [
                (self._level2var[level],) for level in range(self.num_vars)
            ]
        before = None
        swaps_before = self._swap_count
        sift_span = _obs.span("bdd.reorder")
        sift_span.__enter__()
        try:
            live_ref, live_size = self._trace_live(roots)
            if roots is not None:
                # Garbage-collect: only reachable nodes keep unique entries
                # (and with them the ability to be returned by ``_node`` or
                # rewritten by swaps).  Zombie slots stay in the arrays but
                # are invalid.
                purged = 0
                for key, u in list(self._unique.items()):
                    if u not in live_ref:
                        del self._unique[key]
                        purged += 1
                self._gc_passes += 1
                self._gc_purged += purged
                if _obs.ENABLED:
                    _obs.event("bdd.gc", purged=purged, live=live_size)
            self._build_var_index()
            before = live_size
            self._live_ref = live_ref
            self._live_size = live_size
            self._in_reorder = True
            try:
                var_group = {}
                for group in self._group_order:
                    for var in group:
                        var_group[var] = group
                sizes = {}
                for u in live_ref:
                    group = var_group.get(self._var[u])
                    if group is not None:
                        sizes[group] = sizes.get(group, 0) + 1
                for group in sorted(
                    self._group_order, key=lambda g: sizes.get(g, 0), reverse=True
                ):
                    if sizes.get(group, 0) == 0:
                        continue
                    self._sift_group(group)
            except BaseException:
                # An interruption (cancellation, injected fault, kernel
                # error) between elementary swaps can leave a keep-group
                # physically split across levels, which would break the
                # order-preservation of the prime renames.  Levels and
                # reference counts are consistent at swap granularity, so
                # adjacency can be restored with the same primitive.
                self._repair_group_adjacency()
                raise
        finally:
            self._in_reorder = False
            self._live_ref = None
            self._var_nodes = None
            # The operation caches' level-keyed entries are stale the moment
            # any level moved (and, after a GC, may reference purged nodes),
            # so they are dropped on *every* exit path; likewise a pending
            # request must not survive an aborted pass, else the next safe
            # point would immediately re-enter it.
            self.clear_operation_caches()
            self._reorder_pending = False
            if self._reorder_enabled:
                self._auto_trigger = max(self._reorder_threshold, 2 * len(self._var))
            sift_span.__exit__(None, None, None)
        after = self._live_size
        self._reorder_count += 1
        self._last_reorder = (before, after)
        if _obs.ENABLED:
            _obs.event(
                "bdd.reorder",
                before=before,
                after=after,
                swaps=self._swap_count - swaps_before,
                trigger=self._auto_trigger,
            )
        return before, after

    def _repair_group_adjacency(self):
        """Recover keep-group adjacency after an interrupted sift.

        A group move is a sequence of elementary swaps; an exception in the
        middle leaves the two groups interleaved (each with its internal
        order intact, since swaps never permute within a group).  Walking
        the groups top-down and bubbling every member up to the block under
        its leader restores contiguity from any between-swaps state.  Runs
        with fault injection suppressed — the repair itself must not be
        re-interrupted — and rebuilds the group order from the repaired
        levels.
        """
        from repro.resilience import faults as _faults

        v2l = self._var2level
        with _faults.suppressed():
            for group in sorted(
                (g for g in self._group_order if len(g) > 1),
                key=lambda g: min(v2l[var] for var in g),
            ):
                top = min(v2l[var] for var in group)
                for offset, var in enumerate(group):
                    target = top + offset
                    level = v2l[var]
                    while level > target:
                        self._swap_levels(level - 1)
                        level -= 1
        group_of = {}
        for group in self._group_order:
            for var in group:
                group_of[var] = group
        order = []
        level = 0
        while level < self.num_vars:
            var = self._level2var[level]
            group = group_of.get(var, (var,))
            order.append(group)
            level += len(group)
        self._group_order = order

    def _build_var_index(self):
        """Per-variable lists of the *live* nodes (exactly the unique-table
        entries — dead nodes were just purged from it), the work-lists the
        swap primitive processes.  Rebuilt at every reorder, dropped after."""
        index = [[] for _ in range(self.num_vars)]
        var_ = self._var
        for u in self._unique.values():
            index[var_[u]].append(u)
        self._var_nodes = index

    def _trace_live(self, roots):
        """Reference counts over the nodes reachable from ``roots`` (every
        unique-table entry a root when ``roots`` is None — zombie slots of
        earlier reorders stay dead); a root mark counts as one reference, so
        externally held nodes never die during swaps."""
        low_, high_ = self._low, self._high
        if roots is None:
            root_set = list(self._unique.values())
        else:
            root_set = {r for r in roots if r > TRUE}
        visited = set()
        stack = [r for r in root_set if r > TRUE]
        while stack:
            u = stack.pop()
            if u in visited:
                continue
            visited.add(u)
            for child in (low_[u], high_[u]):
                if child > TRUE and child not in visited:
                    stack.append(child)
        live_ref = {}
        for r in root_set:
            if r > TRUE:
                live_ref[r] = live_ref.get(r, 0) + 1
        for u in visited:
            for child in (low_[u], high_[u]):
                if child > TRUE:
                    live_ref[child] = live_ref.get(child, 0) + 1
        return live_ref, len(visited)

    def _live_incref(self, u):
        if u <= TRUE:
            return
        count = self._live_ref.get(u, 0)
        self._live_ref[u] = count + 1
        if count == 0:
            self._live_size += 1
            self._live_incref(self._low[u])
            self._live_incref(self._high[u])

    def _live_decref(self, u):
        """Drop one reference; a node dying (count reaching zero) releases
        its children and is *purged* — its unique entry goes away, so it can
        neither be returned by ``_node`` again nor rewritten by later swaps
        (its frozen triple may become mis-ordered as levels keep moving)."""
        if u <= TRUE:
            return
        count = self._live_ref[u] - 1
        self._live_ref[u] = count
        if count == 0:
            self._live_size -= 1
            key = (self._var[u], self._low[u], self._high[u])
            if self._unique.get(key) == u:
                del self._unique[key]
            self._live_decref(self._low[u])
            self._live_decref(self._high[u])

    def _swap_levels(self, level):
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Live nodes at the upper level whose children do not test the lower
        variable are untouched; *dependent* live nodes are rewritten in
        place — keeping their id, hence their function — to test the lower
        variable over (possibly fresh) children testing the upper one.
        Distinct functions stay distinct, so the rewritten unique-table keys
        never collide.  Dead nodes (purged by :meth:`_live_decref`) are
        skipped entirely: reference counts are exact over the live diagram,
        so nothing reachable ever points at a skipped node.
        """
        if _faults.ARMED:
            # Chaos hook: an injected raise lands here, *between* swaps —
            # each individual swap is exception-atomic by construction.
            _faults.fire("bdd.swap")
        l2v = self._level2var
        upper = l2v[level]
        lower = l2v[level + 1]
        var_, low_, high_ = self._var, self._low, self._high
        unique = self._unique
        live_ref = self._live_ref
        old_nodes = self._var_nodes[upper]
        keep = self._var_nodes[upper] = []
        moved = self._var_nodes[lower]
        l2v[level], l2v[level + 1] = lower, upper
        self._var2level[upper] = level + 1
        self._var2level[lower] = level
        for u in old_nodes:
            if live_ref.get(u, 0) == 0:
                # Died since it was listed (a transient of an earlier swap,
                # already purged from the unique table) — drop it.
                continue
            f0 = low_[u]
            f1 = high_[u]
            t0 = var_[f0] == lower
            t1 = var_[f1] == lower
            if not (t0 or t1):
                # Independent of the lower variable: the node keeps testing
                # the upper one, one level further down.
                keep.append(u)
                continue
            del unique[(upper, f0, f1)]
            if t0:
                f00, f01 = low_[f0], high_[f0]
            else:
                f00 = f01 = f0
            if t1:
                f10, f11 = low_[f1], high_[f1]
            else:
                f10 = f11 = f1
            g0 = self._node(upper, f00, f10)
            g1 = self._node(upper, f01, f11)
            var_[u] = lower
            low_[u] = g0
            high_[u] = g1
            unique[(lower, g0, g1)] = u
            moved.append(u)
            # Incref the new children before releasing the old ones so a
            # shared node never transiently dies (death purges it).
            self._live_incref(g0)
            self._live_incref(g1)
            self._live_decref(f0)
            self._live_decref(f1)
        self._swap_count += 1

    def _swap_adjacent_groups(self, index):
        """Swap the keep-groups at positions ``index`` and ``index + 1`` of
        the group order via elementary level swaps (internal order of both
        groups preserved)."""
        order = self._group_order
        upper_group = order[index]
        lower_group = order[index + 1]
        top = self._var2level[upper_group[0]]
        size_upper = len(upper_group)
        for j in range(len(lower_group)):
            start = top + size_upper + j
            for lvl in range(start, top + j, -1):
                self._swap_levels(lvl - 1)
        order[index], order[index + 1] = lower_group, upper_group

    def _move_group(self, position, target):
        while position < target:
            self._swap_adjacent_groups(position)
            position += 1
        while position > target:
            self._swap_adjacent_groups(position - 1)
            position -= 1
        return position

    def _sift_group(self, group):
        """Sift one keep-group: try every position (closer end first, with a
        growth abort), then settle at the best one seen."""
        order = self._group_order
        start = order.index(group)
        last = len(order) - 1
        best_size = self._live_size
        best_pos = start
        max_size = 2 * best_size + 64
        position = start
        ends = (last, 0) if last - start <= start else (0, last)
        for end in ends:
            step = 1 if end > position else -1
            while position != end and self._live_size <= max_size:
                if step == 1:
                    self._swap_adjacent_groups(position)
                    position += 1
                else:
                    self._swap_adjacent_groups(position - 1)
                    position -= 1
                if self._live_size < best_size:
                    best_size = self._live_size
                    best_pos = position
                    max_size = 2 * best_size + 64
            position = self._move_group(position, start)
        self._move_group(position, best_pos)

    # -- observability -----------------------------------------------------------------

    def cache_info(self):
        """Sizes and accounting of the manager's memoisation layers, keyed
        by the canonical metric schema of :mod:`repro.obs.registry` (see
        the module docstring there for the full vocabulary).

        ``cache.*.high_water`` reports the largest size each operation
        cache ever reached (including the current size) and survives every
        clear; ``cache.*.hits``/``cache.*.misses`` account every memo
        lookup over the manager's lifetime; ``cache.clears`` counts
        overflow-triggered clears against ``cache.ceiling``;
        ``gc.passes``/``gc.purged`` the rooted-reorder collections; the
        ``reorder.*`` keys the dynamic-reordering state.  The historical
        flat keys (``nodes``, ``ite_cache``, ``ite_high_water``, …) and the
        nested ``reorder_stats`` dict remain as aliases for one release.
        """
        info = {
            "unique.nodes": len(self._var) - 2,
            "cache.ite.size": len(self._ite_cache),
            "cache.op.size": len(self._op_cache),
            "cache.ite.high_water": max(self._ite_high_water, len(self._ite_cache)),
            "cache.op.high_water": max(self._op_high_water, len(self._op_cache)),
            "cache.ite.hits": self._ite_hits,
            "cache.ite.misses": self._ite_misses,
            "cache.op.hits": self._op_hits,
            "cache.op.misses": self._op_misses,
            "cache.clears": self._cache_clears,
            "cache.ceiling": self.cache_ceiling,
            "gc.passes": self._gc_passes,
            "gc.purged": self._gc_purged,
            "reorder.enabled": self._reorder_enabled,
            "reorder.pending": self._reorder_pending,
            "reorder.count": self._reorder_count,
            "reorder.swaps": self._swap_count,
            "reorder.last_size": self._last_reorder,
            "reorder.trigger": self._auto_trigger,
        }
        info["reorder_stats"] = {
            "enabled": self._reorder_enabled,
            "pending": self._reorder_pending,
            "reorders": self._reorder_count,
            "swaps": self._swap_count,
            "last_size": self._last_reorder,
            "trigger": self._auto_trigger,
        }
        return attach_aliases(
            info,
            {
                "unique.nodes": "nodes",
                "cache.ite.size": "ite_cache",
                "cache.op.size": "op_cache",
                "cache.ite.high_water": "ite_high_water",
                "cache.op.high_water": "op_high_water",
                "cache.clears": "cache_clears",
                "cache.ceiling": "cache_ceiling",
            },
        )

    def clear_operation_caches(self):
        """Drop the ``ite`` and quantify/rename/count memos.

        The unique table is untouched, so every node id remains valid;
        subsequent operations just recompute their memo entries.  This is
        the safe way to bound a long-lived manager's cache footprint.
        """
        self._ite_high_water = max(self._ite_high_water, len(self._ite_cache))
        self._op_high_water = max(self._op_high_water, len(self._op_cache))
        self._ite_cache.clear()
        self._op_cache.clear()

    def __repr__(self):
        return f"BDD(num_vars={self.num_vars}, |nodes|={len(self._var) - 2})"
