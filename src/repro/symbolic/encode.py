"""Symbolic (BDD) encoding of an :class:`~repro.kripke.structure.EpistemicStructure`.

Worlds are encoded by their *dense index* — the same construction-order
index that is the contract between a structure and the bit-level engine
backends — written in binary over ``bits = max(1, ceil(log2 |W|))`` boolean
variables.  Two copies of each variable exist, *current* and *primed*, in a
separated order::

    level p          current copy of position p
    level bits + p   primed copy of position p

where position ``p = 0`` carries the most significant index bit.  The
separated order (every current variable above every primed one) is what the
relation construction relies on: a relation BDD is assembled bottom-up from
one whole primed successor-*set* BDD per world, and those leaves — which
span all primed levels — must sit strictly below the current index
variables being merged on top of them (the kernel's order invariant rejects
any other arrangement).  The swap ``current <-> primed`` is a uniform shift
by ``bits`` and therefore order-preserving, so :meth:`BDD.rename`
implements both directions.

A *world-set* is a BDD over the current variables only; it is built from
(and converted back to) the same big-int bitmasks the bitset backend uses
(:meth:`SymbolicEncoding.set_from_mask` / :meth:`mask_from_set`), by
splitting the mask in half per index bit — structurally shared subtrees
land on the same hash-consed node, so e.g. the full-universe mask costs
O(bits) nodes, not O(|W|).  Indices ``>= |W|`` (the unused codes of a
non-power-of-two universe) are simply ``False`` in every set built this
way; :attr:`SymbolicEncoding.domain` is the set of *valid* codes and is
conjoined wherever a complement could otherwise leak invalid codes in.

Per-agent accessibility becomes a relation BDD ``R_a(x, x')`` — true iff
the world coded by the current variables ``a``-accesses the world coded by
the primed ones — assembled bottom-up from one primed successor-set BDD per
world.  Group relations (union for E/C, intersection for D, with the same
empty-group conventions as everywhere in the library) are derived from
those.  All encodings are memoised: the :class:`SymbolicEncoding` itself
(with its private :class:`~repro.symbolic.bdd.BDD` manager) lives in
``structure.engine_cache`` like ``accessibility_masks`` does, so it is
built once per structure and shared by every evaluator.
"""

from repro.obs.registry import attach_aliases
from repro.symbolic.bdd import BDD, FALSE, TRUE

__all__ = ["SymbolicEncoding", "encoding_for"]


class SymbolicEncoding:
    """The symbolic coding of one structure: manager, variables, relations."""

    __slots__ = (
        "structure",
        "bits",
        "bdd",
        "current_levels",
        "primed_levels",
        "_to_primed",
        "_to_current",
        "_set_memo",
        "_mask_memo",
        "domain",
        "domain_primed",
    )

    def __init__(self, structure):
        n = len(structure)
        self.structure = structure
        self.bits = max(1, (n - 1).bit_length())
        self.bdd = BDD(2 * self.bits)
        self.current_levels = tuple(range(self.bits))
        self.primed_levels = tuple(range(self.bits, 2 * self.bits))
        self._to_primed = tuple(zip(self.current_levels, self.primed_levels))
        self._to_current = tuple(zip(self.primed_levels, self.current_levels))
        self._set_memo = {}
        self._mask_memo = {}
        full = (1 << n) - 1
        self.domain = self.set_from_mask(full)
        self.domain_primed = self.set_from_mask(full, primed=True)

    # -- world-sets <-> bitmasks -------------------------------------------------------

    def set_from_mask(self, mask, primed=False):
        """The BDD (over current — or primed — variables) of the world-set
        given as a big-int bitmask over the dense index."""
        return self._set_from_mask(mask, 0, primed)

    def _set_from_mask(self, mask, position, primed):
        if position == self.bits:
            return TRUE if mask & 1 else FALSE
        key = (mask, position, primed)
        cached = self._set_memo.get(key)
        if cached is not None:
            return cached
        half = 1 << (self.bits - 1 - position)
        low_mask = mask & ((1 << half) - 1)
        high_mask = mask >> half
        level = self.bits + position if primed else position
        result = self.bdd._node(
            level,
            self._set_from_mask(low_mask, position + 1, primed),
            self._set_from_mask(high_mask, position + 1, primed),
        )
        self._set_memo[key] = result
        return result

    def mask_from_set(self, node):
        """The big-int bitmask of a world-set BDD (current variables only)."""
        return self._mask_from_set(node, 0)

    def _mask_from_set(self, node, position):
        if position == self.bits:
            return 1 if node == TRUE else 0
        key = (node, position)
        cached = self._mask_memo.get(key)
        if cached is not None:
            return cached
        low, high = self.bdd._cofactors(node, position)
        half = 1 << (self.bits - 1 - position)
        result = self._mask_from_set(low, position + 1) | (
            self._mask_from_set(high, position + 1) << half
        )
        self._mask_memo[key] = result
        return result

    def world(self, index, primed=False):
        """The minterm BDD of the single world with the given dense index."""
        return self.set_from_mask(1 << index, primed=primed)

    # -- boundary protocol -------------------------------------------------------------
    #
    # The four methods below (plus ``domain``, ``count``, ``prime``/``unprime``,
    # ``agent_relation``/``group_relation`` and the cache hooks) are the
    # *encoding protocol* the ``"bdd"`` backend talks to.  Any object that
    # implements them can stand in for this class — in particular the
    # variable-level encoding of :mod:`repro.symbolic.model`, whose world
    # universe is never enumerated; here they are thin wrappers over the
    # mask codec of the dense-index encoding.

    def worlds_node(self, worlds):
        """The world-set BDD of an iterable of world identifiers."""
        index_of = self.structure.index_of
        mask = 0
        for world in worlds:
            mask |= 1 << index_of(world)
        return self.set_from_mask(mask)

    def node_worlds(self, node):
        """The frozenset of world identifiers of a world-set BDD."""
        world_at = self.structure.worlds
        mask = self.mask_from_set(node)
        result = []
        while mask:
            low = mask & -mask
            result.append(world_at[low.bit_length() - 1])
            mask ^= low
        return frozenset(result)

    def node_contains(self, node, world):
        """Point query by world identifier."""
        return self.contains_index(node, self.structure.index_of(world))

    def prop_node(self, name):
        """The world-set BDD of a proposition's extension."""
        from repro.engine.backend import proposition_masks

        return self.set_from_mask(proposition_masks(self.structure).get(name, 0))

    def contains_index(self, node, index):
        """Point query: is the world with the given dense index in the set?"""
        bdd = self.bdd
        bits = self.bits
        while node > TRUE:
            position = bdd.level_of(node)
            if (index >> (bits - 1 - position)) & 1:
                node = bdd.high(node)
            else:
                node = bdd.low(node)
        return node == TRUE

    def count(self, node):
        """The number of worlds in a world-set BDD (current variables only).

        ``sat_count`` ranges over both variable copies; a current-only set
        leaves the ``bits`` primed variables free, so each world contributes
        exactly ``2 ** bits`` assignments.
        """
        return self.bdd.sat_count(node) >> self.bits

    # -- current <-> primed ------------------------------------------------------------

    def prime(self, node):
        """Rename a current-variable BDD onto the primed variables."""
        return self.bdd.rename(node, self._to_primed)

    def unprime(self, node):
        """Rename a primed-variable BDD onto the current variables."""
        return self.bdd.rename(node, self._to_current)

    # -- relations ---------------------------------------------------------------------

    def agent_relation(self, agent):
        """The relation BDD ``R_agent(current, primed)``, memoised.

        Built bottom-up: one primed successor-set BDD per world, then a
        balanced merge over the current index bits — O(|W|) node
        constructions, with hash-consing sharing equal successor sets (the
        common case for observational indistinguishability relations).
        """
        cache = self.structure.engine_cache
        key = ("bdd_rel", agent)
        relation = cache.get(key)
        if relation is None:
            from repro.engine.backend import accessibility_masks

            masks = accessibility_masks(self.structure, agent)
            relation = self._relation_from_rows(
                [self.set_from_mask(mask, primed=True) for mask in masks]
            )
            cache[key] = relation
        return relation

    def _relation_from_rows(self, rows):
        width = 1 << self.bits
        nodes = list(rows) + [FALSE] * (width - len(rows))
        node_ = self.bdd._node
        for position in range(self.bits - 1, -1, -1):
            nodes = [
                node_(position, nodes[i], nodes[i + 1])
                for i in range(0, len(nodes), 2)
            ]
        return nodes[0]

    def group_relation(self, group, mode):
        """The union / intersection relation BDD of a group, memoised.

        As everywhere in the library: the union over an empty group is the
        empty relation, the intersection over an empty group is the *full*
        (valid-code) relation.
        """
        cache = self.structure.engine_cache
        key = ("bdd_group", frozenset(group), mode)
        relation = cache.get(key)
        if relation is None:
            bdd = self.bdd
            members = [self.agent_relation(agent) for agent in group]
            if mode == "union":
                relation = FALSE
                for member in members:
                    relation = bdd.or_(relation, member)
            elif mode == "intersection":
                if not members:
                    relation = bdd.and_(self.domain, self.domain_primed)
                else:
                    relation = members[0]
                    for member in members[1:]:
                        relation = bdd.and_(relation, member)
            else:
                from repro.util.errors import EngineError

                raise EngineError(f"unknown group relation mode {mode!r}")
            cache[key] = relation
        return relation

    def clear_operation_caches(self):
        """Drop every recomputable memo: the manager's operation caches and
        the encoding's mask <-> BDD codec memos.  All node ids (cached
        relations, world-set values, evaluator extensions) stay valid."""
        self.bdd.clear_operation_caches()
        self._set_memo.clear()
        self._mask_memo.clear()

    def cache_info(self):
        """Encoding-level cache sizes merged with the manager's, keyed by
        the canonical schema of :mod:`repro.obs.registry` (``memo.sets``,
        ``memo.masks``, ``memo.relations``); the historical ``set_memo`` /
        ``mask_memo`` / ``relations`` keys remain as aliases for one
        release."""
        cache = self.structure.engine_cache
        info = dict(self.bdd.cache_info())
        info["memo.sets"] = len(self._set_memo)
        info["memo.masks"] = len(self._mask_memo)
        info["memo.relations"] = sum(
            1 for key in cache if isinstance(key, tuple) and key[0] in ("bdd_rel", "bdd_group")
        )
        return attach_aliases(
            info,
            {
                "memo.sets": "set_memo",
                "memo.masks": "mask_memo",
                "memo.relations": "relations",
            },
        )

    def __repr__(self):
        return (
            f"SymbolicEncoding(|W|={len(self.structure)}, bits={self.bits}, "
            f"|nodes|={self.bdd.cache_info()['nodes']})"
        )


def encoding_for(structure):
    """Return the memoised :class:`SymbolicEncoding` of ``structure``.

    One encoding (and hence one BDD manager) exists per structure, stored in
    ``structure.engine_cache``; the structure is immutable, so the encoding
    never needs invalidation.
    """
    cache = structure.engine_cache
    encoding = cache.get("bdd_encoding")
    if encoding is None:
        encoding = SymbolicEncoding(structure)
        cache["bdd_encoding"] = encoding
    return encoding
