"""The symbolic (BDD) world-set backend.

:class:`SymbolicBackend` (registered as ``"bdd"``) implements the full
:class:`repro.engine.backend.SetBackend` protocol with world-sets
represented as ROBDDs over the structure's symbolic encoding
(:mod:`repro.symbolic.encode`):

* boolean algebra is the memoised ``ite``/apply of the kernel
  (:mod:`repro.symbolic.bdd`);
* ``possible``/``knows`` are relational products: the existential modal
  image is ``exists x'. R(x, x') & phi(x')`` — one
  :meth:`~repro.symbolic.bdd.BDD.and_exists` pass — and the universal image
  is its dual, complemented inside the valid-code domain;
* ``everyone_knows`` / ``distributed_knows`` are the same images over the
  group's union / intersection relation BDD;
* ``common_knows`` and ``reachable`` are BDD fixed points: canonicity makes
  the convergence test a node-id comparison;
* the ``*_many`` batch operators resolve the relation once and run the
  whole batch against the manager's shared ``ite``/``and_exists`` memo
  caches, so operands with overlapping subdiagrams — the common case for a
  guard suite over shared subformulas — pay for shared work once.

Unlike the ``"matrix"`` backend there is no optional dependency: the kernel
is pure Python, so ``"bdd"`` is always in ``available_backends()``.  Its
cost scales with *BDD size*, not with ``|W|``: on structures whose
relations and extensions compress well (observational indistinguishability
over variable assignments — the paper's contexts — compresses extremely
well) it can evaluate over world counts the explicit backends cannot
touch.

Observability: the backend implements the
:meth:`~repro.engine.backend.SetBackend.cache_info` /
:meth:`~repro.engine.backend.SetBackend.clear_cache` hooks, exposing the
manager's unique-table and operation-cache sizes and dropping the
(recomputable) operation caches on request — node ids, cached relations
and cached evaluator extensions all stay valid across a
:meth:`clear_cache`.
"""

from repro import obs as _obs
from repro import resilience as _res
from repro.engine.backend import SetBackend
from repro.symbolic.bdd import FALSE
from repro.symbolic.encode import encoding_for

__all__ = ["SymbolicWorldSet", "SymbolicBackend"]


class SymbolicWorldSet:
    """A world-set value of the ``"bdd"`` backend: one ROBDD node of the
    owning structure's encoding.

    Canonicity of the kernel makes equality a node-id comparison.  The
    wrapper exists because the :class:`~repro.engine.backend.SetBackend`
    boolean-algebra operations receive only the operand values, so each
    value must carry its encoding (and thereby its manager) along.
    """

    __slots__ = ("encoding", "node")

    def __init__(self, encoding, node):
        self.encoding = encoding
        self.node = node

    def __eq__(self, other):
        if not isinstance(other, SymbolicWorldSet):
            return NotImplemented
        return self.encoding is other.encoding and self.node == other.node

    def __hash__(self):
        return hash((id(self.encoding), self.node))

    def __repr__(self):
        return f"SymbolicWorldSet(node={self.node}, bits={self.encoding.bits})"


class SymbolicBackend(SetBackend):
    """World-sets as ROBDD nodes; modal operators as relational products."""

    name = "bdd"

    # -- conversions ---------------------------------------------------------------

    def from_worlds(self, structure, worlds):
        # All conversions go through the *encoding protocol* (see
        # ``repro.symbolic.encode``): the dense-index encoding realises it
        # via the mask codec, the enumeration-free variable encoding of
        # ``repro.symbolic.model`` via per-variable value cubes — the modal
        # machinery below is agnostic to which one a structure carries.
        encoding = encoding_for(structure)
        return SymbolicWorldSet(encoding, encoding.worlds_node(worlds))

    def to_frozenset(self, structure, ws):
        return ws.encoding.node_worlds(ws.node)

    def universe(self, structure):
        encoding = encoding_for(structure)
        return SymbolicWorldSet(encoding, encoding.domain)

    def empty(self, structure):
        return SymbolicWorldSet(encoding_for(structure), FALSE)

    # -- boolean algebra ------------------------------------------------------------

    def union(self, a, b):
        return SymbolicWorldSet(a.encoding, a.encoding.bdd.or_(a.node, b.node))

    def intersection(self, a, b):
        return SymbolicWorldSet(a.encoding, a.encoding.bdd.and_(a.node, b.node))

    def difference(self, a, b):
        return SymbolicWorldSet(a.encoding, a.encoding.bdd.diff(a.node, b.node))

    def complement(self, structure, ws):
        # Complement *within the valid codes*: a plain negation would let
        # the unused codes of a non-power-of-two universe leak in.
        encoding = ws.encoding
        return SymbolicWorldSet(encoding, encoding.bdd.diff(encoding.domain, ws.node))

    # -- queries --------------------------------------------------------------------

    def contains(self, structure, ws, world):
        return ws.encoding.node_contains(ws.node, world)

    def is_empty(self, ws):
        return ws.node == FALSE

    def size(self, ws):
        return ws.encoding.count(ws.node)

    def equals(self, a, b):
        return a.encoding is b.encoding and a.node == b.node

    # -- epistemic operators ----------------------------------------------------------

    def prop_extension(self, structure, name):
        encoding = encoding_for(structure)
        return SymbolicWorldSet(encoding, encoding.prop_node(name))

    def _diamond(self, encoding, relation, inner_node):
        """Existential image: worlds with some relation-successor in the set
        coded by ``inner_node`` — ``exists x'. R(x, x') & inner(x')``."""
        bdd = encoding.bdd
        return bdd.and_exists(
            relation, encoding.prime(inner_node), encoding.primed_levels
        )

    def _avoid(self, encoding, relation, bad_node):
        """Universal image: valid worlds with *no* relation-successor in the
        set coded by ``bad_node``."""
        bdd = encoding.bdd
        return bdd.diff(encoding.domain, self._diamond(encoding, relation, bad_node))

    def _box(self, encoding, relation, inner_node):
        """Valid worlds all of whose relation-successors lie inside the set
        coded by ``inner_node``."""
        bad = encoding.bdd.diff(encoding.domain, inner_node)
        return self._avoid(encoding, relation, bad)

    def knows(self, structure, agent, inner):
        encoding = inner.encoding
        relation = encoding.agent_relation(agent)
        return SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))

    def possible(self, structure, agent, inner):
        encoding = inner.encoding
        relation = encoding.agent_relation(agent)
        return SymbolicWorldSet(encoding, self._diamond(encoding, relation, inner.node))

    def everyone_knows(self, structure, group, inner):
        encoding = inner.encoding
        relation = encoding.group_relation(group, "union")
        return SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))

    def distributed_knows(self, structure, group, inner):
        encoding = inner.encoding
        relation = encoding.group_relation(group, "intersection")
        return SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))

    def _common_node(self, encoding, relation, inner_node):
        bdd = encoding.bdd
        # Least fixed point: worlds from which some ~phi world is reachable
        # in >= 0 steps of the union relation.  Canonicity turns the
        # convergence test into a node-id comparison.
        tainted = bdd.diff(encoding.domain, inner_node)
        iterations = 0
        while True:
            iterations += 1
            if _res.ACTIVE:
                bud = _res.current_budget()
                if bud is not None:
                    bud.tick("fixpoint.iter", iterations=iterations - 1, manager=bdd)
            if _obs.ENABLED:
                _obs.event(
                    "fixpoint.iter",
                    loop="common_knowledge",
                    backend=self.name,
                    iteration=iterations,
                    node=tainted,
                )
            grown = bdd.or_(tainted, self._diamond(encoding, relation, tainted))
            if grown == tainted:
                break
            tainted = grown
        if _obs.ENABLED:
            _obs.counter("fixpoint.iterations", iterations)
            _obs.event(
                "fixpoint",
                loop="common_knowledge",
                backend=self.name,
                iterations=iterations,
            )
        # C[G] phi fails exactly at the worlds with a successor in `tainted`
        # (a path of length >= 1 to a ~phi world).
        return self._avoid(encoding, relation, tainted)

    def common_knows(self, structure, group, inner):
        encoding = inner.encoding
        relation = encoding.group_relation(group, "union")
        return SymbolicWorldSet(
            encoding, self._common_node(encoding, relation, inner.node)
        )

    # -- batched epistemic operators ---------------------------------------------------
    #
    # One relation lookup for the whole batch, then scalar images through the
    # manager's shared ``ite``/``and_exists`` memo caches: operands that
    # share subdiagrams (guards over shared subformulas — the normal case in
    # ``Evaluator.extensions``) hit the same cache entries, so the marginal
    # cost of an operand is the work on its *distinct* part only.  There is
    # no wider stacked representation to exploit, so no column packing as in
    # the matrix backend.

    def knows_many(self, structure, agent, inners):
        if not inners:
            return []
        encoding = inners[0].encoding
        relation = encoding.agent_relation(agent)
        return [
            SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))
            for inner in inners
        ]

    def possible_many(self, structure, agent, inners):
        if not inners:
            return []
        encoding = inners[0].encoding
        relation = encoding.agent_relation(agent)
        return [
            SymbolicWorldSet(encoding, self._diamond(encoding, relation, inner.node))
            for inner in inners
        ]

    def everyone_knows_many(self, structure, group, inners):
        if not inners:
            return []
        encoding = inners[0].encoding
        relation = encoding.group_relation(group, "union")
        return [
            SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))
            for inner in inners
        ]

    def distributed_knows_many(self, structure, group, inners):
        if not inners:
            return []
        encoding = inners[0].encoding
        relation = encoding.group_relation(group, "intersection")
        return [
            SymbolicWorldSet(encoding, self._box(encoding, relation, inner.node))
            for inner in inners
        ]

    def common_knows_many(self, structure, group, inners):
        if not inners:
            return []
        encoding = inners[0].encoding
        relation = encoding.group_relation(group, "union")
        return [
            SymbolicWorldSet(
                encoding, self._common_node(encoding, relation, inner.node)
            )
            for inner in inners
        ]

    # -- reachability ------------------------------------------------------------------

    def reachable(self, structure, start_worlds, agents=None):
        if agents is None:
            agents = structure.agents
        encoding = encoding_for(structure)
        bdd = encoding.bdd
        relation = encoding.group_relation(tuple(agents), "union")
        seen = self.from_worlds(structure, start_worlds).node
        iterations = 0
        while True:
            iterations += 1
            if _res.ACTIVE:
                bud = _res.current_budget()
                if bud is not None:
                    bud.tick("fixpoint.iter", iterations=iterations - 1, manager=bdd)
            if _obs.ENABLED:
                _obs.event(
                    "fixpoint.iter",
                    loop="reachable",
                    backend=self.name,
                    iteration=iterations,
                    node=seen,
                )
            # Forward image: exists x. R(x, x') & seen(x), then x' -> x.
            image = bdd.and_exists(relation, seen, encoding.current_levels)
            grown = bdd.or_(seen, encoding.unprime(image))
            if grown == seen:
                break
            seen = grown
        if _obs.ENABLED:
            _obs.counter("fixpoint.iterations", iterations)
            _obs.event(
                "fixpoint", loop="reachable", backend=self.name, iterations=iterations
            )
        return SymbolicWorldSet(encoding, seen)

    # -- observability -----------------------------------------------------------------

    def cache_info(self, structure):
        encoding = structure.engine_cache.get("bdd_encoding")
        if encoding is None:
            return {}
        return encoding.cache_info()

    def clear_cache(self, structure):
        encoding = structure.engine_cache.get("bdd_encoding")
        if encoding is not None:
            encoding.clear_operation_caches()
