"""The symbolic evaluation subsystem: a pure-Python ROBDD kernel and the
``"bdd"`` world-set backend built on it.

Three layers:

* :mod:`repro.symbolic.bdd` — a self-contained ROBDD kernel (hash-consed
  unique table, memoised ``ite``/apply, restrict, quantification, renaming,
  the combined relational product ``and_exists``, satisfying-set counting
  and enumeration) with no third-party dependency;
* :mod:`repro.symbolic.encode` — the symbolic coding of an
  :class:`~repro.kripke.structure.EpistemicStructure`: worlds as boolean
  vectors over ``ceil(log2 |W|)`` variables (current copies above primed
  copies), accessibility as relation BDDs, all memoised per structure in
  ``structure.engine_cache``;
* :mod:`repro.symbolic.backend_bdd` — :class:`SymbolicBackend`, the
  :class:`~repro.engine.backend.SetBackend` implementation registered as
  ``"bdd"``, whose cost scales with BDD size rather than ``|W|``.

On top of the backend sits the *enumeration-free construction* pipeline:

* :mod:`repro.symbolic.compile` — a per-variable binary encoding of a
  :class:`~repro.modeling.state_space.StateSpace` and an
  ``Expression → BDD`` compiler (boolean structure directly, arithmetic by
  value-range case splits) that never enumerates states;
* :mod:`repro.symbolic.model` — :class:`SymbolicContextModel`, the
  compiled form of a variable context (initial set, observational
  equivalences, transition relation — all BDDs built straight from the
  specification), plus the structure/view adapters that plug it into the
  unmodified ``"bdd"`` backend and evaluator.

The backend is registered lazily by :mod:`repro.engine.backend`; importing
this package directly is only needed to use the kernel, the encodings or
the compilation pipeline on their own.
"""

from repro.symbolic.bdd import BDD, DEFAULT_CACHE_CEILING, FALSE, TRUE
from repro.symbolic.encode import SymbolicEncoding, encoding_for
from repro.symbolic.backend_bdd import SymbolicBackend, SymbolicWorldSet
from repro.symbolic.compile import VariableEncoding

# The model layer is exported lazily (PEP 562): it imports the engine and
# interpretation packages, which in turn resolve the process-default backend
# at import time — under ``REPRO_SET_BACKEND=bdd`` that resolution imports
# *this* package, so an eager ``from repro.symbolic.model import ...`` here
# would close an import cycle through the half-initialised engine.
_MODEL_EXPORTS = (
    "SymbolicContextModel",
    "SymbolicGuardTable",
    "SymbolicStateSetView",
    "SymbolicStructure",
    "compile_context",
)


def __getattr__(name):
    if name in _MODEL_EXPORTS:
        from repro.symbolic import model

        return getattr(model, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BDD",
    "DEFAULT_CACHE_CEILING",
    "FALSE",
    "TRUE",
    "SymbolicEncoding",
    "encoding_for",
    "SymbolicBackend",
    "SymbolicWorldSet",
    "VariableEncoding",
    *_MODEL_EXPORTS,
]
