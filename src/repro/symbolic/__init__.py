"""The symbolic evaluation subsystem: a pure-Python ROBDD kernel and the
``"bdd"`` world-set backend built on it.

Three layers:

* :mod:`repro.symbolic.bdd` — a self-contained ROBDD kernel (hash-consed
  unique table, memoised ``ite``/apply, restrict, quantification, renaming,
  the combined relational product ``and_exists``, satisfying-set counting
  and enumeration) with no third-party dependency;
* :mod:`repro.symbolic.encode` — the symbolic coding of an
  :class:`~repro.kripke.structure.EpistemicStructure`: worlds as boolean
  vectors over ``ceil(log2 |W|)`` variables (current copies above primed
  copies), accessibility as relation BDDs, all memoised per structure in
  ``structure.engine_cache``;
* :mod:`repro.symbolic.backend_bdd` — :class:`SymbolicBackend`, the
  :class:`~repro.engine.backend.SetBackend` implementation registered as
  ``"bdd"``, whose cost scales with BDD size rather than ``|W|``.

The backend is registered lazily by :mod:`repro.engine.backend`; importing
this package directly is only needed to use the kernel or the encoding on
their own.
"""

from repro.symbolic.bdd import BDD, FALSE, TRUE
from repro.symbolic.encode import SymbolicEncoding, encoding_for
from repro.symbolic.backend_bdd import SymbolicBackend, SymbolicWorldSet

__all__ = [
    "BDD",
    "FALSE",
    "TRUE",
    "SymbolicEncoding",
    "encoding_for",
    "SymbolicBackend",
    "SymbolicWorldSet",
]
