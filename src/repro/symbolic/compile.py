"""Compile variable models straight to BDDs — no state enumeration.

This module is the lower half of the enumeration-free construction pipeline
(:mod:`repro.symbolic.model` is the upper half): a
:class:`VariableEncoding` fixes a per-variable binary encoding of a
:class:`~repro.modeling.state_space.StateSpace` over a private
:class:`~repro.symbolic.bdd.BDD` manager and compiles the whole
:mod:`repro.modeling.expressions` algebra to BDDs over it.  Nothing in this
module ever iterates ``StateSpace.states()``: every set of states is built
from the *structure* of the expressions describing it, so its cost is a
function of diagram size, not of ``∏|domain|``.

Encoding layout
---------------

Every variable ``v`` gets ``bits(v) = max(1, ceil(log2 |dom(v)|))`` boolean
variables; a value's code is its index in the (ordered) domain tuple, most
significant bit first.  Each boolean variable exists in a *current* and a
*primed* copy, interleaved — for the global bit position ``p`` (counted
across variables in state-space order)::

    level 2p       current copy of bit p
    level 2p + 1   primed  copy of bit p

The interleaving keeps every relational building block small: the equality
``v = v'`` is a chain of adjacent level pairs (linear in ``bits(v)``, the
per-agent observational-equivalence relations are conjunctions of such
chains), and both renaming directions (``level ± 1`` uniformly) are
order-preserving, so :meth:`~repro.symbolic.bdd.BDD.rename` implements the
current ↔ primed swap.  Codes ``>= |dom|`` of a non-power-of-two domain are
invalid; :meth:`VariableEncoding.domain_node` is the set of valid codes and
plays the role the dense-index encoding's ``domain`` plays for complements.

Expression compilation
----------------------

Boolean expressions compile by structural recursion
(:meth:`VariableEncoding.truth_node`); arithmetic compiles by *value-range
case splits* (:meth:`VariableEncoding.values_map`): the compiled form of an
arithmetic expression is a finite map ``value -> BDD`` whose guards
partition the (valid) state space — a ``VarRef`` splits into its domain's
value cubes, a ``BinaryOp`` combines the operand splits pairwise and merges
equal results, an ``Ite`` guards its branch splits with the compiled
condition.  Comparisons then reduce to a disjunction over the satisfying
value pairs, i.e. the comparison is *bit-blasted* through the value cubes
rather than evaluated per state.  The case-split tables are as big as the
expressions' value ranges, not as the state space; guards of distinct
variables share no levels, so the pairwise conjunctions stay cube-sized.

Both compilers memoise per expression *identity* (not structural equality:
``Expression.__eq__`` is overloaded to build comparisons, so expressions
must never be used as dict keys), which matches how models hold their
expressions — one shared object per constraint/effect.
"""

from repro.modeling.expressions import (
    BinaryOp,
    BoolOp,
    Comparison,
    Const,
    Expression,
    Ite,
    NotOp,
    VarRef,
)
from repro.modeling.state_space import State
from repro.modeling.variables import Variable
from repro.obs.registry import attach_aliases
from repro.symbolic.bdd import BDD, FALSE, TRUE
from repro.util.errors import ModelError

__all__ = ["VariableEncoding", "EVALUATION_ERROR"]


class _EvaluationError:
    """Sentinel key of a value-range case split: the guard filed under it
    covers the states where evaluating the expression *raises* (``x % z``
    where ``z`` can be 0, say).  Effects tolerate such regions — they only
    matter if a round actually reaches them, exactly as the explicit
    transition function only raises on evaluated states — while guards and
    constraints reject them eagerly, as the explicit enumerator evaluates
    constraints on every assignment it visits."""

    def __repr__(self):
        return "EVALUATION_ERROR"


EVALUATION_ERROR = _EvaluationError()


class VariableEncoding:
    """The per-variable binary encoding of a state space over a BDD manager.

    One encoding owns one manager; every BDD built from the same state
    space shares its hash-consed nodes and memo caches.  All methods are
    memoised, so repeated compilation of the same (identical) expression or
    cube is free after the first call.
    """

    def __init__(self, state_space, cache_ceiling=None, variable_order=None):
        self.state_space = state_space
        if variable_order is None:
            self.variables = state_space.variables
        else:
            # A custom level order (a permutation of the space's variables):
            # BDD sizes are extremely order-sensitive — variables that
            # constrain each other should sit next to each other — and the
            # declaration order of a state space need not be a good one.
            names = [
                name.name if isinstance(name, Variable) else name
                for name in variable_order
            ]
            if sorted(names) != sorted(v.name for v in state_space.variables):
                raise ModelError(
                    "variable_order must be a permutation of the state space's variables"
                )
            self.variables = tuple(state_space.variable(name) for name in names)
        self._bits = {}
        self._offset = {}
        self._codes = {}
        bit_owner = []
        for variable in self.variables:
            bits = max(1, (len(variable.domain) - 1).bit_length())
            self._bits[variable.name] = bits
            self._offset[variable.name] = len(bit_owner)
            self._codes[variable.name] = {
                value: code for code, value in enumerate(variable.domain)
            }
            bit_owner.extend((variable.name, i, bits) for i in range(bits))
        self._bit_owner = tuple(bit_owner)
        self.total_bits = len(bit_owner)
        kwargs = {} if cache_ceiling is None else {"cache_ceiling": cache_ceiling}
        self.bdd = BDD(2 * self.total_bits, **kwargs)
        self.current_levels = tuple(2 * p for p in range(self.total_bits))
        self.primed_levels = tuple(2 * p + 1 for p in range(self.total_bits))
        self._to_primed = tuple(zip(self.current_levels, self.primed_levels))
        self._to_current = tuple(zip(self.primed_levels, self.current_levels))
        self._cube_memo = {}
        self._eq_memo = {}
        self._domain_memo = {}
        self._truth_memo = {}
        self._values_memo = {}
        self._value_errors = {}
        # id()-keyed memos need the expressions alive for the keys to stay
        # unambiguous; models hold their expressions anyway, this makes the
        # encoding safe on its own.
        self._keepalive = []

    # -- layout ------------------------------------------------------------------------

    def bits_of(self, name):
        """The number of encoding bits of the named variable."""
        return self._bits[name]

    def variable_levels(self, name, primed=False):
        """The levels of the named variable's bits (most significant first)."""
        base = self._offset[name]
        shift = 1 if primed else 0
        return tuple(2 * (base + i) + shift for i in range(self._bits[name]))

    def code_of(self, name, value):
        """The integer code of ``value`` in the named variable's domain."""
        try:
            return self._codes[name][value]
        except KeyError:
            raise ModelError(
                f"value {value!r} is not in the domain of variable {name!r}"
            ) from None

    def _resolve_name(self, variable):
        name = variable.name if isinstance(variable, Variable) else variable
        if name not in self._bits:
            raise ModelError(f"state space has no variable {name!r}")
        return name

    # -- cubes and domains -------------------------------------------------------------

    def value_node(self, variable, value, primed=False):
        """The cube BDD of ``variable == value`` (over one variable copy)."""
        name = self._resolve_name(variable)
        key = (name, value, primed)
        cached = self._cube_memo.get(key)
        if cached is not None:
            return cached
        code = self.code_of(name, value)
        bits = self._bits[name]
        base = self._offset[name]
        shift = 1 if primed else 0
        bdd = self.bdd
        # Build bottom-up in *current level* order: the declared bit order
        # equals it only until the manager reorders, so sort by live depth.
        literals = sorted(
            (
                (bdd.level_of_var(2 * (base + i) + shift), 2 * (base + i) + shift, i)
                for i in range(bits)
            ),
            reverse=True,
        )
        node = TRUE
        for _, var, i in literals:
            if (code >> (bits - 1 - i)) & 1:
                node = bdd._node(var, FALSE, node)
            else:
                node = bdd._node(var, node, FALSE)
        self._cube_memo[key] = node
        return node

    def variable_domain_node(self, variable, primed=False):
        """The set of *valid* codes of one variable (``TRUE`` when the
        domain size is a power of two)."""
        name = self._resolve_name(variable)
        key = (name, primed)
        cached = self._domain_memo.get(key)
        if cached is None:
            domain = self.state_space.variable(name).domain
            if len(domain) == 1 << self._bits[name]:
                cached = TRUE
            else:
                cached = FALSE
                for value in domain:
                    cached = self.bdd.or_(cached, self.value_node(name, value, primed))
            self._domain_memo[key] = cached
        return cached

    def domain_node(self, primed=False):
        """The set of valid codes of the whole space (one variable copy)."""
        key = ("*", primed)
        cached = self._domain_memo.get(key)
        if cached is None:
            cached = TRUE
            for variable in reversed(self.variables):
                cached = self.bdd.and_(
                    self.variable_domain_node(variable, primed), cached
                )
            self._domain_memo[key] = cached
        return cached

    def state_node(self, state, primed=False):
        """The minterm BDD of one full :class:`State`."""
        node = TRUE
        for variable in reversed(self.variables):
            node = self.bdd.and_(
                self.value_node(variable.name, state[variable.name], primed), node
            )
        return node

    def cube_node(self, assignment, primed=False):
        """The cube BDD of a partial assignment — an iterable of
        ``(name, value)`` pairs or a mapping (e.g. an agent's local state as
        produced by :meth:`State.restrict`)."""
        pairs = assignment.items() if hasattr(assignment, "items") else assignment
        node = TRUE
        for name, value in pairs:
            node = self.bdd.and_(self.value_node(name, value, primed), node)
        return node

    def equality_node(self, variable):
        """The relation BDD ``v = v'`` — the building block of
        observational-equivalence relations; linear in ``bits(v)`` thanks to
        the interleaved level layout."""
        name = self._resolve_name(variable)
        cached = self._eq_memo.get(name)
        if cached is None:
            node_ = self.bdd._node
            base = self._offset[name]
            # Deepest (current level) pair first; each (current, primed)
            # pair stays adjacent-in-order under reordering because the
            # pairs are the manager's keep-groups, so the per-bit gadget
            # shape is order-safe — only the chaining order can change.
            pairs = sorted(
                (2 * (base + i) for i in range(self._bits[name])),
                key=self.bdd.level_of_var,
                reverse=True,
            )
            node = TRUE
            for current in pairs:
                node = node_(
                    current,
                    node_(current + 1, node, FALSE),
                    node_(current + 1, FALSE, node),
                )
            self._eq_memo[name] = cached = node
        return cached

    # -- renaming and evaluation -------------------------------------------------------

    def prime(self, node):
        """Rename a current-variable BDD onto the primed copies."""
        return self.bdd.rename(node, self._to_primed)

    def unprime(self, node):
        """Rename a primed-variable BDD onto the current copies."""
        return self.bdd.rename(node, self._to_current)

    def evaluate_node(self, node, state, primed_state=None):
        """Evaluate a BDD at a point given by one (or two) states.

        ``state`` supplies the current-variable bits; ``primed_state`` the
        primed ones (for relation BDDs).  Either may be a :class:`State` or
        any mapping from variable name to value.
        """
        bdd = self.bdd
        owner = self._bit_owner
        while node > TRUE:
            var = bdd.var_of(node)
            name, i, bits = owner[var >> 1]
            source = primed_state if var & 1 else state
            if source is None:
                raise ModelError("relation BDD evaluated without a primed state")
            code = self.code_of(name, source[name])
            if (code >> (bits - 1 - i)) & 1:
                node = bdd.high(node)
            else:
                node = bdd.low(node)
        return node == TRUE

    def count(self, node):
        """The number of states of a current-variable set BDD (the primed
        copies are unconstrained and divided back out)."""
        return self.bdd.sat_count(node) >> self.total_bits

    def iter_states(self, node):
        """Yield the :class:`State` objects of a current-variable set BDD.

        Deterministic (domain order per variable, state-space variable
        order outermost); cost is proportional to the number of solutions —
        call it only on sets known to be small, this is the enumerating
        boundary the compilation pipeline otherwise avoids.
        """
        for assignment in self.iter_assignments(node, None):
            yield State(assignment)

    def iter_assignments(self, node, names):
        """Yield the satisfying assignments of a set BDD over the named
        variables as ``{name: value}`` dicts (all variables when ``names``
        is ``None``).  The BDD must not depend on any other variable — pass
        projections (see ``SymbolicStateSetView.project``) for partial
        views."""
        if names is None:
            order = self.variables
        else:
            wanted = set(names)
            order = tuple(v for v in self.variables if v.name in wanted)
        yield from self._iter_assignments(node, order, 0, {})

    def _iter_assignments(self, node, order, index, partial):
        if node == FALSE:
            return
        if index == len(order):
            if node != TRUE:
                raise ModelError(
                    "set BDD depends on variables outside the enumerated ones"
                )
            yield dict(partial)
            return
        variable = order[index]
        levels = self.variable_levels(variable.name)
        bdd = self.bdd
        for value in variable.domain:
            code = self.code_of(variable.name, value)
            restricted = node
            for i, level in enumerate(levels):
                bit = (code >> (len(levels) - 1 - i)) & 1
                restricted = bdd._restrict(restricted, level, bool(bit))
                if restricted == FALSE:
                    break
            if restricted != FALSE:
                partial[variable.name] = value
                yield from self._iter_assignments(restricted, order, index + 1, partial)
                del partial[variable.name]

    # -- dynamic reordering ------------------------------------------------------------

    def reorder_groups(self):
        """The keep-groups for dynamic reordering: one ``(current, primed)``
        level pair per encoding bit.  Sifting whole pairs keeps the
        interleaving — and with it the :meth:`prime`/:meth:`unprime` renames
        and the :meth:`equality_node` gadgets — valid under any order."""
        return tuple((2 * p, 2 * p + 1) for p in range(self.total_bits))

    def enable_reordering(self, threshold=None):
        """Arm the manager's growth-triggered sifting with the encoding's
        pair keep-groups (see :meth:`repro.symbolic.bdd.BDD.enable_reordering`)."""
        self.bdd.enable_reordering(groups=self.reorder_groups(), threshold=threshold)

    def reorder_roots(self):
        """The nodes the encoding itself holds (memoised cubes, equalities,
        domains, compiled expressions) — the encoding's contribution to the
        live root set a reorder's size metric tracks."""
        roots = []
        roots.extend(self._cube_memo.values())
        roots.extend(self._eq_memo.values())
        roots.extend(self._domain_memo.values())
        roots.extend(self._truth_memo.values())
        for table in self._values_memo.values():
            roots.extend(table.values())
        return roots

    # -- expression compilation --------------------------------------------------------

    def truth_node(self, expression):
        """Compile a boolean :class:`Expression` to the BDD of the states
        satisfying it (truthiness matches ``State.satisfies``)."""
        key = id(expression)
        cached = self._truth_memo.get(key)
        if cached is None:
            cached = self._truth(expression)
            self._truth_memo[key] = cached
            self._keepalive.append(expression)
        return cached

    def _truth(self, expression):
        bdd = self.bdd
        if isinstance(expression, Comparison):
            compare = expression._FUNCTIONS[expression.op]
            left_table = self.values_map(expression.left)
            right_table = self.values_map(expression.right)
            self._reject_value_errors(expression, left_table, right_table)
            node = FALSE
            for left_value, left_guard in left_table.items():
                for right_value, right_guard in right_table.items():
                    if compare(left_value, right_value):
                        node = bdd.or_(node, bdd.and_(left_guard, right_guard))
            return node
        if isinstance(expression, BoolOp):
            if expression.op == "and":
                node = TRUE
                for operand in expression.operands:
                    node = bdd.and_(node, self.truth_node(operand))
            else:
                node = FALSE
                for operand in expression.operands:
                    node = bdd.or_(node, self.truth_node(operand))
            return node
        if isinstance(expression, NotOp):
            return bdd.not_(self.truth_node(expression.operand))
        if isinstance(expression, Expression):
            # Value-typed expression in a boolean position (a bare boolean
            # VarRef, an Ite, an arithmetic expression): true where its
            # value is truthy, exactly as ``State.satisfies`` reads it.
            table = self.values_map(expression)
            self._reject_value_errors(expression, table)
            node = FALSE
            for value, guard in table.items():
                if value:
                    node = bdd.or_(node, guard)
            return node
        raise ModelError(f"cannot compile {expression!r} as a boolean expression")

    def _reject_value_errors(self, expression, *tables):
        """Boolean positions must be total: a guard or constraint whose
        evaluation can raise on some domain combination cannot be compiled
        (the explicit enumerator evaluates it on every assignment and would
        raise too)."""
        for table in tables:
            if EVALUATION_ERROR in table:
                errors = sorted(map(repr, self._value_errors.values()))
                detail = f" (first error: {errors[0]})" if errors else ""
                raise ModelError(
                    f"cannot compile {expression} as a boolean expression: "
                    f"evaluating a subexpression raises for some domain "
                    f"values{detail}"
                )

    def values_map(self, expression):
        """Compile an :class:`Expression` to its value-range case split:
        a ``{value: guard BDD}`` map whose guards are disjoint and cover the
        valid states (the compiled form of arithmetic)."""
        key = id(expression)
        cached = self._values_memo.get(key)
        if cached is None:
            cached = self._values(expression)
            self._values_memo[key] = cached
            self._keepalive.append(expression)
        return cached

    def _values(self, expression):
        bdd = self.bdd
        if isinstance(expression, Const):
            return {expression.value: TRUE}
        if isinstance(expression, VarRef):
            name = self._resolve_name(expression.variable)
            space_variable = self.state_space.variable(name)
            if space_variable != expression.variable:
                raise ModelError(
                    f"variable {name!r} of the expression differs from the "
                    f"state space's variable of that name"
                )
            return {
                value: self.value_node(name, value) for value in space_variable.domain
            }
        if isinstance(expression, BinaryOp):
            combine = expression._FUNCTIONS[expression.op]
            result = {}
            for left_value, left_guard in self.values_map(expression.left).items():
                for right_value, right_guard in self.values_map(expression.right).items():
                    guard = bdd.and_(left_guard, right_guard)
                    if guard == FALSE:
                        continue
                    if left_value is EVALUATION_ERROR or right_value is EVALUATION_ERROR:
                        value = EVALUATION_ERROR
                    else:
                        try:
                            value = combine(left_value, right_value)
                        except Exception as error:
                            # The explicit path raises only when a state in
                            # this guard's region is *evaluated*; file the
                            # region under the error sentinel so effects can
                            # stay lazy about it (boolean positions reject it
                            # through _reject_value_errors).
                            self._value_errors[id(expression)] = error
                            value = EVALUATION_ERROR
                    result[value] = bdd.or_(result.get(value, FALSE), guard)
            return result
        if isinstance(expression, Ite):
            condition = self.truth_node(expression.condition)
            result = {}
            for branch, guard_node in (
                (expression.then, condition),
                (expression.otherwise, bdd.not_(condition)),
            ):
                for value, value_guard in self.values_map(branch).items():
                    guard = bdd.and_(guard_node, value_guard)
                    if guard != FALSE:
                        result[value] = bdd.or_(result.get(value, FALSE), guard)
            return result
        if isinstance(expression, (Comparison, BoolOp, NotOp)):
            node = self.truth_node(expression)
            return {True: node, False: self.bdd.not_(node)}
        raise ModelError(f"cannot compile {expression!r} as a value expression")

    # -- observability -----------------------------------------------------------------

    def cache_info(self):
        """Encoding-level memo sizes merged with the manager's, keyed by
        the canonical schema of :mod:`repro.obs.registry` (``memo.cubes``,
        ``memo.expressions``); the historical ``cubes`` / ``expressions``
        keys remain as aliases for one release."""
        info = dict(self.bdd.cache_info())
        info["memo.cubes"] = len(self._cube_memo)
        info["memo.expressions"] = len(self._truth_memo) + len(self._values_memo)
        return attach_aliases(
            info,
            {"memo.cubes": "cubes", "memo.expressions": "expressions"},
        )

    def __repr__(self):
        return (
            f"VariableEncoding({len(self.variables)} variables, "
            f"bits={self.total_bits}, |nodes|={self.bdd.cache_info()['nodes']})"
        )
