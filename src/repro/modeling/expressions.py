"""A small expression language over finite-domain variables.

Expressions are built from variable references and constants using
arithmetic (``+``, ``-``, ``*``), comparisons (``==``, ``!=``, ``<``, ``<=``,
``>``, ``>=``) and boolean connectives (``&``, ``|``, ``~``).  They serve two
purposes:

1. **Evaluation** on a state (an assignment of values to variables), used by
   action effects and standard (non-epistemic) guards.
2. **Compilation to propositional formulas** over the atoms ``"x=v"``
   (:func:`Expression.to_formula`), which is how variable-level conditions
   such as ``x != 1`` or ``day < 5`` enter the epistemic guards of
   knowledge-based programs: a boolean expression is equivalent to the
   disjunction of the atoms of the satisfying assignments over the variables
   it mentions.
"""

from itertools import product

from repro.logic.formula import conj, disj, Not, Prop, TRUE, FALSE
from repro.modeling.variables import Variable
from repro.util.errors import ModelError


class Expression:
    """Base class of expressions; subclasses are immutable."""

    # One lazily-filled slot for the memoised variable support: expressions
    # are immutable, so the support never changes, and repeated enumeration
    # (constraint scheduling in ``StateSpace.states``, symbolic compilation)
    # must not re-walk the tree every time.
    __slots__ = ("_variables_memo",)

    # -- operator overloading ---------------------------------------------------

    def __add__(self, other):
        return BinaryOp("+", self, _as_expression(other))

    def __radd__(self, other):
        return BinaryOp("+", _as_expression(other), self)

    def __sub__(self, other):
        return BinaryOp("-", self, _as_expression(other))

    def __rsub__(self, other):
        return BinaryOp("-", _as_expression(other), self)

    def __mul__(self, other):
        return BinaryOp("*", self, _as_expression(other))

    def __rmul__(self, other):
        return BinaryOp("*", _as_expression(other), self)

    def __mod__(self, other):
        return BinaryOp("%", self, _as_expression(other))

    def __eq__(self, other):
        return Comparison("==", self, _as_expression(other))

    def __ne__(self, other):
        return Comparison("!=", self, _as_expression(other))

    def __lt__(self, other):
        return Comparison("<", self, _as_expression(other))

    def __le__(self, other):
        return Comparison("<=", self, _as_expression(other))

    def __gt__(self, other):
        return Comparison(">", self, _as_expression(other))

    def __ge__(self, other):
        return Comparison(">=", self, _as_expression(other))

    def __and__(self, other):
        return BoolOp("and", (self, _as_expression(other)))

    def __or__(self, other):
        return BoolOp("or", (self, _as_expression(other)))

    def __invert__(self):
        return NotOp(self)

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def equals(self, other):
        """Structural equality (``==`` is overloaded to build comparisons)."""
        return type(self) is type(other) and self._key() == other._key()

    # -- core API ----------------------------------------------------------------

    def variables(self):
        """Return the (frozen) set of :class:`Variable` objects mentioned.

        Memoised per expression: the tree is walked once, after which the
        cached frozenset is returned — repeated state-space enumeration with
        the same constraint pays for the walk a single time.
        """
        try:
            return self._variables_memo
        except AttributeError:
            pass
        out = set()
        self._collect_variables(out)
        result = frozenset(out)
        object.__setattr__(self, "_variables_memo", result)
        return result

    def evaluate(self, values):
        """Evaluate the expression given ``values`` (mapping variable *name*
        to value)."""
        raise NotImplementedError

    def to_formula(self):
        """Compile a boolean expression to a propositional formula over
        ``"x=v"`` atoms by enumerating the (finite) domains of the mentioned
        variables."""
        variables = sorted(self.variables(), key=lambda v: v.name)
        if not variables:
            return TRUE if self.evaluate({}) else FALSE
        satisfying = []
        names = [v.name for v in variables]
        for combo in product(*[v.domain for v in variables]):
            assignment = dict(zip(names, combo))
            if self.evaluate(assignment):
                satisfying.append(
                    conj(
                        [
                            _value_literal(variables[i], combo[i])
                            for i in range(len(variables))
                        ]
                    )
                )
        return disj(satisfying)

    # -- hooks --------------------------------------------------------------------

    def _collect_variables(self, out):
        raise NotImplementedError

    def _key(self):
        raise NotImplementedError


def atom_name_for(variable, value):
    """The canonical proposition name for ``variable == value``.

    Boolean variables are represented by the single atom ``variable.name``
    (false is expressed by negation); other variables use ``"name=value"``.
    """
    if variable.is_boolean:
        return variable.name
    return f"{variable.name}={value}"


def _value_literal(variable, value):
    """The propositional literal expressing ``variable == value`` under the
    labelling convention of :mod:`repro.modeling.state_space`."""
    if variable.is_boolean:
        atom = Prop(variable.name)
        return atom if value else Not(atom)
    return Prop(atom_name_for(variable, value))


def _as_expression(value):
    if isinstance(value, Expression):
        return value
    if isinstance(value, Variable):
        return VarRef(value)
    return Const(value)


class Const(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", value)

    def __setattr__(self, key, value):
        raise AttributeError("Const is immutable")

    def evaluate(self, values):
        return self.value

    def _collect_variables(self, out):
        pass

    def _key(self):
        return self.value

    def __repr__(self):
        return f"Const({self.value!r})"

    def __str__(self):
        return str(self.value)


class VarRef(Expression):
    """A reference to a variable."""

    __slots__ = ("variable",)

    def __init__(self, variable):
        if not isinstance(variable, Variable):
            raise ModelError(f"VarRef expects a Variable, got {variable!r}")
        object.__setattr__(self, "variable", variable)

    def __setattr__(self, key, value):
        raise AttributeError("VarRef is immutable")

    def evaluate(self, values):
        try:
            return values[self.variable.name]
        except KeyError:
            raise ModelError(f"no value for variable {self.variable.name!r}") from None

    def _collect_variables(self, out):
        out.add(self.variable)

    def _key(self):
        return self.variable

    def __repr__(self):
        return f"VarRef({self.variable.name!r})"

    def __str__(self):
        return self.variable.name


class BinaryOp(Expression):
    """Arithmetic binary operation (``+``, ``-``, ``*``, ``%``)."""

    __slots__ = ("op", "left", "right")
    _FUNCTIONS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "%": lambda a, b: a % b,
    }

    def __init__(self, op, left, right):
        if op not in self._FUNCTIONS:
            raise ModelError(f"unknown arithmetic operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, key, value):
        raise AttributeError("BinaryOp is immutable")

    def evaluate(self, values):
        return self._FUNCTIONS[self.op](self.left.evaluate(values), self.right.evaluate(values))

    def _collect_variables(self, out):
        self.left._collect_variables(out)
        self.right._collect_variables(out)

    def _key(self):
        return (self.op, self.left, self.right)

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


class Comparison(Expression):
    """Comparison between two arithmetic expressions; evaluates to a bool."""

    __slots__ = ("op", "left", "right")
    _FUNCTIONS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, op, left, right):
        if op not in self._FUNCTIONS:
            raise ModelError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, key, value):
        raise AttributeError("Comparison is immutable")

    def evaluate(self, values):
        return self._FUNCTIONS[self.op](self.left.evaluate(values), self.right.evaluate(values))

    def _collect_variables(self, out):
        self.left._collect_variables(out)
        self.right._collect_variables(out)

    def _key(self):
        return (self.op, self.left, self.right)

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


class BoolOp(Expression):
    """Boolean conjunction/disjunction of boolean expressions."""

    __slots__ = ("op", "operands")

    def __init__(self, op, operands):
        if op not in ("and", "or"):
            raise ModelError(f"unknown boolean operator {op!r}")
        flattened = []
        for operand in operands:
            operand = _as_expression(operand)
            if isinstance(operand, BoolOp) and operand.op == op:
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operands", tuple(flattened))

    def __setattr__(self, key, value):
        raise AttributeError("BoolOp is immutable")

    def evaluate(self, values):
        results = (operand.evaluate(values) for operand in self.operands)
        if self.op == "and":
            return all(results)
        return any(results)

    def _collect_variables(self, out):
        for operand in self.operands:
            operand._collect_variables(out)

    def _key(self):
        return (self.op, self.operands)

    def __str__(self):
        joiner = f" {self.op} "
        return "(" + joiner.join(str(op) for op in self.operands) + ")"


class NotOp(Expression):
    """Boolean negation of a boolean expression."""

    __slots__ = ("operand",)

    def __init__(self, operand):
        object.__setattr__(self, "operand", _as_expression(operand))

    def __setattr__(self, key, value):
        raise AttributeError("NotOp is immutable")

    def evaluate(self, values):
        return not self.operand.evaluate(values)

    def _collect_variables(self, out):
        self.operand._collect_variables(out)

    def _key(self):
        return self.operand

    def __str__(self):
        return f"(not {self.operand})"


class Ite(Expression):
    """Conditional expression ``ite(condition, then, otherwise)``.

    The condition must be a boolean expression; the branches may be of any
    type.  Useful for saturating counters, e.g. ``round := ite(round < cap,
    round + 1, round)``.
    """

    __slots__ = ("condition", "then", "otherwise")

    def __init__(self, condition, then, otherwise):
        object.__setattr__(self, "condition", _as_expression(condition))
        object.__setattr__(self, "then", _as_expression(then))
        object.__setattr__(self, "otherwise", _as_expression(otherwise))

    def __setattr__(self, key, value):
        raise AttributeError("Ite is immutable")

    def evaluate(self, values):
        if self.condition.evaluate(values):
            return self.then.evaluate(values)
        return self.otherwise.evaluate(values)

    def _collect_variables(self, out):
        self.condition._collect_variables(out)
        self.then._collect_variables(out)
        self.otherwise._collect_variables(out)

    def _key(self):
        return (self.condition, self.then, self.otherwise)

    def __str__(self):
        return f"ite({self.condition}, {self.then}, {self.otherwise})"


def ite(condition, then, otherwise):
    """Build a conditional expression (see :class:`Ite`)."""
    return Ite(condition, then, otherwise)


def var(variable):
    """Return an expression referring to ``variable``."""
    return VarRef(variable)


def const(value):
    """Return a constant expression."""
    return Const(value)
