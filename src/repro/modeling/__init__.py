"""Finite-domain variable modelling layer.

The paper's examples (bit transmission, muddy children, sequence
transmission, the variable-setting exercises) are naturally stated in terms
of *program variables* with small finite domains, agents that can observe a
subset of the variables, and actions that assign new values.  This package
provides that substrate:

* :class:`repro.modeling.variables.Variable` — a named finite-domain variable;
* :mod:`repro.modeling.expressions` — a tiny expression language over
  variables (comparisons, arithmetic, boolean connectives) that can be
  evaluated on states and compiled to propositional epistemic formulas;
* :class:`repro.modeling.state_space.State` and
  :class:`repro.modeling.state_space.StateSpace` — immutable assignments of
  values to variables, enumeration of the full state space and the induced
  propositional labelling (one proposition ``"x=v"`` per variable/value
  pair, plus the bare variable name for booleans);
* :class:`repro.modeling.state_space.Assignment` — simultaneous variable
  updates used as the effect of actions.
"""

from repro.modeling.variables import Variable, boolean, ranged, enumerated
from repro.modeling.expressions import (
    Expression,
    Const,
    VarRef,
    Ite,
    var,
    const,
    ite,
)
from repro.modeling.state_space import State, StateSpace, Assignment, atom_name

__all__ = [
    "Variable",
    "boolean",
    "ranged",
    "enumerated",
    "Expression",
    "Const",
    "VarRef",
    "Ite",
    "var",
    "const",
    "ite",
    "State",
    "StateSpace",
    "Assignment",
    "atom_name",
]
