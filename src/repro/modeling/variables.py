"""Finite-domain variables.

A :class:`Variable` couples a name with a finite, ordered domain of hashable
values.  Variables are immutable value objects; two variables are equal when
their names and domains coincide.
"""

from repro.util.errors import ModelError


class Variable:
    """A named variable ranging over a finite domain.

    Parameters
    ----------
    name:
        Non-empty identifier; also used to derive proposition names.
    domain:
        Iterable of hashable values; order is preserved and duplicates are
        rejected.
    """

    __slots__ = ("name", "domain", "_domain_set")

    def __init__(self, name, domain):
        if not isinstance(name, str) or not name:
            raise ModelError(f"variable name must be a non-empty string, got {name!r}")
        domain = tuple(domain)
        if not domain:
            raise ModelError(f"variable {name!r} must have a non-empty domain")
        domain_set = set(domain)
        if len(domain_set) != len(domain):
            raise ModelError(f"variable {name!r} has duplicate domain values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "_domain_set", frozenset(domain_set))

    def __setattr__(self, key, value):
        raise AttributeError("Variable is immutable")

    def contains(self, value):
        """Return ``True`` if ``value`` belongs to the domain."""
        return value in self._domain_set

    def check(self, value):
        """Return ``value`` if it belongs to the domain, else raise
        :class:`ModelError`."""
        if not self.contains(value):
            raise ModelError(
                f"value {value!r} is not in the domain of variable {self.name!r} "
                f"(domain: {list(self.domain)})"
            )
        return value

    @property
    def is_boolean(self):
        """``True`` when the domain is exactly the booleans ``False``/``True``
        (integer domains such as ``0..1`` are *not* boolean)."""
        return len(self.domain) == 2 and all(
            isinstance(value, bool) for value in self.domain
        )

    def __eq__(self, other):
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self):
        return hash((self.name, self.domain))

    def __repr__(self):
        return f"Variable({self.name!r}, domain={list(self.domain)})"

    def __str__(self):
        return self.name


def boolean(name):
    """Create a boolean variable (domain ``False, True``)."""
    return Variable(name, (False, True))


def ranged(name, low, high):
    """Create an integer variable with domain ``low..high`` inclusive."""
    if high < low:
        raise ModelError(f"empty range {low}..{high} for variable {name!r}")
    return Variable(name, tuple(range(low, high + 1)))


def enumerated(name, values):
    """Create a variable over an explicit list of values."""
    return Variable(name, tuple(values))
