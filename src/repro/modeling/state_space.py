"""States, state spaces and assignments over finite-domain variables.

A :class:`State` is an immutable total assignment of values to a fixed set of
variables.  A :class:`StateSpace` enumerates all states over its variables,
provides the propositional labelling used by the epistemic machinery (one
atom per variable/value pair; booleans use the bare name), and evaluates
constraints.  An :class:`Assignment` is a simultaneous update of some
variables by expressions, used as the effect of program actions.
"""

from itertools import product

from repro.modeling.expressions import BoolOp, Expression, _as_expression, atom_name_for
from repro.modeling.variables import Variable
from repro.util.errors import ModelError


def _conjuncts(expression):
    """Flatten the top-level conjunction of a boolean expression."""
    if isinstance(expression, BoolOp) and expression.op == "and":
        out = []
        for operand in expression.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expression]


def atom_name(variable, value):
    """Public alias of the canonical atom-name convention.

    ``atom_name(x, 3) == "x=3"``; for a boolean ``b``, ``atom_name(b, True)
    == "b"``.
    """
    return atom_name_for(variable, value)


class State:
    """An immutable assignment of values to all variables of a state space."""

    __slots__ = ("_values", "_key", "_hash")

    def __init__(self, values):
        items = tuple(sorted(values.items()))
        object.__setattr__(self, "_values", dict(items))
        object.__setattr__(self, "_key", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, key, value):
        raise AttributeError("State is immutable")

    def __getitem__(self, name):
        if isinstance(name, Variable):
            name = name.name
        try:
            return self._values[name]
        except KeyError:
            raise ModelError(f"state has no variable {name!r}") from None

    def get(self, name, default=None):
        if isinstance(name, Variable):
            name = name.name
        return self._values.get(name, default)

    def __contains__(self, name):
        if isinstance(name, Variable):
            name = name.name
        return name in self._values

    def as_dict(self):
        """Return a plain ``{name: value}`` dictionary copy."""
        return dict(self._values)

    def variables(self):
        """Return the variable names of this state (sorted)."""
        return tuple(name for name, _ in self._key)

    def restrict(self, names):
        """Return the sub-assignment over ``names`` as a hashable tuple.

        This is how agent *local states* are carved out of global states in
        the variable-based view: the local state of an agent is the
        restriction of the global assignment to the agent's observable
        variables.
        """
        resolved = tuple(
            (name.name if isinstance(name, Variable) else name) for name in names
        )
        return tuple((name, self[name]) for name in sorted(resolved))

    def update(self, changes):
        """Return a new state with ``changes`` (mapping name/Variable -> value)."""
        values = dict(self._values)
        for key, value in changes.items():
            name = key.name if isinstance(key, Variable) else key
            if name not in values:
                raise ModelError(f"cannot update unknown variable {name!r}")
            values[name] = value
        return State(values)

    def satisfies(self, expression):
        """Evaluate a boolean :class:`Expression` on this state."""
        return bool(expression.evaluate(self._values))

    def evaluate(self, expression):
        """Evaluate an arbitrary :class:`Expression` on this state."""
        return expression.evaluate(self._values)

    def __eq__(self, other):
        if not isinstance(other, State):
            return NotImplemented
        return self._key == other._key

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(f"{name}={value!r}" for name, value in self._key)
        return f"State({inner})"

    def __str__(self):
        return "{" + ", ".join(f"{name}={value}" for name, value in self._key) + "}"


class Assignment:
    """A simultaneous update ``x1 := e1, ..., xk := ek``.

    All right-hand sides are evaluated on the *old* state before any variable
    is written, so ``Assignment({x: y, y: x})`` swaps the two variables.
    """

    __slots__ = ("updates",)

    def __init__(self, updates=None, **by_name):
        resolved = {}
        updates = dict(updates or {})
        for key, value in list(updates.items()) + list(by_name.items()):
            name = key.name if isinstance(key, Variable) else key
            resolved[name] = _as_expression(value)
        object.__setattr__(self, "updates", resolved)

    def __setattr__(self, key, value):
        raise AttributeError("Assignment is immutable")

    def apply(self, state):
        """Return the state obtained by applying the update to ``state``."""
        old_values = state.as_dict()
        changes = {name: expr.evaluate(old_values) for name, expr in self.updates.items()}
        return state.update(changes)

    def written_variables(self):
        """Return the names of the variables written by the assignment."""
        return set(self.updates)

    def read_variables(self):
        """Return the :class:`Variable` objects read by the right-hand sides."""
        out = set()
        for expr in self.updates.values():
            out |= expr.variables()
        return out

    def __repr__(self):
        inner = ", ".join(f"{name} := {expr}" for name, expr in sorted(self.updates.items()))
        return f"Assignment({inner})" if inner else "Assignment(skip)"

    __str__ = __repr__


SKIP = Assignment({})
"""The empty assignment (the ``skip`` action of the paper's programs)."""


class StateSpace:
    """The full finite state space over a set of variables.

    Provides enumeration of states, the induced propositional labelling and
    validation of concrete states.
    """

    def __init__(self, variables):
        variables = list(variables)
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ModelError("duplicate variable names in state space")
        for variable in variables:
            if not isinstance(variable, Variable):
                raise ModelError(f"expected Variable, got {variable!r}")
        self._variables = tuple(variables)
        self._by_name = {v.name: v for v in variables}

    @property
    def variables(self):
        return self._variables

    def variable(self, name):
        """Return the variable called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"state space has no variable {name!r}") from None

    def __contains__(self, name):
        if isinstance(name, Variable):
            return name.name in self._by_name
        return name in self._by_name

    def size(self):
        """Return the number of states (product of domain sizes)."""
        total = 1
        for variable in self._variables:
            total *= len(variable.domain)
        return total

    def state(self, values=None, **by_name):
        """Build and validate a :class:`State` from a value mapping."""
        merged = {}
        values = dict(values or {})
        for key, value in list(values.items()) + list(by_name.items()):
            name = key.name if isinstance(key, Variable) else key
            if name not in self._by_name:
                raise ModelError(f"state space has no variable {name!r}")
            merged[name] = self._by_name[name].check(value)
        missing = set(self._by_name) - set(merged)
        if missing:
            raise ModelError(f"missing values for variables {sorted(missing)}")
        return State(merged)

    def states(self, constraint=None):
        """Iterate over all states, optionally only those satisfying a
        boolean :class:`Expression` constraint.

        Constrained enumeration *prunes*: the constraint is split into its
        top-level conjuncts, each conjunct is scheduled at the last variable
        of its support (:meth:`Expression.variables`, memoised), and a
        partial assignment that already falsifies a scheduled conjunct cuts
        the whole subtree of combinations extending it.  For constraints
        that fix or restrict early variables this turns the full
        ``∏|domain|`` sweep into a walk of the satisfying prefix tree.  The
        yield order is the same as the unpruned product enumeration.

        Scheduling changes the order conjuncts are *evaluated* in, so a
        conjunct that raises on some assignments may be reached where the
        original left-to-right short-circuit would have skipped it; when a
        scheduled check raises, the affected subtree therefore falls back
        to evaluating the whole constraint on each full state — the exact
        pre-pruning semantics, including which error surfaces.  (The one
        remaining divergence is benign: a state on which the old
        evaluation would have *raised* can be pruned away by a falsified
        conjunct scheduled earlier than the raising one.)
        """
        names = [v.name for v in self._variables]
        domains = [v.domain for v in self._variables]
        if constraint is None:
            for combo in product(*domains):
                yield State(dict(zip(names, combo)))
            return
        schedule = self._conjunct_schedule(constraint, names)
        if schedule is None:  # a constant conjunct is false: nothing satisfies
            return
        yield from self._pruned_states(names, domains, schedule, constraint, {}, 0)

    @staticmethod
    def _conjunct_schedule(constraint, names):
        """Map each top-level conjunct of ``constraint`` to the index of the
        last variable of its support (where it becomes decidable).

        Returns ``{index: [conjuncts]}``, or ``None`` when a variable-free
        conjunct already evaluates to false.  Conjuncts mentioning variables
        outside the space are scheduled at the last variable, so they raise
        the same :class:`~repro.util.errors.ModelError` as evaluating them
        on a full state did before pruning existed.
        """
        position = {name: index for index, name in enumerate(names)}
        schedule = {}
        for conjunct in _conjuncts(constraint):
            support = conjunct.variables()
            if not support:
                if not conjunct.evaluate({}):
                    return None
                continue
            indices = [position.get(v.name) for v in support]
            last = len(names) - 1 if None in indices else max(indices)
            if last < 0:  # no variables to schedule under: surface the error now
                conjunct.evaluate({})
            schedule.setdefault(last, []).append(conjunct)
        return schedule

    def _pruned_states(self, names, domains, schedule, constraint, values, depth):
        if depth == len(names):
            yield State(dict(values))
            return
        name = names[depth]
        checks = schedule.get(depth, ())
        for value in domains[depth]:
            values[name] = value
            try:
                keep = all(conjunct.evaluate(values) for conjunct in checks)
            except Exception:
                # A scheduled conjunct raised out of its original order:
                # re-enumerate this subtree with the exact semantics.
                yield from self._exact_states(names, domains, constraint, values, depth + 1)
                continue
            if keep:
                yield from self._pruned_states(
                    names, domains, schedule, constraint, values, depth + 1
                )
        del values[name]

    def _exact_states(self, names, domains, constraint, values, depth):
        """Unpruned enumeration of one subtree, evaluating the original
        constraint left-to-right on every full state (the fallback when a
        scheduled conjunct raises)."""
        if depth == len(names):
            state = State(dict(values))
            if state.satisfies(constraint):
                yield state
            return
        name = names[depth]
        for value in domains[depth]:
            values[name] = value
            yield from self._exact_states(names, domains, constraint, values, depth + 1)
        del values[name]

    def all_states(self, constraint=None):
        """Return the list of all states (optionally filtered)."""
        return list(self.states(constraint))

    def propositions(self):
        """Return the full set of atom names used by :meth:`labelling`."""
        atoms = set()
        for variable in self._variables:
            if variable.is_boolean:
                atoms.add(variable.name)
            else:
                for value in variable.domain:
                    atoms.add(atom_name(variable, value))
        return atoms

    def labelling(self, state):
        """Return the set of atoms true in ``state``.

        Boolean variables contribute their bare name when ``True``; all
        other variables contribute ``"name=value"``.
        """
        atoms = set()
        for variable in self._variables:
            value = state[variable.name]
            if variable.is_boolean:
                if value:
                    atoms.add(variable.name)
            else:
                atoms.add(atom_name(variable, value))
        return frozenset(atoms)

    def labelling_map(self, states):
        """Return ``{state: labelling}`` for the given states."""
        return {state: self.labelling(state) for state in states}

    def __repr__(self):
        return f"StateSpace({[v.name for v in self._variables]}, size={self.size()})"
