"""A small recursive-descent parser for the concrete formula syntax.

Grammar (lowest to highest precedence)::

    formula   ::= iff
    iff       ::= implies ( '<->' implies )*
    implies   ::= or ( '->' implies )?          # right associative
    or        ::= and ( '|' and )*
    and       ::= unary ( '&' unary )*
    unary     ::= '!' unary | 'not' unary
                | 'K' '[' agent ']' unary
                | 'M' '[' agent ']' unary
                | 'E' '[' agents ']' unary
                | 'C' '[' agents ']' unary
                | 'D' '[' agents ']' unary
                | atom
    atom      ::= 'true' | 'false' | IDENT | '(' formula ')'

Identifiers may contain letters, digits, ``_``, ``.``, ``=`` and ``'`` so that
proposition names such as ``x=3`` or ``rcvd.0`` read naturally.

Example::

    >>> from repro.logic import parse
    >>> str(parse("K[R] bit & !K[S] K[R] bit"))
    '(K[R] bit & !K[S] K[R] bit)'
"""

import re

from repro.logic.formula import (
    TRUE,
    FALSE,
    Prop,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Knows,
    Possible,
    EveryoneKnows,
    CommonKnows,
    DistributedKnows,
)
from repro.util.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<and>&&?|/\\)
  | (?P<or>\|\|?|\\/)
  | (?P<not>!|~)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.'=]*)
    """,
    re.VERBOSE,
)

_MODALITIES = {"K": Knows, "M": Possible}
_GROUP_MODALITIES = {"E": EveryoneKnows, "C": CommonKnows, "D": DistributedKnows}
_KEYWORDS = {"true", "false", "not", "and", "or", "implies"}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return f"_Token({self.kind!r}, {self.value!r}, {self.position})"


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", text=text, position=position
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.current
        self.index += 1
        return token

    def expect(self, kind):
        if self.current.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.current.value!r}",
                text=self.text,
                position=self.current.position,
            )
        return self.advance()

    # -- grammar ---------------------------------------------------------------

    def parse(self):
        formula = self.parse_iff()
        if self.current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}",
                text=self.text,
                position=self.current.position,
            )
        return formula

    def parse_iff(self):
        left = self.parse_implies()
        while self.current.kind == "iff":
            self.advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self):
        left = self.parse_or()
        if self.current.kind == "implies" or (
            self.current.kind == "ident" and self.current.value == "implies"
        ):
            self.advance()
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_or(self):
        operands = [self.parse_and()]
        while self.current.kind == "or" or (
            self.current.kind == "ident" and self.current.value == "or"
        ):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self):
        operands = [self.parse_unary()]
        while self.current.kind == "and" or (
            self.current.kind == "ident" and self.current.value == "and"
        ):
            self.advance()
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self):
        token = self.current
        if token.kind == "not" or (token.kind == "ident" and token.value == "not"):
            self.advance()
            return Not(self.parse_unary())
        if token.kind == "ident" and token.value in _MODALITIES and self._peek_bracket():
            self.advance()
            agent = self._parse_agent_list(single=True)[0]
            return _MODALITIES[token.value](agent, self.parse_unary())
        if token.kind == "ident" and token.value in _GROUP_MODALITIES and self._peek_bracket():
            self.advance()
            group = self._parse_agent_list(single=False)
            return _GROUP_MODALITIES[token.value](group, self.parse_unary())
        return self.parse_atom()

    def _peek_bracket(self):
        return self.tokens[self.index + 1].kind == "lbracket"

    def _parse_agent_list(self, single):
        self.expect("lbracket")
        agents = [self.expect("ident").value]
        while self.current.kind == "comma":
            self.advance()
            agents.append(self.expect("ident").value)
        self.expect("rbracket")
        if single and len(agents) != 1:
            raise ParseError(
                "single-agent modality takes exactly one agent",
                text=self.text,
                position=self.current.position,
            )
        return agents

    def parse_atom(self):
        token = self.current
        if token.kind == "lparen":
            self.advance()
            formula = self.parse_iff()
            self.expect("rparen")
            return formula
        if token.kind == "ident":
            self.advance()
            if token.value == "true":
                return TRUE
            if token.value == "false":
                return FALSE
            if token.value in _KEYWORDS:
                raise ParseError(
                    f"keyword {token.value!r} cannot be used as a proposition",
                    text=self.text,
                    position=token.position,
                )
            return Prop(token.value)
        raise ParseError(
            f"expected a formula, found {token.value!r}",
            text=self.text,
            position=token.position,
        )


def parse(text):
    """Parse ``text`` into a :class:`repro.logic.formula.Formula`.

    Raises :class:`repro.util.errors.ParseError` on malformed input.
    """
    if not isinstance(text, str):
        raise TypeError(f"parse expects a string, got {type(text).__name__}")
    return _Parser(text).parse()
