"""Abstract syntax of epistemic formulas.

Formulas are immutable, hashable trees.  The grammar is

.. code-block:: text

    phi ::= p | true | false | !phi | phi & phi | phi | phi
          | phi -> phi | phi <-> phi
          | K[a] phi | M[a] phi | E[G] phi | C[G] phi | D[G] phi

where ``p`` ranges over proposition names (strings), ``a`` over agent names
and ``G`` over non-empty groups of agent names.

Python operator overloading mirrors the connectives so formulas can be built
fluently::

    >>> from repro.logic import prop, knows
    >>> bit = prop("bit")
    >>> guard = knows("R", bit) & ~knows("S", knows("R", bit))
    >>> str(guard)
    '(K[R] bit & !K[S] K[R] bit)'
"""

from functools import reduce


class Formula:
    """Base class of all epistemic formulas.

    Subclasses are immutable value objects: equality and hashing are
    structural, and every construction canonicalises its arguments (e.g.
    groups of agents are stored as sorted tuples).
    """

    __slots__ = ("_hash",)

    # -- construction helpers -------------------------------------------------

    def __and__(self, other):
        return And((self, _as_formula(other)))

    def __rand__(self, other):
        return And((_as_formula(other), self))

    def __or__(self, other):
        return Or((self, _as_formula(other)))

    def __ror__(self, other):
        return Or((_as_formula(other), self))

    def __invert__(self):
        return Not(self)

    def __rshift__(self, other):
        """``phi >> psi`` builds the implication ``phi -> psi``."""
        return Implies(self, _as_formula(other))

    def implies(self, other):
        return Implies(self, _as_formula(other))

    def iff(self, other):
        return Iff(self, _as_formula(other))

    # -- structural queries ----------------------------------------------------

    def atoms(self):
        """Return the set of proposition names occurring in the formula."""
        result = set()
        self._collect_atoms(result)
        return result

    def agents(self):
        """Return the set of agent names occurring in knowledge modalities."""
        result = set()
        self._collect_agents(result)
        return result

    def subformulas(self):
        """Return all subformulas (including the formula itself) in a
        bottom-up order without duplicates."""
        seen = []
        seen_set = set()

        def visit(node):
            for child in node.children():
                visit(child)
            if node not in seen_set:
                seen_set.add(node)
                seen.append(node)

        visit(self)
        return seen

    def children(self):
        """Return the immediate subformulas."""
        return ()

    def is_propositional(self):
        """Return ``True`` if the formula contains no epistemic modality."""
        return not any(
            isinstance(sub, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows))
            for sub in self.subformulas()
        )

    def modal_depth(self):
        """Return the maximal nesting depth of epistemic modalities."""
        child_depth = max((child.modal_depth() for child in self.children()), default=0)
        if isinstance(self, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)):
            return child_depth + 1
        return child_depth

    def substitute(self, mapping):
        """Return the formula with propositions replaced according to
        ``mapping`` (proposition name -> :class:`Formula`)."""
        return self._substitute({name: _as_formula(value) for name, value in mapping.items()})

    # -- hooks for subclasses --------------------------------------------------

    def _collect_atoms(self, out):
        for child in self.children():
            child._collect_atoms(out)

    def _collect_agents(self, out):
        for child in self.children():
            child._collect_agents(out)

    def _substitute(self, mapping):
        raise NotImplementedError

    # -- value semantics -------------------------------------------------------

    def _key(self):
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            value = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self):
        return f"{type(self).__name__}({self._key()!r})"


def _as_formula(value):
    """Coerce strings and booleans into formulas; pass formulas through."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, str):
        return Prop(value)
    if value is True:
        return TRUE
    if value is False:
        return FALSE
    raise TypeError(f"cannot interpret {value!r} as a formula")


class Prop(Formula):
    """An atomic proposition, identified by its name."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise ValueError(f"proposition name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("Prop is immutable")

    def _key(self):
        return self.name

    def _collect_atoms(self, out):
        out.add(self.name)

    def _substitute(self, mapping):
        return mapping.get(self.name, self)

    def __str__(self):
        return self.name


class TrueFormula(Formula):
    """The constant ``true``."""

    __slots__ = ()

    def _key(self):
        return ()

    def _substitute(self, mapping):
        return self

    def __str__(self):
        return "true"


class FalseFormula(Formula):
    """The constant ``false``."""

    __slots__ = ()

    def _key(self):
        return ()

    def _substitute(self, mapping):
        return self

    def __str__(self):
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


class Not(Formula):
    """Negation ``!phi``."""

    __slots__ = ("operand",)

    def __init__(self, operand):
        object.__setattr__(self, "operand", _as_formula(operand))

    def __setattr__(self, key, value):
        raise AttributeError("Not is immutable")

    def children(self):
        return (self.operand,)

    def _key(self):
        return self.operand

    def _substitute(self, mapping):
        return Not(self.operand._substitute(mapping))

    def __str__(self):
        return f"!{self.operand}"


class _NaryConnective(Formula):
    """Shared implementation of the n-ary connectives ``&`` and ``|``."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands):
        flattened = []
        for operand in operands:
            operand = _as_formula(operand)
            if type(operand) is type(self):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ValueError(f"{type(self).__name__} requires at least one operand")
        object.__setattr__(self, "operands", tuple(flattened))

    def __setattr__(self, key, value):
        raise AttributeError("connectives are immutable")

    def children(self):
        return self.operands

    def _key(self):
        return self.operands

    def __str__(self):
        inner = f" {self._symbol} ".join(str(operand) for operand in self.operands)
        return f"({inner})"


class And(_NaryConnective):
    """Conjunction; nested conjunctions are flattened on construction."""

    __slots__ = ()
    _symbol = "&"

    def _substitute(self, mapping):
        return And(tuple(op._substitute(mapping) for op in self.operands))


class Or(_NaryConnective):
    """Disjunction; nested disjunctions are flattened on construction."""

    __slots__ = ()
    _symbol = "|"

    def _substitute(self, mapping):
        return Or(tuple(op._substitute(mapping) for op in self.operands))


class Implies(Formula):
    """Implication ``phi -> psi``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent, consequent):
        object.__setattr__(self, "antecedent", _as_formula(antecedent))
        object.__setattr__(self, "consequent", _as_formula(consequent))

    def __setattr__(self, key, value):
        raise AttributeError("Implies is immutable")

    def children(self):
        return (self.antecedent, self.consequent)

    def _key(self):
        return (self.antecedent, self.consequent)

    def _substitute(self, mapping):
        return Implies(
            self.antecedent._substitute(mapping), self.consequent._substitute(mapping)
        )

    def __str__(self):
        return f"({self.antecedent} -> {self.consequent})"


class Iff(Formula):
    """Bi-implication ``phi <-> psi``."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        object.__setattr__(self, "left", _as_formula(left))
        object.__setattr__(self, "right", _as_formula(right))

    def __setattr__(self, key, value):
        raise AttributeError("Iff is immutable")

    def children(self):
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)

    def _substitute(self, mapping):
        return Iff(self.left._substitute(mapping), self.right._substitute(mapping))

    def __str__(self):
        return f"({self.left} <-> {self.right})"


class _UnaryModality(Formula):
    """Shared implementation of the single-agent modalities ``K`` and ``M``."""

    __slots__ = ("agent", "operand")
    _symbol = "?"

    def __init__(self, agent, operand):
        if not isinstance(agent, str) or not agent:
            raise ValueError(f"agent name must be a non-empty string, got {agent!r}")
        object.__setattr__(self, "agent", agent)
        object.__setattr__(self, "operand", _as_formula(operand))

    def __setattr__(self, key, value):
        raise AttributeError("modalities are immutable")

    def children(self):
        return (self.operand,)

    def _key(self):
        return (self.agent, self.operand)

    def _collect_agents(self, out):
        out.add(self.agent)
        self.operand._collect_agents(out)

    def __str__(self):
        return f"{self._symbol}[{self.agent}] {self.operand}"


class Knows(_UnaryModality):
    """``K[a] phi`` — agent ``a`` knows ``phi``."""

    __slots__ = ()
    _symbol = "K"

    def _substitute(self, mapping):
        return Knows(self.agent, self.operand._substitute(mapping))


class Possible(_UnaryModality):
    """``M[a] phi`` — agent ``a`` considers ``phi`` possible (dual of ``K``)."""

    __slots__ = ()
    _symbol = "M"

    def _substitute(self, mapping):
        return Possible(self.agent, self.operand._substitute(mapping))


class _GroupModality(Formula):
    """Shared implementation of the group modalities ``E``, ``C`` and ``D``."""

    __slots__ = ("group", "operand")
    _symbol = "?"

    def __init__(self, group, operand):
        if isinstance(group, str):
            group = (group,)
        group = tuple(sorted(set(group)))
        if not group or not all(isinstance(a, str) and a for a in group):
            raise ValueError(f"group must be a non-empty collection of agent names, got {group!r}")
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "operand", _as_formula(operand))

    def __setattr__(self, key, value):
        raise AttributeError("modalities are immutable")

    def children(self):
        return (self.operand,)

    def _key(self):
        return (self.group, self.operand)

    def _collect_agents(self, out):
        out.update(self.group)
        self.operand._collect_agents(out)

    def __str__(self):
        return f"{self._symbol}[{','.join(self.group)}] {self.operand}"


class EveryoneKnows(_GroupModality):
    """``E[G] phi`` — every agent in ``G`` knows ``phi``."""

    __slots__ = ()
    _symbol = "E"

    def _substitute(self, mapping):
        return EveryoneKnows(self.group, self.operand._substitute(mapping))


class CommonKnows(_GroupModality):
    """``C[G] phi`` — ``phi`` is common knowledge among the agents in ``G``."""

    __slots__ = ()
    _symbol = "C"

    def _substitute(self, mapping):
        return CommonKnows(self.group, self.operand._substitute(mapping))


class DistributedKnows(_GroupModality):
    """``D[G] phi`` — ``phi`` is distributed knowledge among ``G``."""

    __slots__ = ()
    _symbol = "D"

    def _substitute(self, mapping):
        return DistributedKnows(self.group, self.operand._substitute(mapping))


# -- convenience constructors --------------------------------------------------


def prop(name):
    """Return the atomic proposition ``name``."""
    return Prop(name)


def knows(agent, formula):
    """Return ``K[agent] formula``."""
    return Knows(agent, formula)


def possible(agent, formula):
    """Return ``M[agent] formula``."""
    return Possible(agent, formula)


def conj(formulas):
    """Return the conjunction of ``formulas`` (``true`` if empty)."""
    formulas = [_as_formula(f) for f in formulas]
    if not formulas:
        return TRUE
    if len(formulas) == 1:
        return formulas[0]
    return reduce(lambda a, b: And((a, b)), formulas)


def disj(formulas):
    """Return the disjunction of ``formulas`` (``false`` if empty)."""
    formulas = [_as_formula(f) for f in formulas]
    if not formulas:
        return FALSE
    if len(formulas) == 1:
        return formulas[0]
    return reduce(lambda a, b: Or((a, b)), formulas)
