"""Epistemic logic: formulas, parsing, normal forms and satisfaction.

This package provides the logical language used by knowledge-based programs
(Fagin, Halpern, Moses, Vardi; PODC 1995): propositional logic extended with
the knowledge modalities ``K_a`` (agent ``a`` knows), its dual ``M_a`` (agent
``a`` considers possible), everyone-knows ``E_G``, common knowledge ``C_G``
and distributed knowledge ``D_G`` for groups of agents ``G``.

The main entry points are:

* the formula constructors in :mod:`repro.logic.formula`
  (:class:`Prop`, :class:`Not`, :class:`And`, :class:`Or`, :class:`Implies`,
  :class:`Iff`, :class:`Knows`, :class:`Possible`, :class:`EveryoneKnows`,
  :class:`CommonKnows`, :class:`DistributedKnows`);
* :func:`repro.logic.parser.parse` for the concrete syntax
  (``"K[R] bit & !K[S] K[R] bit"``);
* :func:`repro.logic.nnf.to_nnf` and :func:`repro.logic.nnf.simplify`;
* :func:`repro.logic.semantics.holds` /
  :func:`repro.logic.semantics.extension` for satisfaction over the epistemic
  (Kripke) structures of :mod:`repro.kripke`.
"""

from repro.logic.formula import (
    Formula,
    Prop,
    TrueFormula,
    FalseFormula,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Knows,
    Possible,
    EveryoneKnows,
    CommonKnows,
    DistributedKnows,
    TRUE,
    FALSE,
    prop,
    knows,
    possible,
    conj,
    disj,
)
from repro.logic.parser import parse
from repro.logic.nnf import to_nnf, simplify, is_in_nnf
from repro.logic.semantics import holds, extension, knowledge_depth

__all__ = [
    "Formula",
    "Prop",
    "TrueFormula",
    "FalseFormula",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Knows",
    "Possible",
    "EveryoneKnows",
    "CommonKnows",
    "DistributedKnows",
    "TRUE",
    "FALSE",
    "prop",
    "knows",
    "possible",
    "conj",
    "disj",
    "parse",
    "to_nnf",
    "simplify",
    "is_in_nnf",
    "holds",
    "extension",
    "knowledge_depth",
]
