"""Satisfaction of epistemic formulas over epistemic structures.

The semantics is the classical one recalled in the paper:

* ``K, w |= p`` iff ``p`` is in the labelling of ``w``;
* ``K, w |= K[a] phi`` iff ``phi`` holds in every world ``a`` considers
  possible at ``w``;
* ``M[a]`` is the dual (some accessible world satisfies ``phi``);
* ``E[G] phi`` iff every agent in ``G`` knows ``phi``;
* ``C[G] phi`` iff ``phi`` holds at every world reachable from ``w`` by any
  positive number of steps of the union of the ``G`` relations (equivalently,
  ``E``, ``E E``, ``E E E``, ... all hold);
* ``D[G] phi`` iff ``phi`` holds at every world accessible through the
  intersection of the ``G`` relations.

Evaluation is bottom-up over subformulas, computing the *extension* (set of
worlds satisfying each subformula) once.  The actual set computation is
delegated to the pluggable backends of :mod:`repro.engine` (big-int bitmasks
by default, explicit frozensets on request), and the per-structure
:class:`repro.engine.evaluator.Evaluator` keeps subformula extensions cached
across calls — repeated ``holds``/``extension`` queries against the same
structure, the inner loop of knowledge-based-program interpretation, pay for
each distinct subformula exactly once.
"""

def _evaluator_for(structure, backend=None):
    # Imported lazily: repro.engine itself imports repro.logic.formula, so a
    # module-level import here would close an import cycle whenever the
    # engine package is the first one loaded.
    from repro.engine.evaluator import evaluator_for

    return evaluator_for(structure, backend)


def holds(structure, world, formula):
    """Return ``True`` iff ``structure, world |= formula``.

    Raises :class:`repro.util.errors.ModelError` when ``world`` does not
    belong to the structure (validated by the evaluator).
    """
    return _evaluator_for(structure).holds(world, formula)


def extension(structure, formula, backend=None):
    """Return the set of worlds of ``structure`` satisfying ``formula``.

    ``backend`` selects the world-set backend (a name or a
    :class:`repro.engine.backend.SetBackend`); ``None`` uses the process
    default.  The result is a fresh mutable set — callers may modify it
    freely without affecting the evaluator's persistent cache.
    """
    return set(_evaluator_for(structure, backend).extension(formula))


def knowledge_depth(formula):
    """Alias for :meth:`Formula.modal_depth`, kept for API symmetry."""
    return formula.modal_depth()
