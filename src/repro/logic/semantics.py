"""Satisfaction of epistemic formulas over epistemic structures.

The semantics is the classical one recalled in the paper:

* ``K, w |= p`` iff ``p`` is in the labelling of ``w``;
* ``K, w |= K[a] phi`` iff ``phi`` holds in every world ``a`` considers
  possible at ``w``;
* ``M[a]`` is the dual (some accessible world satisfies ``phi``);
* ``E[G] phi`` iff every agent in ``G`` knows ``phi``;
* ``C[G] phi`` iff ``phi`` holds at every world reachable from ``w`` by any
  positive number of steps of the union of the ``G`` relations (equivalently,
  ``E``, ``E E``, ``E E E``, ... all hold);
* ``D[G] phi`` iff ``phi`` holds at every world accessible through the
  intersection of the ``G`` relations.

Evaluation is bottom-up over subformulas, computing the *extension* (set of
worlds satisfying each subformula) once; this keeps the cost linear in
``|formula| * |worlds| * |relation|`` and makes the evaluator usable as the
inner loop of knowledge-based-program interpretation.
"""

from repro.logic.formula import (
    Prop,
    TrueFormula,
    FalseFormula,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Knows,
    Possible,
    EveryoneKnows,
    CommonKnows,
    DistributedKnows,
)
from repro.util.errors import FormulaError, ModelError


def holds(structure, world, formula):
    """Return ``True`` iff ``structure, world |= formula``."""
    if world not in structure:
        raise ModelError(f"world {world!r} does not belong to the structure")
    return world in extension(structure, formula)


def extension(structure, formula):
    """Return the set of worlds of ``structure`` satisfying ``formula``."""
    cache = {}
    return _extension(structure, formula, cache)


def knowledge_depth(formula):
    """Alias for :meth:`Formula.modal_depth`, kept for API symmetry."""
    return formula.modal_depth()


def _extension(structure, formula, cache):
    if formula in cache:
        return cache[formula]
    worlds = set(structure.worlds)

    if isinstance(formula, TrueFormula):
        result = worlds
    elif isinstance(formula, FalseFormula):
        result = set()
    elif isinstance(formula, Prop):
        result = {w for w in worlds if structure.label_holds(w, formula.name)}
    elif isinstance(formula, Not):
        result = worlds - _extension(structure, formula.operand, cache)
    elif isinstance(formula, And):
        result = set(worlds)
        for operand in formula.operands:
            result &= _extension(structure, operand, cache)
    elif isinstance(formula, Or):
        result = set()
        for operand in formula.operands:
            result |= _extension(structure, operand, cache)
    elif isinstance(formula, Implies):
        antecedent = _extension(structure, formula.antecedent, cache)
        consequent = _extension(structure, formula.consequent, cache)
        result = (worlds - antecedent) | consequent
    elif isinstance(formula, Iff):
        left = _extension(structure, formula.left, cache)
        right = _extension(structure, formula.right, cache)
        result = (left & right) | ((worlds - left) & (worlds - right))
    elif isinstance(formula, Knows):
        inner = _extension(structure, formula.operand, cache)
        result = {w for w in worlds if structure.accessible(formula.agent, w) <= inner}
    elif isinstance(formula, Possible):
        inner = _extension(structure, formula.operand, cache)
        result = {w for w in worlds if structure.accessible(formula.agent, w) & inner}
    elif isinstance(formula, EveryoneKnows):
        inner = _extension(structure, formula.operand, cache)
        result = set()
        for w in worlds:
            if all(structure.accessible(agent, w) <= inner for agent in formula.group):
                result.add(w)
    elif isinstance(formula, CommonKnows):
        inner = _extension(structure, formula.operand, cache)
        adjacency = structure.group_relation(formula.group, mode="union")
        result = set()
        for w in worlds:
            reachable = structure.reachable_via(adjacency, adjacency.get(w, frozenset()))
            if reachable <= inner:
                result.add(w)
    elif isinstance(formula, DistributedKnows):
        inner = _extension(structure, formula.operand, cache)
        adjacency = structure.group_relation(formula.group, mode="intersection")
        result = {w for w in worlds if adjacency.get(w, frozenset()) <= inner}
    else:
        raise FormulaError(f"cannot evaluate unknown formula node {formula!r}")

    cache[formula] = result
    return result
