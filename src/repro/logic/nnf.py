"""Negation normal form and light-weight simplification of formulas.

A formula is in *negation normal form* (NNF) when negation is only applied to
atomic propositions and the remaining connectives are ``&``, ``|`` and the
modalities ``K``, ``M``, ``E``, ``C``, ``D``.  Implications and
bi-implications are expanded.  The knowledge modalities are dualised as in
the paper: ``!K[a] phi`` becomes ``M[a] !phi`` and vice versa; for the group
modalities the dual of ``E``/``C``/``D`` is expressed through negation pushed
below the modality only where a proper dual exists (``E``), otherwise the
negation is kept directly above the modality (``C``/``D`` have no primitive
dual in the language; see :func:`to_nnf`).
"""

from repro.logic.formula import (
    TRUE,
    FALSE,
    Prop,
    TrueFormula,
    FalseFormula,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Knows,
    Possible,
    EveryoneKnows,
    CommonKnows,
    DistributedKnows,
    conj,
    disj,
)
from repro.util.errors import FormulaError


def to_nnf(formula):
    """Return an equivalent formula in negation normal form.

    Bi-implications are expanded to a conjunction of implications, and
    implications to disjunctions, before negations are pushed inward.
    Negations that reach a :class:`CommonKnows` or :class:`DistributedKnows`
    modality remain in place (the language has no primitive dual for them);
    such formulas still count as NNF for the purposes of
    :func:`is_in_nnf`.
    """
    return _nnf(formula, negate=False)


def _nnf(formula, negate):
    if isinstance(formula, TrueFormula):
        return FALSE if negate else TRUE
    if isinstance(formula, FalseFormula):
        return TRUE if negate else FALSE
    if isinstance(formula, Prop):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return Or(parts) if negate else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negate) for op in formula.operands)
        return And(parts) if negate else Or(parts)
    if isinstance(formula, Implies):
        # phi -> psi  ==  !phi | psi
        rewritten = Or((Not(formula.antecedent), formula.consequent))
        return _nnf(rewritten, negate)
    if isinstance(formula, Iff):
        rewritten = And(
            (
                Or((Not(formula.left), formula.right)),
                Or((Not(formula.right), formula.left)),
            )
        )
        return _nnf(rewritten, negate)
    if isinstance(formula, Knows):
        if negate:
            return Possible(formula.agent, _nnf(formula.operand, True))
        return Knows(formula.agent, _nnf(formula.operand, False))
    if isinstance(formula, Possible):
        if negate:
            return Knows(formula.agent, _nnf(formula.operand, True))
        return Possible(formula.agent, _nnf(formula.operand, False))
    if isinstance(formula, EveryoneKnows):
        # E[G] phi == /\_{a in G} K[a] phi; its dual is \/_{a in G} M[a] !phi.
        if negate:
            return disj([Possible(agent, _nnf(formula.operand, True)) for agent in formula.group])
        return EveryoneKnows(formula.group, _nnf(formula.operand, False))
    if isinstance(formula, (CommonKnows, DistributedKnows)):
        inner = _nnf(formula.operand, False)
        rebuilt = type(formula)(formula.group, inner)
        return Not(rebuilt) if negate else rebuilt
    raise FormulaError(f"cannot normalise unknown formula node {formula!r}")


def is_in_nnf(formula):
    """Return ``True`` if negation only occurs in front of propositions or in
    front of ``C``/``D`` modalities (which have no primitive dual)."""
    if isinstance(formula, Not):
        return isinstance(formula.operand, (Prop, CommonKnows, DistributedKnows)) and is_in_nnf(
            formula.operand
        )
    if isinstance(formula, (Implies, Iff)):
        return False
    return all(is_in_nnf(child) for child in formula.children())


def simplify(formula):
    """Perform constant propagation and idempotence simplification.

    The result is logically equivalent to the input.  Simplification is
    syntactic only (no satisfiability checks): ``true``/``false`` constants
    are propagated through every connective and modality, duplicate operands
    of ``&``/``|`` are removed, and double negation is eliminated.
    """
    if isinstance(formula, (Prop, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, And):
        operands = []
        for operand in formula.operands:
            operand = simplify(operand)
            if isinstance(operand, FalseFormula):
                return FALSE
            if isinstance(operand, TrueFormula):
                continue
            if isinstance(operand, And):
                operands.extend(operand.operands)
            else:
                operands.append(operand)
        unique = []
        for operand in operands:
            if operand not in unique:
                unique.append(operand)
        return conj(unique)
    if isinstance(formula, Or):
        operands = []
        for operand in formula.operands:
            operand = simplify(operand)
            if isinstance(operand, TrueFormula):
                return TRUE
            if isinstance(operand, FalseFormula):
                continue
            if isinstance(operand, Or):
                operands.extend(operand.operands)
            else:
                operands.append(operand)
        unique = []
        for operand in operands:
            if operand not in unique:
                unique.append(operand)
        return disj(unique)
    if isinstance(formula, Implies):
        antecedent = simplify(formula.antecedent)
        consequent = simplify(formula.consequent)
        if isinstance(antecedent, FalseFormula) or isinstance(consequent, TrueFormula):
            return TRUE
        if isinstance(antecedent, TrueFormula):
            return consequent
        if isinstance(consequent, FalseFormula):
            return simplify(Not(antecedent))
        return Implies(antecedent, consequent)
    if isinstance(formula, Iff):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == right:
            return TRUE
        if isinstance(left, TrueFormula):
            return right
        if isinstance(right, TrueFormula):
            return left
        if isinstance(left, FalseFormula):
            return simplify(Not(right))
        if isinstance(right, FalseFormula):
            return simplify(Not(left))
        return Iff(left, right)
    if isinstance(formula, Knows):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return TRUE
        return Knows(formula.agent, inner)
    if isinstance(formula, Possible):
        inner = simplify(formula.operand)
        if isinstance(inner, FalseFormula):
            return FALSE
        return Possible(formula.agent, inner)
    if isinstance(formula, EveryoneKnows):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return TRUE
        return EveryoneKnows(formula.group, inner)
    if isinstance(formula, CommonKnows):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return TRUE
        return CommonKnows(formula.group, inner)
    if isinstance(formula, DistributedKnows):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return TRUE
        return DistributedKnows(formula.group, inner)
    raise FormulaError(f"cannot simplify unknown formula node {formula!r}")
