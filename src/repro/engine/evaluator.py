"""A persistent, backend-parametric evaluator for epistemic formulas.

The original ``repro.logic.semantics.extension`` rebuilt its subformula
cache on every call; the :class:`Evaluator` keeps that cache alive for the
lifetime of the (immutable) structure, so repeated ``holds``/``extension``
queries — the inner loop of knowledge-based-program interpretation, where
the same guard is evaluated at every local state of every agent — pay for
each distinct subformula exactly once.

Because :class:`repro.kripke.structure.EpistemicStructure` is immutable,
the cache never needs invalidation; :func:`evaluator_for` memoises one
evaluator per (structure, backend) pair in ``structure.engine_cache``.
"""

from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro.engine.backend import resolve_backend
from repro.util.errors import FormulaError, ModelError


class Evaluator:
    """Evaluates formulas over one structure through one set backend.

    Parameters
    ----------
    structure:
        The :class:`repro.kripke.structure.EpistemicStructure` to evaluate
        over.
    backend:
        A :class:`repro.engine.backend.SetBackend`, a backend name, or
        ``None`` for the process default.

    The evaluator memoises the extension of every subformula it ever sees
    (in backend representation) in ``self.cache``; the cache is exposed so
    callers can inspect or :meth:`clear_cache` it explicitly.
    """

    __slots__ = ("structure", "backend", "cache", "_frozen")

    def __init__(self, structure, backend=None):
        self.structure = structure
        self.backend = resolve_backend(backend)
        self.cache = {}
        self._frozen = {}

    # -- public API --------------------------------------------------------------

    def holds(self, world, formula):
        """Return ``True`` iff ``structure, world |= formula``."""
        if world not in self.structure:
            raise ModelError(f"world {world!r} does not belong to the structure")
        return self.backend.contains(self.structure, self.extension_ws(formula), world)

    def extension(self, formula):
        """Return the extension of ``formula`` as a frozenset of worlds."""
        result = self._frozen.get(formula)
        if result is None:
            result = self.backend.to_frozenset(self.structure, self.extension_ws(formula))
            self._frozen[formula] = result
        return result

    def extension_ws(self, formula):
        """Return the extension in the backend's world-set representation."""
        cached = self.cache.get(formula)
        if cached is None and formula not in self.cache:
            cached = self._compute(formula)
            self.cache[formula] = cached
        return cached

    def clear_cache(self):
        """Drop all memoised extensions (never required for correctness)."""
        self.cache.clear()
        self._frozen.clear()

    # -- evaluation --------------------------------------------------------------

    def _compute(self, formula):
        structure = self.structure
        backend = self.backend
        if isinstance(formula, TrueFormula):
            return backend.universe(structure)
        if isinstance(formula, FalseFormula):
            return backend.empty(structure)
        if isinstance(formula, Prop):
            return backend.prop_extension(structure, formula.name)
        if isinstance(formula, Not):
            return backend.complement(structure, self.extension_ws(formula.operand))
        if isinstance(formula, And):
            result = backend.universe(structure)
            for operand in formula.operands:
                result = backend.intersection(result, self.extension_ws(operand))
            return result
        if isinstance(formula, Or):
            result = backend.empty(structure)
            for operand in formula.operands:
                result = backend.union(result, self.extension_ws(operand))
            return result
        if isinstance(formula, Implies):
            antecedent = self.extension_ws(formula.antecedent)
            consequent = self.extension_ws(formula.consequent)
            return backend.union(backend.complement(structure, antecedent), consequent)
        if isinstance(formula, Iff):
            left = self.extension_ws(formula.left)
            right = self.extension_ws(formula.right)
            return backend.union(
                backend.intersection(left, right),
                backend.intersection(
                    backend.complement(structure, left),
                    backend.complement(structure, right),
                ),
            )
        if isinstance(
            formula, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)
        ):
            return apply_epistemic(
                backend, structure, formula, self.extension_ws(formula.operand)
            )
        raise FormulaError(f"cannot evaluate unknown formula node {formula!r}")

    def __repr__(self):
        return (
            f"Evaluator({self.structure!r}, backend={self.backend.name!r}, "
            f"|cache|={len(self.cache)})"
        )


def apply_epistemic(backend, structure, formula, inner):
    """Apply one epistemic operator to a precomputed operand world-set.

    This is the single operator-to-backend dispatch, shared by
    :meth:`Evaluator._compute` and the CTLK model checker (whose operands
    may be temporal and are therefore evaluated elsewhere).  ``inner`` must
    be in ``backend``'s world-set representation.
    """
    if isinstance(formula, Knows):
        return backend.knows(structure, formula.agent, inner)
    if isinstance(formula, Possible):
        return backend.possible(structure, formula.agent, inner)
    if isinstance(formula, EveryoneKnows):
        return backend.everyone_knows(structure, formula.group, inner)
    if isinstance(formula, CommonKnows):
        return backend.common_knows(structure, formula.group, inner)
    if isinstance(formula, DistributedKnows):
        return backend.distributed_knows(structure, formula.group, inner)
    raise FormulaError(f"not an epistemic operator: {formula!r}")


def evaluator_for(structure, backend=None):
    """Return the memoised evaluator of ``structure`` for ``backend``.

    One evaluator is kept per (structure, backend name) pair in
    ``structure.engine_cache``; with ``backend=None`` the *current* process
    default is used, so switching the default (see
    :func:`repro.engine.backend.use_backend`) transparently selects a
    different, independently cached evaluator.
    """
    backend = resolve_backend(backend)
    cache = structure.engine_cache
    key = ("evaluator", backend.name)
    evaluator = cache.get(key)
    if evaluator is None:
        evaluator = Evaluator(structure, backend)
        cache[key] = evaluator
    return evaluator


def local_guard_value(evaluator, witness_worlds, guard):
    """Evaluate a *local* guard over a class of indistinguishable worlds.

    Returns ``True``/``False`` when the guard takes that uniform value on
    every world of ``witness_worlds``, and ``None`` when it differs between
    them (i.e. the guard is not local to the observing agent).  This is the
    backend fast path for knowledge-based-program guard evaluation: one
    set difference instead of a per-world membership scan.

    The *empty* witness class is vacuously uniform — the guard holds at
    every world of the class, there being none — so it yields ``True``,
    consistent with the paper's convention that ``K_a phi`` is true at a
    local state no reachable global state carries.  (It previously fell
    through to ``False`` because the all-inside test ran after the
    none-inside test.)
    """
    structure = evaluator.structure
    backend = evaluator.backend
    witnesses = backend.from_worlds(structure, witness_worlds)
    extension = evaluator.extension_ws(guard)
    outside = backend.difference(witnesses, extension)
    if backend.is_empty(outside):
        return True
    if backend.is_empty(backend.intersection(witnesses, extension)):
        return False
    return None
