"""A persistent, backend-parametric evaluator for epistemic formulas.

The original ``repro.logic.semantics.extension`` rebuilt its subformula
cache on every call; the :class:`Evaluator` keeps that cache alive for the
lifetime of the (immutable) structure, so repeated ``holds``/``extension``
queries — the inner loop of knowledge-based-program interpretation, where
the same guard is evaluated at every local state of every agent — pay for
each distinct subformula exactly once.

Because :class:`repro.kripke.structure.EpistemicStructure` is immutable,
the cache never needs invalidation; :func:`evaluator_for` memoises one
evaluator per (structure, backend) pair in ``structure.engine_cache``.

:meth:`Evaluator.extensions` is the batched entry point: it hash-conses the
shared subformulas of many formulas once, groups their epistemic nodes by
``(operator, agent/group)`` and dispatches each group through a single
backend ``*_many`` call — one stacked matrix pass on the matrix backend, a
plain scalar loop elsewhere.
"""

from repro.logic.formula import (
    And,
    CommonKnows,
    DistributedKnows,
    EveryoneKnows,
    FalseFormula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Possible,
    Prop,
    TrueFormula,
)
from repro import obs as _obs
from repro import resilience as _res
from repro.engine.backend import resolve_backend
from repro.obs.registry import attach_aliases
from repro.util.errors import FormulaError, ModelError


class Evaluator:
    """Evaluates formulas over one structure through one set backend.

    Parameters
    ----------
    structure:
        The :class:`repro.kripke.structure.EpistemicStructure` to evaluate
        over.
    backend:
        A :class:`repro.engine.backend.SetBackend`, a backend name, or
        ``None`` for the process default.

    The evaluator memoises the extension of every subformula it ever sees
    (in backend representation) in ``self.cache``; the cache is exposed so
    callers can inspect or :meth:`clear_cache` it explicitly.
    """

    __slots__ = (
        "structure",
        "backend",
        "cache",
        "_frozen",
        "_hits",
        "_misses",
        "_cache_clears",
        "_formulas_high_water",
    )

    def __init__(self, structure, backend=None):
        self.structure = structure
        self.backend = resolve_backend(backend)
        self.cache = {}
        self._frozen = {}
        self._hits = 0
        self._misses = 0
        self._cache_clears = 0
        self._formulas_high_water = 0

    # -- public API --------------------------------------------------------------

    def holds(self, world, formula):
        """Return ``True`` iff ``structure, world |= formula``."""
        if world not in self.structure:
            raise ModelError(f"world {world!r} does not belong to the structure")
        return self.backend.contains(self.structure, self.extension_ws(formula), world)

    def extension(self, formula):
        """Return the extension of ``formula`` as a frozenset of worlds."""
        result = self._frozen.get(formula)
        if result is None:
            result = self.backend.to_frozenset(self.structure, self.extension_ws(formula))
            self._frozen[formula] = result
        return result

    def extension_ws(self, formula):
        """Return the extension in the backend's world-set representation."""
        cached = self.cache.get(formula)
        if cached is None and formula not in self.cache:
            self._misses += 1
            cached = self._compute(formula)
            self.cache[formula] = cached
        else:
            self._hits += 1
        return cached

    def extensions(self, formulas):
        """Return the extensions of many formulas (as frozensets, in order),
        evaluating their epistemic subformulas in *batches*.

        Structurally equal subformulas shared between the inputs are
        hash-consed through the cache and computed once; the uncached
        epistemic nodes of the combined formula DAG are grouped by
        ``(operator, agent/group)`` and each group is dispatched through one
        backend ``*_many`` call (innermost modalities first, so operands are
        always ready).  On backends with a true batch implementation (the
        matrix backend) ``k`` same-relation modal operands cost one stacked
        pass instead of ``k`` scalar passes; elsewhere the generic fallback
        makes this exactly equivalent to per-formula :meth:`extension`.
        """
        formulas = list(formulas)
        self.extensions_ws(formulas)
        return [self.extension(formula) for formula in formulas]

    def extensions_ws(self, formulas):
        """Batched :meth:`extension_ws`: returns backend world-sets, in order.

        See :meth:`extensions` for the batching strategy.
        """
        formulas = list(formulas)
        backend = self.backend
        structure = self.structure
        is_cached = self.cache.__contains__
        while True:
            # One pass per epistemic nesting level, innermost first: a node
            # is *ready* when the uncached part of its operand contains no
            # epistemic node, so its operand extension is pure boolean work
            # over already-batched results.
            groups = {}
            memo = {}
            for formula in formulas:
                collect_ready_epistemic(formula, is_cached, groups, memo)
            if not groups:
                break
            for nodes in groups.values():
                if _res.ACTIVE:
                    # Batch boundaries are the evaluator's safe points
                    # (deadline/cancellation only — batches are not
                    # fixed-point iterations and hold no single manager).
                    bud = _res.current_budget()
                    if bud is not None:
                        bud.tick("evaluator.batch")
                if _obs.ENABLED:
                    _obs.counter("evaluator.batch.groups")
                    _obs.counter("evaluator.batch.operands", len(nodes))
                    _obs.event(
                        "evaluator.batch",
                        operator=type(nodes[0]).__name__,
                        size=len(nodes),
                        backend=backend.name,
                    )
                inners = [self.extension_ws(node.operand) for node in nodes]
                results = apply_epistemic_many(backend, structure, nodes, inners)
                for node, result in zip(nodes, results):
                    self.cache[node] = result
        return [self.extension_ws(formula) for formula in formulas]

    def cache_info(self):
        """Sizes and accounting of the evaluator's memoisation layers,
        keyed by the canonical metric schema of :mod:`repro.obs.registry`.

        ``memo.formulas`` counts cached subformula extensions (in backend
        representation), ``memo.frozensets`` the materialised frozenset
        results; ``memo.formulas.high_water`` is the largest formula memo
        ever held and *survives* :meth:`clear_cache` (it used to be
        implicitly lost with the cache); ``cache.hits``/``cache.misses``
        account every :meth:`extension_ws` lookup and ``cache.clears``
        explicit cache drops.  ``backend`` is the backend's own
        per-structure operation-cache report (:meth:`SetBackend.cache_info`
        — the shared BDD apply caches for the ``"bdd"`` backend, empty for
        backends without operation caches).  The historical ``formulas`` /
        ``frozensets`` keys remain as aliases for one release.
        """
        info = {
            "memo.formulas": len(self.cache),
            "memo.formulas.high_water": max(self._formulas_high_water, len(self.cache)),
            "memo.frozensets": len(self._frozen),
            "cache.hits": self._hits,
            "cache.misses": self._misses,
            "cache.clears": self._cache_clears,
            "backend": self.backend.cache_info(self.structure),
        }
        return attach_aliases(
            info, {"memo.formulas": "formulas", "memo.frozensets": "frozensets"}
        )

    def clear_cache(self):
        """Drop all memoised extensions, and the backend's recomputable
        operation caches (never required for correctness).  The lookup
        counters and the formula-memo high-water mark survive."""
        self._formulas_high_water = max(self._formulas_high_water, len(self.cache))
        self._cache_clears += 1
        self.cache.clear()
        self._frozen.clear()
        self.backend.clear_cache(self.structure)

    # -- evaluation --------------------------------------------------------------

    def _compute(self, formula):
        structure = self.structure
        backend = self.backend
        if isinstance(formula, TrueFormula):
            return backend.universe(structure)
        if isinstance(formula, FalseFormula):
            return backend.empty(structure)
        if isinstance(formula, Prop):
            return backend.prop_extension(structure, formula.name)
        if isinstance(formula, Not):
            return backend.complement(structure, self.extension_ws(formula.operand))
        if isinstance(formula, And):
            result = backend.universe(structure)
            for operand in formula.operands:
                result = backend.intersection(result, self.extension_ws(operand))
            return result
        if isinstance(formula, Or):
            result = backend.empty(structure)
            for operand in formula.operands:
                result = backend.union(result, self.extension_ws(operand))
            return result
        if isinstance(formula, Implies):
            antecedent = self.extension_ws(formula.antecedent)
            consequent = self.extension_ws(formula.consequent)
            return backend.union(backend.complement(structure, antecedent), consequent)
        if isinstance(formula, Iff):
            left = self.extension_ws(formula.left)
            right = self.extension_ws(formula.right)
            return backend.union(
                backend.intersection(left, right),
                backend.intersection(
                    backend.complement(structure, left),
                    backend.complement(structure, right),
                ),
            )
        if isinstance(
            formula, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)
        ):
            return apply_epistemic(
                backend, structure, formula, self.extension_ws(formula.operand)
            )
        raise FormulaError(f"cannot evaluate unknown formula node {formula!r}")

    def __repr__(self):
        return (
            f"Evaluator({self.structure!r}, backend={self.backend.name!r}, "
            f"|cache|={len(self.cache)})"
        )


def apply_epistemic(backend, structure, formula, inner):
    """Apply one epistemic operator to a precomputed operand world-set.

    This is the single operator-to-backend dispatch, shared by
    :meth:`Evaluator._compute` and the CTLK model checker (whose operands
    may be temporal and are therefore evaluated elsewhere).  ``inner`` must
    be in ``backend``'s world-set representation.
    """
    if _obs.ENABLED:
        _obs.counter(f"dispatch.{backend.name}.scalar")
    if isinstance(formula, Knows):
        return backend.knows(structure, formula.agent, inner)
    if isinstance(formula, Possible):
        return backend.possible(structure, formula.agent, inner)
    if isinstance(formula, EveryoneKnows):
        return backend.everyone_knows(structure, formula.group, inner)
    if isinstance(formula, CommonKnows):
        return backend.common_knows(structure, formula.group, inner)
    if isinstance(formula, DistributedKnows):
        return backend.distributed_knows(structure, formula.group, inner)
    raise FormulaError(f"not an epistemic operator: {formula!r}")


def _batch_key(formula):
    """The grouping key of an epistemic node for batched dispatch: nodes with
    the same operator and agent (or group) evaluate against the same relation
    and can share one ``*_many`` backend pass."""
    if isinstance(formula, (Knows, Possible)):
        return (type(formula), formula.agent)
    if isinstance(formula, (EveryoneKnows, CommonKnows, DistributedKnows)):
        return (type(formula), formula.group)
    raise FormulaError(f"not an epistemic operator: {formula!r}")


def collect_ready_epistemic(formula, is_cached, groups, memo):
    """Collect the deepest uncached epistemic nodes of ``formula`` into
    ``groups`` (keyed by :func:`_batch_key`); return ``True`` iff the
    uncached part of ``formula`` contains any uncached epistemic node.

    A node is *ready* when the uncached part of its operand contains no
    epistemic node, so evaluating the operand involves no further epistemic
    dispatch — calling this once per batching round yields the innermost
    pending modality level.  ``is_cached`` abstracts the caller's cache
    (:attr:`Evaluator.cache` membership, the CTLK checker's extension
    cache), so the evaluator and the model checker share one walk; ``memo``
    de-duplicates shared subformulas within one pass, which also keeps each
    group free of structural duplicates.
    """
    state = memo.get(formula)
    if state is not None:
        return state
    if is_cached(formula):
        memo[formula] = False
        return False
    if isinstance(
        formula, (Knows, Possible, EveryoneKnows, CommonKnows, DistributedKnows)
    ):
        if not collect_ready_epistemic(formula.operand, is_cached, groups, memo):
            groups.setdefault(_batch_key(formula), []).append(formula)
        memo[formula] = True
        return True
    pending = False
    for child in formula.children():
        if collect_ready_epistemic(child, is_cached, groups, memo):
            pending = True
    memo[formula] = pending
    return pending


def apply_epistemic_many(backend, structure, formulas, inners):
    """Apply one *group* of identical epistemic operators to precomputed
    operand world-sets in a single backend batch call.

    All formulas must share the same operator type and agent/group (i.e. the
    same :func:`_batch_key`); ``inners`` are the operand extensions in
    ``backend`` representation, in formula order.  This is the batched
    counterpart of :func:`apply_epistemic`, shared by
    :meth:`Evaluator.extensions_ws` and the CTLK model checker (whose
    operands may be temporal and are therefore evaluated by the checker).
    """
    if _obs.ENABLED:
        _obs.counter(f"dispatch.{backend.name}.batched", len(formulas))
    head = formulas[0]
    if isinstance(head, Knows):
        return backend.knows_many(structure, head.agent, inners)
    if isinstance(head, Possible):
        return backend.possible_many(structure, head.agent, inners)
    if isinstance(head, EveryoneKnows):
        return backend.everyone_knows_many(structure, head.group, inners)
    if isinstance(head, CommonKnows):
        return backend.common_knows_many(structure, head.group, inners)
    if isinstance(head, DistributedKnows):
        return backend.distributed_knows_many(structure, head.group, inners)
    raise FormulaError(f"not an epistemic operator: {head!r}")


def evaluator_for(structure, backend=None):
    """Return the memoised evaluator of ``structure`` for ``backend``.

    One evaluator is kept per (structure, backend name) pair in
    ``structure.engine_cache``; with ``backend=None`` the *current* process
    default is used, so switching the default (see
    :func:`repro.engine.backend.use_backend`) transparently selects a
    different, independently cached evaluator.
    """
    backend = resolve_backend(backend)
    cache = structure.engine_cache
    key = ("evaluator", backend.name)
    evaluator = cache.get(key)
    if evaluator is None:
        evaluator = Evaluator(structure, backend)
        cache[key] = evaluator
    return evaluator


def local_guard_value(evaluator, witness_worlds, guard):
    """Evaluate a *local* guard over a class of indistinguishable worlds.

    Returns ``True``/``False`` when the guard takes that uniform value on
    every world of ``witness_worlds``, and ``None`` when it differs between
    them (i.e. the guard is not local to the observing agent).  This is the
    backend fast path for knowledge-based-program guard evaluation: one
    set difference instead of a per-world membership scan.

    The *empty* witness class is vacuously uniform — the guard holds at
    every world of the class, there being none — so it yields ``True``,
    consistent with the paper's convention that ``K_a phi`` is true at a
    local state no reachable global state carries.  (It previously fell
    through to ``False`` because the all-inside test ran after the
    none-inside test.)
    """
    structure = evaluator.structure
    backend = evaluator.backend
    witnesses = backend.from_worlds(structure, witness_worlds)
    extension = evaluator.extension_ws(guard)
    outside = backend.difference(witnesses, extension)
    if backend.is_empty(outside):
        return True
    if backend.is_empty(backend.intersection(witnesses, extension)):
        return False
    return None
