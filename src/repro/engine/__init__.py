"""The evaluation engine: indexed world universes and pluggable set backends.

This package is the performance core of the library.  Every layer that
manipulates sets of worlds — formula satisfaction (:mod:`repro.logic.semantics`),
structure operations (:mod:`repro.kripke.operations`), group-knowledge
analysis (:mod:`repro.analysis.common_knowledge`), CTLK model checking
(:mod:`repro.temporal.ctlk`) and knowledge-based-program interpretation
(:mod:`repro.interpretation`) — routes its world-set computation through a
:class:`repro.engine.backend.SetBackend`:

* :class:`~repro.engine.backend.BitsetBackend` (the default) represents
  world-sets as big-int bitmasks over the dense world index every
  :class:`repro.kripke.structure.EpistemicStructure` assigns at
  construction time;
* :class:`~repro.engine.backend.FrozensetBackend` preserves the original
  explicit ``frozenset`` evaluation and serves as the semantic baseline;
* :class:`~repro.engine.matrix.MatrixBackend` (``"matrix"``) vectorises the
  epistemic operators as NumPy boolean matrix algebra; it is loaded lazily
  and only listed by :func:`available_backends` when NumPy is importable;
* :class:`~repro.symbolic.backend_bdd.SymbolicBackend` (``"bdd"``)
  represents world-sets as ROBDDs over a ``ceil(log2 |W|)``-variable
  encoding (:mod:`repro.symbolic`) and the epistemic operators as
  relational products and BDD fixed points; pure Python, always available,
  with cost scaling in BDD size rather than world count.

The backend set is open: :func:`register_backend` registers a factory under
a name, optionally gated on an availability predicate, and every consumer
of :func:`available_backends` — the equivalence test-suite, the benchmark
harness, CI — picks the new backend up automatically.

Select a backend per call (``extension(structure, phi, backend="frozenset")``),
per process (:func:`set_default_backend`, or the ``REPRO_SET_BACKEND``
environment variable), or lexically (:func:`use_backend`).  The persistent
:class:`~repro.engine.evaluator.Evaluator` memoises subformula extensions
for the lifetime of a structure; obtain the shared instance with
:func:`evaluator_for`.
"""

from repro.engine.backend import (
    BitsetBackend,
    FrozensetBackend,
    SetBackend,
    available_backends,
    backend_available,
    backend_by_name,
    get_default_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    set_default_backend,
    unregister_backend,
    use_backend,
)
from repro.engine.evaluator import (
    Evaluator,
    apply_epistemic,
    apply_epistemic_many,
    collect_ready_epistemic,
    evaluator_for,
    local_guard_value,
)

# ``MatrixBackend`` is deliberately NOT in ``__all__``: a star-import would
# resolve it through ``__getattr__`` and pull NumPy in eagerly (and fail
# outright in NumPy-less environments).  Import it explicitly.
__all__ = [
    "SetBackend",
    "FrozensetBackend",
    "BitsetBackend",
    "available_backends",
    "backend_available",
    "backend_by_name",
    "get_default_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "set_default_backend",
    "unregister_backend",
    "use_backend",
    "Evaluator",
    "apply_epistemic",
    "apply_epistemic_many",
    "collect_ready_epistemic",
    "evaluator_for",
    "local_guard_value",
]


def __getattr__(name):
    # ``MatrixBackend`` lives in a module that imports NumPy at load time,
    # so it is exposed lazily: ``from repro.engine import MatrixBackend``
    # works when NumPy is installed, while a plain ``import repro.engine``
    # never touches NumPy.
    if name == "MatrixBackend":
        from repro.engine.matrix import MatrixBackend

        return MatrixBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
