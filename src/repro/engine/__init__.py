"""The evaluation engine: indexed world universes and pluggable set backends.

This package is the performance core of the library.  Every layer that
manipulates sets of worlds — formula satisfaction (:mod:`repro.logic.semantics`),
structure operations (:mod:`repro.kripke.operations`), group-knowledge
analysis (:mod:`repro.analysis.common_knowledge`), CTLK model checking
(:mod:`repro.temporal.ctlk`) and knowledge-based-program interpretation
(:mod:`repro.interpretation`) — routes its world-set computation through a
:class:`repro.engine.backend.SetBackend`:

* :class:`~repro.engine.backend.BitsetBackend` (the default) represents
  world-sets as big-int bitmasks over the dense world index every
  :class:`repro.kripke.structure.EpistemicStructure` assigns at
  construction time;
* :class:`~repro.engine.backend.FrozensetBackend` preserves the original
  explicit ``frozenset`` evaluation and serves as the semantic baseline.

Select a backend per call (``extension(structure, phi, backend="frozenset")``),
per process (:func:`set_default_backend`, or the ``REPRO_SET_BACKEND``
environment variable), or lexically (:func:`use_backend`).  The persistent
:class:`~repro.engine.evaluator.Evaluator` memoises subformula extensions
for the lifetime of a structure; obtain the shared instance with
:func:`evaluator_for`.
"""

from repro.engine.backend import (
    BitsetBackend,
    FrozensetBackend,
    SetBackend,
    available_backends,
    backend_by_name,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.evaluator import (
    Evaluator,
    apply_epistemic,
    evaluator_for,
    local_guard_value,
)

__all__ = [
    "SetBackend",
    "FrozensetBackend",
    "BitsetBackend",
    "available_backends",
    "backend_by_name",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "Evaluator",
    "apply_epistemic",
    "evaluator_for",
    "local_guard_value",
]
