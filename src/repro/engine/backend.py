"""Pluggable world-set backends.

Every epistemic computation in the library bottoms out in algebra over
*world-sets* — subsets of the (finite) world universe of an
:class:`repro.kripke.structure.EpistemicStructure`.  A :class:`SetBackend`
fixes one concrete machine representation for those subsets together with
the handful of primitive operations the evaluator needs:

* boolean algebra (union, intersection, difference, complement);
* the modal images ``knows``/``possible`` (universal/existential
  quantification over per-agent accessibility);
* the group operators ``everyone_knows``/``distributed_knows`` (union /
  intersection of relations) and the transitive-closure based
  ``common_knows``;
* ``reachable`` — closure of a set of worlds under accessibility, used for
  generated substructures;
* batched forms of the modal and group operators (``knows_many``,
  ``possible_many``, ``everyone_knows_many``, ``common_knows_many``,
  ``distributed_knows_many``) that apply one operator to many operand
  world-sets against the same relation.  :class:`SetBackend` provides a
  generic scalar-loop fallback, so every backend supports the batch API;
  backends whose representation allows it (the matrix backend) override
  them with a true multi-operand pass.

Four backends ship with the library:

:class:`FrozensetBackend`
    Represents a world-set as a ``frozenset`` of world identifiers and
    mirrors the original, per-world explicit-set evaluator.  It is the
    compatibility baseline the equivalence tests compare against.

:class:`BitsetBackend`
    Represents a world-set as a Python big integer: world ``i`` (in the
    dense index order assigned at structure construction) corresponds to bit
    ``1 << i``.  Per-agent accessibility becomes an array of masks, boolean
    algebra becomes ``&``/``|``, the modal operators become per-world mask
    tests and common knowledge becomes a backward fixed-point over masks
    instead of a breadth-first search per world.  This is the fast default.

:class:`repro.engine.matrix.MatrixBackend`
    Represents a world-set as a NumPy boolean vector and per-agent
    accessibility as a dense boolean adjacency matrix; the modal operators
    are vectorised matrix products with no per-world Python loop.  It is
    registered lazily and gated on NumPy being importable — this module
    never imports NumPy itself.

:class:`repro.symbolic.backend_bdd.SymbolicBackend`
    The symbolic backend (``"bdd"``): world-sets as ROBDD nodes over a
    ``ceil(log2 |W|)``-variable encoding of the dense world index, modal
    operators as relational products against relation BDDs, group/common
    knowledge and reachability as BDD fixed points.  Its cost scales with
    BDD size rather than ``|W|``, and the kernel is pure Python, so the
    backend is always available (registered lazily, no optional
    dependency).

Backends are registered through :func:`register_backend`, which takes a
*factory* (instantiated on first request) and an optional availability
predicate, so optional-dependency backends cost nothing until used and
disappear cleanly from :func:`available_backends` when their dependency is
missing.

Backends are stateless; all per-structure derived data (masks, proposition
extensions, group relations) is memoised in ``structure.engine_cache``,
which lives and dies with the (immutable) structure, so no invalidation is
ever needed.
"""

import os
from contextlib import contextmanager

from repro import obs as _obs
from repro.util.errors import EngineError

# -- per-structure derived data -----------------------------------------------------
#
# All helpers below memoise in ``structure.engine_cache`` under keys namespaced
# by a short tag, so the two backends and the evaluator can share one dict.


def _group_key(group):
    return frozenset(group)


def accessibility_masks(structure, agent):
    """Return agent ``agent``'s accessibility as a list of bitmasks.

    Entry ``i`` is the mask of worlds accessible from ``structure.worlds[i]``.
    """
    cache = structure.engine_cache
    key = ("acc_masks", agent)
    masks = cache.get(key)
    if masks is None:
        index_of = structure.index_of
        masks = []
        for world in structure.worlds:
            mask = 0
            for successor in structure.accessible(agent, world):
                mask |= 1 << index_of(successor)
            masks.append(mask)
        cache[key] = masks
    return masks


def group_masks(structure, group, mode):
    """Return the per-world masks of a group relation (union or intersection).

    The intersection over an *empty* group is the full relation (every world
    sees every world), matching
    :meth:`repro.kripke.structure.EpistemicStructure.group_relation`.
    """
    cache = structure.engine_cache
    key = ("group_masks", _group_key(group), mode)
    masks = cache.get(key)
    if masks is None:
        n = len(structure)
        per_agent = [accessibility_masks(structure, agent) for agent in group]
        if mode == "union":
            masks = [0] * n
            for agent_masks in per_agent:
                masks = [m | a for m, a in zip(masks, agent_masks)]
        elif mode == "intersection":
            if not per_agent:
                full = (1 << n) - 1
                masks = [full] * n
            else:
                masks = list(per_agent[0])
                for agent_masks in per_agent[1:]:
                    masks = [m & a for m, a in zip(masks, agent_masks)]
        else:
            raise EngineError(f"unknown group relation mode {mode!r}")
        cache[key] = masks
    return masks


def proposition_masks(structure):
    """Return the mapping ``proposition name -> bitmask of worlds``."""
    cache = structure.engine_cache
    masks = cache.get("prop_masks")
    if masks is None:
        masks = {}
        for index, world in enumerate(structure.worlds):
            bit = 1 << index
            for name in structure.labels(world):
                masks[name] = masks.get(name, 0) | bit
        cache["prop_masks"] = masks
    return masks


def _bits(mask):
    """Yield the indices of the set bits of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _box_mask(masks, forbidden):
    """Universal modal image: the worlds whose successor mask avoids
    ``forbidden`` entirely (``[R] phi`` with ``forbidden = ~extension``)."""
    result = 0
    bit = 1
    for mask in masks:
        if not (mask & forbidden):
            result |= bit
        bit <<= 1
    return result


def _diamond_mask(masks, inner):
    """Existential modal image: the worlds with some successor in ``inner``."""
    result = 0
    bit = 1
    for mask in masks:
        if mask & inner:
            result |= bit
        bit <<= 1
    return result


class SetBackend:
    """Protocol of a world-set backend.

    A backend turns subsets of a structure's worlds into an opaque
    *world-set* value (``ws`` below) and implements the primitive operations
    the :class:`repro.engine.evaluator.Evaluator` composes.  Implementations
    must be stateless: any derived per-structure data belongs in
    ``structure.engine_cache``.
    """

    name = "abstract"

    # -- conversions ---------------------------------------------------------------

    def from_worlds(self, structure, worlds):
        raise NotImplementedError

    def to_frozenset(self, structure, ws):
        raise NotImplementedError

    def universe(self, structure):
        raise NotImplementedError

    def empty(self, structure):
        raise NotImplementedError

    # -- boolean algebra ------------------------------------------------------------

    def union(self, a, b):
        raise NotImplementedError

    def intersection(self, a, b):
        raise NotImplementedError

    def difference(self, a, b):
        raise NotImplementedError

    def complement(self, structure, ws):
        raise NotImplementedError

    # -- queries --------------------------------------------------------------------

    def contains(self, structure, ws, world):
        raise NotImplementedError

    def is_empty(self, ws):
        raise NotImplementedError

    def size(self, ws):
        raise NotImplementedError

    def equals(self, a, b):
        """Return ``True`` iff two world-sets (of the same structure) are
        equal.  The default ``==`` is correct for scalar representations
        (frozensets, int bitmasks); array-valued backends must override it,
        since their ``==`` is elementwise."""
        return a == b

    # -- epistemic operators ----------------------------------------------------------

    def prop_extension(self, structure, name):
        raise NotImplementedError

    def knows(self, structure, agent, inner):
        """Worlds whose full ``agent``-accessibility lies inside ``inner``."""
        raise NotImplementedError

    def possible(self, structure, agent, inner):
        """Worlds with some ``agent``-accessible world inside ``inner``."""
        raise NotImplementedError

    def everyone_knows(self, structure, group, inner):
        raise NotImplementedError

    def common_knows(self, structure, group, inner):
        raise NotImplementedError

    def distributed_knows(self, structure, group, inner):
        raise NotImplementedError

    # -- batched epistemic operators ---------------------------------------------------
    #
    # Each ``*_many`` method applies one modal operator to a whole *batch* of
    # operand world-sets against the same agent/group relation and returns the
    # list of results in operand order.  The default implementations below are
    # the generic scalar-loop fallback, correct for every backend; a backend
    # whose representation supports it (the matrix backend stacks the operands
    # as columns of a bit-packed ``n x k`` matrix) overrides them with a true
    # multi-operand pass.  ``Evaluator.extensions`` groups the epistemic nodes
    # of a formula batch by ``(operator, agent/group)`` and dispatches each
    # group through exactly one of these calls.

    def knows_many(self, structure, agent, inners):
        """Batched :meth:`knows` over a list of operand world-sets."""
        return [self.knows(structure, agent, inner) for inner in inners]

    def possible_many(self, structure, agent, inners):
        """Batched :meth:`possible` over a list of operand world-sets."""
        return [self.possible(structure, agent, inner) for inner in inners]

    def everyone_knows_many(self, structure, group, inners):
        """Batched :meth:`everyone_knows` over a list of operand world-sets."""
        return [self.everyone_knows(structure, group, inner) for inner in inners]

    def common_knows_many(self, structure, group, inners):
        """Batched :meth:`common_knows` over a list of operand world-sets."""
        return [self.common_knows(structure, group, inner) for inner in inners]

    def distributed_knows_many(self, structure, group, inners):
        """Batched :meth:`distributed_knows` over a list of operand world-sets."""
        return [self.distributed_knows(structure, group, inner) for inner in inners]

    # -- reachability ------------------------------------------------------------------

    def reachable(self, structure, start_worlds, agents=None):
        """Closure of ``start_worlds`` under the union of the given agents'
        relations (all agents by default), including the start worlds."""
        raise NotImplementedError

    # -- observability -----------------------------------------------------------------

    def cache_info(self, structure):
        """Sizes of the backend's per-structure caches, as a dict.

        The default backends keep only derived data that is proportional to
        the structure (masks, matrices) and report nothing; backends with
        *operation* caches that grow with use — the BDD backend's shared
        ``ite``/apply memo tables — override this so long-lived evaluators
        are observable (see :meth:`Evaluator.cache_info`)."""
        return {}

    def clear_cache(self, structure):
        """Drop the backend's recomputable per-structure operation caches.

        A no-op by default; the BDD backend clears its manager's operation
        memos (never the unique table, so world-set values stay valid).
        Never required for correctness."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class FrozensetBackend(SetBackend):
    """World-sets as ``frozenset`` objects — the reference implementation.

    This backend reproduces the original explicit-set evaluator exactly and
    serves as the semantic baseline for
    ``tests/test_engine_backends.py``.
    """

    name = "frozenset"

    def from_worlds(self, structure, worlds):
        return frozenset(worlds)

    def to_frozenset(self, structure, ws):
        return ws

    def universe(self, structure):
        cache = structure.engine_cache
        result = cache.get("fs_universe")
        if result is None:
            result = frozenset(structure.worlds)
            cache["fs_universe"] = result
        return result

    def empty(self, structure):
        return frozenset()

    def union(self, a, b):
        return a | b

    def intersection(self, a, b):
        return a & b

    def difference(self, a, b):
        return a - b

    def complement(self, structure, ws):
        return self.universe(structure) - ws

    def contains(self, structure, ws, world):
        return world in ws

    def is_empty(self, ws):
        return not ws

    def size(self, ws):
        return len(ws)

    def prop_extension(self, structure, name):
        return frozenset(
            world for world in structure.worlds if structure.label_holds(world, name)
        )

    def knows(self, structure, agent, inner):
        return frozenset(
            world
            for world in structure.worlds
            if structure.accessible(agent, world) <= inner
        )

    def possible(self, structure, agent, inner):
        return frozenset(
            world
            for world in structure.worlds
            if structure.accessible(agent, world) & inner
        )

    def everyone_knows(self, structure, group, inner):
        return frozenset(
            world
            for world in structure.worlds
            if all(structure.accessible(agent, world) <= inner for agent in group)
        )

    def common_knows(self, structure, group, inner):
        adjacency = structure.group_relation(group, mode="union")
        result = []
        for world in structure.worlds:
            reachable = structure.reachable_via(
                adjacency, adjacency.get(world, frozenset())
            )
            if reachable <= inner:
                result.append(world)
        return frozenset(result)

    def distributed_knows(self, structure, group, inner):
        adjacency = structure.group_relation(group, mode="intersection")
        return frozenset(
            world
            for world in structure.worlds
            if adjacency.get(world, frozenset()) <= inner
        )

    def reachable(self, structure, start_worlds, agents=None):
        if agents is None:
            agents = structure.agents
        frontier = list(start_worlds)
        seen = set(frontier)
        while frontier:
            world = frontier.pop()
            for agent in agents:
                for successor in structure.accessible(agent, world):
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
        return frozenset(seen)


class BitsetBackend(SetBackend):
    """World-sets as Python big-int bitmasks over the dense world index.

    Bit ``i`` stands for ``structure.worlds[i]``.  Set algebra is machine-word
    arithmetic, the modal operators are per-world mask tests against the
    memoised accessibility-mask arrays, and common knowledge is a backward
    least fixed point (``worlds from which a ~phi world is reachable``)
    computed for *all* worlds at once instead of one BFS per world.
    """

    name = "bitset"

    def from_worlds(self, structure, worlds):
        index_of = structure.index_of
        mask = 0
        for world in worlds:
            mask |= 1 << index_of(world)
        return mask

    def to_frozenset(self, structure, ws):
        world_at = structure.worlds
        return frozenset(world_at[i] for i in _bits(ws))

    def universe(self, structure):
        return (1 << len(structure)) - 1

    def empty(self, structure):
        return 0

    def union(self, a, b):
        return a | b

    def intersection(self, a, b):
        return a & b

    def difference(self, a, b):
        return a & ~b

    def complement(self, structure, ws):
        return self.universe(structure) & ~ws

    def contains(self, structure, ws, world):
        return bool((ws >> structure.index_of(world)) & 1)

    def is_empty(self, ws):
        return ws == 0

    def size(self, ws):
        return ws.bit_count()

    def prop_extension(self, structure, name):
        return proposition_masks(structure).get(name, 0)

    def knows(self, structure, agent, inner):
        masks = accessibility_masks(structure, agent)
        return _box_mask(masks, self.universe(structure) & ~inner)

    def possible(self, structure, agent, inner):
        return _diamond_mask(accessibility_masks(structure, agent), inner)

    def everyone_knows(self, structure, group, inner):
        # E[G] phi holds at w iff the union of the group's accessibilities
        # from w lies inside the extension of phi.
        masks = group_masks(structure, group, "union")
        return _box_mask(masks, self.universe(structure) & ~inner)

    def common_knows(self, structure, group, inner):
        masks = group_masks(structure, group, "union")
        bad = self.universe(structure) & ~inner
        # Least fixed point: worlds from which some ~phi world is reachable
        # in >= 0 steps of the union relation.
        tainted = bad
        iterations = 0
        while True:
            iterations += 1
            added = _diamond_mask(masks, tainted) & ~tainted
            if not added:
                break
            tainted |= added
        if _obs.ENABLED:
            _obs.counter("fixpoint.iterations", iterations)
            _obs.event(
                "fixpoint",
                loop="common_knowledge",
                backend=self.name,
                iterations=iterations,
            )
        # C[G] phi fails exactly at the worlds with a successor in `tainted`
        # (a path of length >= 1 to a ~phi world).
        return _box_mask(masks, tainted)

    def distributed_knows(self, structure, group, inner):
        masks = group_masks(structure, group, "intersection")
        return _box_mask(masks, self.universe(structure) & ~inner)

    def reachable(self, structure, start_worlds, agents=None):
        if agents is None:
            agents = structure.agents
        masks = group_masks(structure, tuple(agents), "union")
        seen = self.from_worlds(structure, start_worlds)
        frontier = seen
        iterations = 0
        while frontier:
            iterations += 1
            if _obs.ENABLED:
                _obs.event(
                    "fixpoint.iter",
                    loop="reachable",
                    backend=self.name,
                    iteration=iterations,
                    frontier=frontier.bit_count(),
                )
            successors = 0
            for i in _bits(frontier):
                successors |= masks[i]
            frontier = successors & ~seen
            seen |= frontier
        if _obs.ENABLED:
            _obs.counter("fixpoint.iterations", iterations)
            _obs.event(
                "fixpoint", loop="reachable", backend=self.name, iterations=iterations
            )
        return seen


# -- backend registry and default selection ------------------------------------------
#
# The registry maps names to *factories* rather than instances, so a backend
# whose implementation needs an optional dependency (the NumPy-based matrix
# backend) costs nothing until it is first requested: its module is imported
# and its instance constructed lazily by :func:`backend_by_name`.  An
# ``available`` predicate gates registration-time optional dependencies —
# an unavailable backend stays registered (so error messages can name it)
# but is hidden from :func:`available_backends` and refuses instantiation.


class _BackendEntry:
    __slots__ = ("factory", "available", "instance")

    def __init__(self, factory, available):
        self.factory = factory
        self.available = available
        self.instance = None


_REGISTRY = {}


def register_backend(name, factory, available=None, replace=False):
    """Register a world-set backend under ``name``.

    Parameters
    ----------
    name:
        The registry key; what :func:`resolve_backend` and the
        ``REPRO_SET_BACKEND`` environment variable accept.
    factory:
        Zero-argument callable returning a :class:`SetBackend` instance.
        Called at most once, on first request (lazy instantiation) — heavy
        imports belong inside the factory, not at registration time.
    available:
        Optional zero-argument predicate; when it returns falsy (or raises)
        the backend is hidden from :func:`available_backends` and
        :func:`backend_by_name` raises :class:`EngineError` for it.  Use it
        to gate backends on optional dependencies.
    replace:
        Allow overwriting an existing registration (default ``False``).
    """
    if not replace and name in _REGISTRY:
        raise EngineError(f"set backend {name!r} is already registered")
    _REGISTRY[name] = _BackendEntry(factory, available)


def unregister_backend(name):
    """Remove a registered backend (primarily for tests and plugins).

    The process default backend cannot be unregistered.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise EngineError(f"unknown set backend {name!r}")
    if "_default_backend" in globals() and _default_backend is entry.instance:
        raise EngineError(f"cannot unregister the current default backend {name!r}")
    del _REGISTRY[name]


def backend_available(name):
    """Return ``True`` iff ``name`` is registered and its availability
    predicate (if any) passes."""
    entry = _REGISTRY.get(name)
    if entry is None:
        return False
    if entry.available is None:
        return True
    try:
        return bool(entry.available())
    except Exception:
        return False


def registered_backends():
    """Return the names of all registered backends, available or not."""
    return sorted(_REGISTRY)


def available_backends():
    """Return the names of the registered backends that are usable in this
    environment (optional-dependency backends are filtered out when their
    dependency is missing)."""
    return sorted(name for name in _REGISTRY if backend_available(name))


def backend_by_name(name):
    """Return the backend called ``name``, instantiating it on first use."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise EngineError(
            f"unknown set backend {name!r}; available: {available_backends()}"
        )
    if entry.instance is None:
        if not backend_available(name):
            raise EngineError(
                f"set backend {name!r} is registered but not available in this "
                f"environment (missing optional dependency?); "
                f"available: {available_backends()}"
            )
        entry.instance = entry.factory()
    return entry.instance


def resolve_backend(backend):
    """Coerce ``None`` (the default), a name or a backend instance into a
    backend instance."""
    if backend is None:
        return _default_backend
    if isinstance(backend, str):
        return backend_by_name(backend)
    if isinstance(backend, SetBackend):
        return backend
    raise EngineError(f"cannot interpret {backend!r} as a set backend")


def get_default_backend():
    """Return the process-wide default backend (bitset unless overridden)."""
    return _default_backend


def set_default_backend(backend):
    """Set the process-wide default backend; returns the previous default.

    ``backend`` may be a name (``"bitset"``, ``"frozenset"``) or a
    :class:`SetBackend` instance.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = resolve_backend(backend)
    return previous


@contextmanager
def use_backend(backend):
    """Context manager that temporarily switches the default backend."""
    previous = set_default_backend(backend)
    try:
        yield get_default_backend()
    finally:
        set_default_backend(previous)


# -- built-in registrations ----------------------------------------------------------


def _numpy_available():
    from importlib.util import find_spec

    return find_spec("numpy") is not None


def _matrix_factory():
    # Deferred import: this is the only place the engine touches
    # ``repro.engine.matrix`` (and hence NumPy), so importing this module
    # never pulls NumPy in unless the matrix backend is actually requested.
    from repro.engine.matrix import MatrixBackend

    return MatrixBackend()


def _bdd_factory():
    # Deferred import: the symbolic subsystem is pure Python (always
    # available), but its kernel and encoding modules are only loaded when
    # the backend is first requested.
    from repro.symbolic.backend_bdd import SymbolicBackend

    return SymbolicBackend()


register_backend(FrozensetBackend.name, FrozensetBackend)
register_backend(BitsetBackend.name, BitsetBackend)
register_backend("matrix", _matrix_factory, available=_numpy_available)
register_backend("bdd", _bdd_factory)

_default_backend = backend_by_name(os.environ.get("REPRO_SET_BACKEND", BitsetBackend.name))
