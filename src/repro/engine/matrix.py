"""Dense boolean-matrix world-set backend (NumPy).

A world-set over an ``n``-world structure is a NumPy boolean vector of
length ``n`` (entry ``i`` stands for ``structure.worlds[i]``, the same dense
index contract the bitset backend uses), and each agent's accessibility
relation is a dense ``n x n`` boolean adjacency matrix ``R`` with
``R[i, j] = True`` iff world ``j`` is accessible from world ``i``.

With that representation every epistemic operator is a single vectorised
expression over the boolean semiring, with no per-world Python loop
anywhere:

* ``possible`` (``M_a``) is the existential image ``R @ phi`` — world ``i``
  has some successor in ``phi`` iff row ``i`` of ``R`` meets ``phi``;
* ``knows`` (``K_a``) is the universal image ``~(R @ ~phi)`` — row ``i``
  lies inside ``phi`` iff it avoids ``~phi`` entirely;
* ``everyone_knows`` / ``distributed_knows`` are the same universal image
  over the elementwise union / intersection of the group's matrices;
* ``common_knows`` is a least fixed point of the existential image: grow
  the set of worlds from which a ``~phi`` world is reachable until stable,
  then take one universal step;
* ``reachable`` iterates the forward image ``R.T @ frontier`` (successors
  of a set are the union of its rows);
* the batch operators (``knows_many`` and friends) stack many operand
  vectors as the columns of one ``n x k`` matrix and evaluate every operand
  in a single bit-packed pass per modal step (:func:`_image_many`), which is
  what makes multi-guard workloads (knowledge-based-program interpretation,
  knowledge censuses) cost one matrix traversal per operator group instead
  of one per guard.

The semiring product ``R @ x`` itself is evaluated through a bit-packed
form of the matrix (:func:`packed_group_matrix`): each row is packed into
64-bit words, so the image is one word-parallel ``AND`` followed by a
row-wise ``any`` — about an order of magnitude faster than NumPy's boolean
``matmul`` at ~1000 worlds, which is what keeps the matrix backend
competitive with the big-int bitset engine on modal-operator-heavy
workloads while staying fully vectorised.

This module imports NumPy at module level and is therefore only imported
lazily, by the registry factory in :mod:`repro.engine.backend`, when the
``matrix`` backend is first requested; ``import repro.engine`` alone never
touches NumPy.

Per-structure derived data (adjacency matrices, group matrices, proposition
vectors) is memoised in ``structure.engine_cache`` like the other backends'
data; shared cached arrays are marked read-only so no caller can corrupt
them through an aliased result.
"""

import numpy as np

from repro.engine.backend import SetBackend
from repro.util.errors import EngineError


def _group_key(group):
    return frozenset(group)


def adjacency_matrix(structure, agent):
    """Return agent ``agent``'s accessibility as a read-only ``n x n``
    boolean matrix (rows = source worlds, columns = successors)."""
    cache = structure.engine_cache
    key = ("np_adj", agent)
    matrix = cache.get(key)
    if matrix is None:
        n = len(structure)
        index_of = structure.index_of
        matrix = np.zeros((n, n), dtype=bool)
        for i, world in enumerate(structure.worlds):
            for successor in structure.accessible(agent, world):
                matrix[i, index_of(successor)] = True
        matrix.setflags(write=False)
        cache[key] = matrix
    return matrix


def group_matrix(structure, group, mode):
    """Return the adjacency matrix of a group relation (union or
    intersection of the members' matrices).

    As everywhere in the library, the intersection over an *empty* group is
    the full relation and the union over an empty group is the empty one.
    """
    cache = structure.engine_cache
    key = ("np_group", _group_key(group), mode)
    matrix = cache.get(key)
    if matrix is None:
        n = len(structure)
        per_agent = [adjacency_matrix(structure, agent) for agent in group]
        if mode == "union":
            matrix = np.zeros((n, n), dtype=bool)
            for agent_matrix in per_agent:
                matrix |= agent_matrix
        elif mode == "intersection":
            if not per_agent:
                matrix = np.ones((n, n), dtype=bool)
            else:
                matrix = per_agent[0].copy()
                for agent_matrix in per_agent[1:]:
                    matrix &= agent_matrix
        else:
            raise EngineError(f"unknown group relation mode {mode!r}")
        matrix.setflags(write=False)
        cache[key] = matrix
    return matrix


def _pack_vector(vector):
    """Pack a boolean vector into little-endian-indexed 64-bit words."""
    packed = np.packbits(vector)
    pad = -packed.size % 8
    if pad:
        packed = np.pad(packed, (0, pad))
    return packed.view(np.uint64)


def _pack_matrix(matrix):
    """Pack each row of a boolean matrix into 64-bit words."""
    packed = np.packbits(matrix, axis=1)
    pad = -packed.shape[1] % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(np.uint64)


def packed_group_matrix(structure, group, mode, transpose=False):
    """Return the group relation's adjacency matrix bit-packed row-wise
    (optionally of the transposed relation), memoised per structure.

    The packed form evaluates the boolean-semiring product ``R @ x`` as one
    word-parallel AND-then-any pass (:func:`_image`), which is what makes
    the modal images competitive with the big-int bitset backend; the dense
    matrices of :func:`group_matrix` remain the canonical representation.
    """
    cache = structure.engine_cache
    key = ("np_packed", _group_key(group), mode, transpose)
    packed = cache.get(key)
    if packed is None:
        matrix = group_matrix(structure, group, mode)
        packed = _pack_matrix(matrix.T if transpose else matrix)
        packed.setflags(write=False)
        cache[key] = packed
    return packed


def _image(packed_matrix, vector):
    """The existential image ``R @ vector`` over the boolean semiring:
    entry ``i`` is ``True`` iff row ``i`` of the (packed) matrix meets
    ``vector``."""
    return (packed_matrix & _pack_vector(vector)).any(axis=1)


def _image_many(packed_matrix, operands):
    """The existential image ``R @ B`` over the boolean semiring for a whole
    ``n x k`` operand matrix (one column per operand): ``result[i, j]`` is
    ``True`` iff row ``i`` of the (packed) relation meets column ``j`` of
    ``operands``.

    Each operand column is bit-packed once; the product then iterates over
    the *word positions* of the packed axis, OR-folding the ``(n, k)`` outer
    ``AND`` of the relation's word column against every operand's word into
    the result — the multi-operand counterpart of :func:`_image` and the
    kernel behind the backend's ``*_many`` batch operators.  Compared with
    ``k`` scalar :func:`_image` passes this touches the relation matrix once
    per word position instead of once per operand and keeps every temporary
    at ``(n, k)`` (never materialising an ``(n, k, words)`` cube), which
    measures 1.5-4x faster across 256-4096 worlds.  Columns are processed
    in chunks that bound the per-word temporary to ~32 MiB, so arbitrarily
    wide batches stay memory-safe.
    """
    n, k = operands.shape
    words = packed_matrix.shape[1]
    result = np.zeros((n, k), dtype=bool)
    chunk = max(1, (1 << 22) // max(1, n))
    for start in range(0, k, chunk):
        packed_ops = _pack_matrix(operands[:, start : start + chunk].T)
        out = result[:, start : start + chunk]
        for word in range(words):
            out |= (packed_matrix[:, word, None] & packed_ops[None, :, word]) != 0
    return result


def _stack_operands(inners):
    """Stack operand world-set vectors as the columns of an ``n x k`` matrix."""
    return np.stack([np.asarray(inner, dtype=bool) for inner in inners], axis=1)


def _columns(matrix):
    """Split an ``n x k`` boolean matrix back into per-operand vectors."""
    return [np.ascontiguousarray(matrix[:, j]) for j in range(matrix.shape[1])]


def proposition_vectors(structure):
    """Return the mapping ``proposition name -> read-only boolean vector``."""
    cache = structure.engine_cache
    vectors = cache.get("np_props")
    if vectors is None:
        n = len(structure)
        vectors = {}
        for index, world in enumerate(structure.worlds):
            for name in structure.labels(world):
                vector = vectors.get(name)
                if vector is None:
                    vector = vectors[name] = np.zeros(n, dtype=bool)
                vector[index] = True
        for vector in vectors.values():
            vector.setflags(write=False)
        cache["np_props"] = vectors
    return vectors


class MatrixBackend(SetBackend):
    """World-sets as NumPy boolean vectors, relations as boolean matrices.

    All operators are vectorised over the boolean semiring; see the module
    docstring for the algebra.  Intended for dense structures where the
    ``n x n`` matrices fit comfortably in memory and BLAS-style kernels beat
    per-world big-int loops.
    """

    name = "matrix"

    # -- conversions ---------------------------------------------------------------

    def from_worlds(self, structure, worlds):
        vector = np.zeros(len(structure), dtype=bool)
        index_of = structure.index_of
        for world in worlds:
            vector[index_of(world)] = True
        return vector

    def to_frozenset(self, structure, ws):
        world_at = structure.worlds
        return frozenset(world_at[i] for i in np.flatnonzero(ws))

    def universe(self, structure):
        cache = structure.engine_cache
        vector = cache.get("np_universe")
        if vector is None:
            vector = np.ones(len(structure), dtype=bool)
            vector.setflags(write=False)
            cache["np_universe"] = vector
        return vector

    def empty(self, structure):
        cache = structure.engine_cache
        vector = cache.get("np_empty")
        if vector is None:
            vector = np.zeros(len(structure), dtype=bool)
            vector.setflags(write=False)
            cache["np_empty"] = vector
        return vector

    # -- boolean algebra ------------------------------------------------------------

    def union(self, a, b):
        return a | b

    def intersection(self, a, b):
        return a & b

    def difference(self, a, b):
        return a & ~b

    def complement(self, structure, ws):
        return ~ws

    # -- queries --------------------------------------------------------------------

    def contains(self, structure, ws, world):
        return bool(ws[structure.index_of(world)])

    def is_empty(self, ws):
        return not ws.any()

    def size(self, ws):
        return int(np.count_nonzero(ws))

    def equals(self, a, b):
        return np.array_equal(a, b)

    # -- epistemic operators ----------------------------------------------------------

    def prop_extension(self, structure, name):
        vector = proposition_vectors(structure).get(name)
        if vector is None:
            return self.empty(structure)
        return vector

    def knows(self, structure, agent, inner):
        relation = packed_group_matrix(structure, (agent,), "union")
        return ~_image(relation, ~inner)

    def possible(self, structure, agent, inner):
        return _image(packed_group_matrix(structure, (agent,), "union"), inner)

    def everyone_knows(self, structure, group, inner):
        return ~_image(packed_group_matrix(structure, group, "union"), ~inner)

    def distributed_knows(self, structure, group, inner):
        return ~_image(packed_group_matrix(structure, group, "intersection"), ~inner)

    def common_knows(self, structure, group, inner):
        relation = packed_group_matrix(structure, group, "union")
        # Least fixed point: worlds from which some ~phi world is reachable
        # in >= 0 steps of the union relation.
        tainted = ~inner
        while True:
            added = _image(relation, tainted) & ~tainted
            if not added.any():
                break
            tainted |= added
        # C[G] phi fails exactly at the worlds with a successor in `tainted`
        # (a path of length >= 1 to a ~phi world).
        return ~_image(relation, tainted)

    # -- batched epistemic operators ---------------------------------------------------
    #
    # The batch operators stack the operand vectors as columns of one bool
    # matrix and evaluate all of them in a single bit-packed pass per modal
    # step (:func:`_image_many`): ``k`` guards against the same relation cost
    # one matrix traversal instead of ``k``.  This is the backend half of the
    # engine's batched evaluation path (``Evaluator.extensions``).

    def knows_many(self, structure, agent, inners):
        if not inners:
            return []
        relation = packed_group_matrix(structure, (agent,), "union")
        return _columns(~_image_many(relation, ~_stack_operands(inners)))

    def possible_many(self, structure, agent, inners):
        if not inners:
            return []
        relation = packed_group_matrix(structure, (agent,), "union")
        return _columns(_image_many(relation, _stack_operands(inners)))

    def everyone_knows_many(self, structure, group, inners):
        if not inners:
            return []
        relation = packed_group_matrix(structure, group, "union")
        return _columns(~_image_many(relation, ~_stack_operands(inners)))

    def distributed_knows_many(self, structure, group, inners):
        if not inners:
            return []
        relation = packed_group_matrix(structure, group, "intersection")
        return _columns(~_image_many(relation, ~_stack_operands(inners)))

    def common_knows_many(self, structure, group, inners):
        if not inners:
            return []
        relation = packed_group_matrix(structure, group, "union")
        # The per-operand least fixed points run in lockstep: column ``j`` of
        # ``tainted`` grows exactly as the scalar fixed point for operand
        # ``j`` would, and the loop stops once every column is stable.
        tainted = ~_stack_operands(inners)
        while True:
            added = _image_many(relation, tainted) & ~tainted
            if not added.any():
                break
            tainted |= added
        return _columns(~_image_many(relation, tainted))

    # -- reachability ------------------------------------------------------------------

    def reachable(self, structure, start_worlds, agents=None):
        if agents is None:
            agents = structure.agents
        # The forward image (successors of a set) is the existential image
        # of the transposed relation: v is a successor of some frontier
        # world iff column v of R meets the frontier.
        relation = packed_group_matrix(
            structure, tuple(agents), "union", transpose=True
        )
        seen = self.from_worlds(structure, start_worlds)
        frontier = seen.copy()
        while frontier.any():
            successors = _image(relation, frontier)
            frontier = successors & ~seen
            seen |= frontier
        return seen
