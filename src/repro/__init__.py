"""repro — knowledge-based programs over interpreted systems.

A reproduction of *Knowledge-Based Programs* (Fagin, Halpern, Moses, Vardi;
PODC 1995): epistemic logic, interpreted systems, standard and
knowledge-based programs, the implementation-as-fixed-point semantics with
its uniqueness conditions, a CTLK model-checking substrate, and the paper's
canonical protocols (bit transmission, muddy children, sequence
transmission, the variable-setting family).

Quickstart::

    from repro import logic, protocols
    from repro.interpretation import iterate_interpretation

    context = protocols.bit_transmission.context()
    program = protocols.bit_transmission.program()
    result = iterate_interpretation(program, context)
    assert result.converged
    system = result.system
    assert system.holds_initially(logic.parse("!K[R] sbit"))
"""

from repro import (
    analysis,
    engine,
    interpretation,
    kripke,
    logic,
    modeling,
    programs,
    resilience,
    systems,
    temporal,
)
from repro.logic import parse
from repro.interpretation import (
    check_implementation,
    classify_program,
    construct_by_rounds,
    derive_protocol,
    enumerate_implementations,
    implements,
    iterate_interpretation,
    search,
)
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems import represent, variable_context

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "engine",
    "interpretation",
    "kripke",
    "logic",
    "modeling",
    "programs",
    "resilience",
    "systems",
    "temporal",
    "parse",
    "check_implementation",
    "classify_program",
    "construct_by_rounds",
    "derive_protocol",
    "enumerate_implementations",
    "implements",
    "iterate_interpretation",
    "search",
    "AgentProgram",
    "Clause",
    "KnowledgeBasedProgram",
    "represent",
    "variable_context",
    "__version__",
]
