"""Bisimulation on epistemic structures.

Two worlds are bisimilar when they satisfy exactly the same formulas of the
epistemic language; the partition-refinement algorithm below computes the
coarsest bisimulation (relational coarsest partition), which can then be used
to build quotient structures that are logically equivalent but smaller.
"""

from collections import defaultdict

from repro.kripke.structure import EpistemicStructure
from repro.util.errors import ModelError


def bisimulation_classes(structure):
    """Return the coarsest bisimulation partition as a list of frozensets.

    The algorithm is plain partition refinement: start from the partition by
    labelling, then repeatedly split blocks whose members can reach different
    sets of blocks through some agent's accessibility relation.
    """
    # Initial partition: by propositional labelling.
    block_of = {}
    blocks = defaultdict(list)
    for world in structure.worlds:
        blocks[structure.labels(world)].append(world)
    for index, members in enumerate(blocks.values()):
        for world in members:
            block_of[world] = index

    changed = True
    while changed:
        changed = False
        signature_groups = defaultdict(list)
        for world in structure.worlds:
            signature = (
                block_of[world],
                tuple(
                    frozenset(block_of[v] for v in structure.accessible(agent, world))
                    for agent in structure.agents
                ),
            )
            signature_groups[signature].append(world)
        new_block_of = {}
        for index, members in enumerate(signature_groups.values()):
            for world in members:
                new_block_of[world] = index
        if len(set(new_block_of.values())) != len(set(block_of.values())):
            changed = True
        block_of = new_block_of

    classes = defaultdict(list)
    for world, index in block_of.items():
        classes[index].append(world)
    return [frozenset(members) for members in classes.values()]


def are_bisimilar(structure, world_a, world_b):
    """Return ``True`` if the two worlds lie in the same bisimulation class."""
    if world_a not in structure or world_b not in structure:
        raise ModelError("both worlds must belong to the structure")
    for cls in bisimulation_classes(structure):
        if world_a in cls:
            return world_b in cls
    return False


def quotient_structure(structure, classes=None):
    """Return the quotient of ``structure`` by its bisimulation classes.

    The worlds of the quotient are frozensets of original worlds; a quotient
    world is ``a``-accessible from another iff some representative pair is.
    The quotient satisfies exactly the same epistemic formulas at
    corresponding worlds.
    """
    if classes is None:
        classes = bisimulation_classes(structure)
    class_of = {}
    for cls in classes:
        for world in cls:
            class_of[world] = cls
    missing = set(structure.worlds) - set(class_of)
    if missing:
        raise ModelError(f"classes do not cover worlds {sorted(map(repr, missing))}")

    labelling = {cls: structure.labels(next(iter(cls))) for cls in classes}
    accessibility = {}
    for agent in structure.agents:
        agent_map = {cls: set() for cls in classes}
        for world in structure.worlds:
            for successor in structure.accessible(agent, world):
                agent_map[class_of[world]].add(class_of[successor])
        accessibility[agent] = {cls: frozenset(succ) for cls, succ in agent_map.items()}
    return EpistemicStructure(list(classes), accessibility, labelling, agents=structure.agents)
