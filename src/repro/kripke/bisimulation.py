"""Bisimulation on epistemic structures.

Two worlds are bisimilar when they satisfy exactly the same formulas of the
epistemic language; the partition-refinement algorithm below computes the
coarsest bisimulation (relational coarsest partition), which can then be used
to build quotient structures that are logically equivalent but smaller.
"""

from collections import defaultdict

from repro.kripke.structure import EpistemicStructure
from repro.util.errors import ModelError


def bisimulation_classes(structure):
    """Return the coarsest bisimulation partition as a list of frozensets.

    The algorithm is plain partition refinement: start from the partition by
    labelling, then repeatedly split blocks whose members can reach different
    sets of blocks through some agent's accessibility relation.  The
    refinement runs entirely over the structure's dense world indices —
    successor lists are resolved to integer indices once up front, so each
    refinement round is integer array manipulation rather than repeated
    hashing of world identifiers.
    """
    worlds = structure.worlds
    count = len(worlds)
    index_of = structure.index_of
    successor_indices = [
        [
            tuple(index_of(successor) for successor in structure.accessible(agent, world))
            for world in worlds
        ]
        for agent in structure.agents
    ]

    # Initial partition: by propositional labelling.
    block_ids = {}
    block_of = [
        block_ids.setdefault(structure.labels(world), len(block_ids)) for world in worlds
    ]

    changed = True
    while changed:
        signature_ids = {}
        new_block_of = [0] * count
        for world_index in range(count):
            signature = (
                block_of[world_index],
                tuple(
                    frozenset(block_of[successor] for successor in agent_successors[world_index])
                    for agent_successors in successor_indices
                ),
            )
            new_block_of[world_index] = signature_ids.setdefault(
                signature, len(signature_ids)
            )
        changed = len(signature_ids) != len(set(block_of))
        block_of = new_block_of

    classes = defaultdict(list)
    for world_index, block in enumerate(block_of):
        classes[block].append(worlds[world_index])
    return [frozenset(members) for members in classes.values()]


def are_bisimilar(structure, world_a, world_b):
    """Return ``True`` if the two worlds lie in the same bisimulation class."""
    if world_a not in structure or world_b not in structure:
        raise ModelError("both worlds must belong to the structure")
    for cls in bisimulation_classes(structure):
        if world_a in cls:
            return world_b in cls
    return False


def quotient_structure(structure, classes=None):
    """Return the quotient of ``structure`` by its bisimulation classes.

    The worlds of the quotient are frozensets of original worlds; a quotient
    world is ``a``-accessible from another iff some representative pair is.
    The quotient satisfies exactly the same epistemic formulas at
    corresponding worlds.
    """
    if classes is None:
        classes = bisimulation_classes(structure)
    class_of = {}
    for cls in classes:
        for world in cls:
            class_of[world] = cls
    missing = set(structure.worlds) - set(class_of)
    if missing:
        raise ModelError(f"classes do not cover worlds {sorted(map(repr, missing))}")

    labelling = {cls: structure.labels(next(iter(cls))) for cls in classes}
    accessibility = {}
    for agent in structure.agents:
        agent_map = {cls: set() for cls in classes}
        for world in structure.worlds:
            for successor in structure.accessible(agent, world):
                agent_map[class_of[world]].add(class_of[successor])
        accessibility[agent] = {cls: frozenset(succ) for cls, succ in agent_map.items()}
    return EpistemicStructure(list(classes), accessibility, labelling, agents=structure.agents)
