"""Convenient constructors for epistemic structures.

Most structures in the paper are induced by *observability*: two worlds are
indistinguishable to agent ``a`` exactly when every proposition (or variable)
the agent can observe has the same truth value in both.  These builders
construct the corresponding S5 structures.
"""

from collections import defaultdict

from repro.kripke.structure import EpistemicStructure
from repro.util.errors import ModelError


def structure_from_labels(labelling, observables, agents=None):
    """Build an S5 structure from a labelling and per-agent observable sets.

    Parameters
    ----------
    labelling:
        Mapping ``world -> iterable of true propositions``.
    observables:
        Mapping ``agent -> iterable of proposition names`` the agent can
        observe.  Two worlds are ``a``-indistinguishable iff they agree on
        all propositions in ``observables[a]``.
    agents:
        Optional explicit list of agents (defaults to ``observables`` keys).

    Returns
    -------
    EpistemicStructure
        With one equivalence relation per agent.
    """
    worlds = list(labelling)
    if agents is None:
        agents = list(observables)

    label_map = {world: frozenset(props) for world, props in labelling.items()}
    accessibility = {}
    for agent in agents:
        observed = frozenset(observables.get(agent, ()))
        view = {world: label_map[world] & observed for world in worlds}
        groups = defaultdict(list)
        for world in worlds:
            groups[view[world]].append(world)
        agent_map = {}
        for members in groups.values():
            cell = frozenset(members)
            for world in members:
                agent_map[world] = cell
        accessibility[agent] = agent_map

    return EpistemicStructure(worlds, accessibility, label_map, agents=agents)


def structure_from_observations(worlds, observation, labelling, agents):
    """Build an S5 structure from an observation *function*.

    ``observation(agent, world)`` must return a hashable value; two worlds
    are ``a``-indistinguishable iff the observations coincide.
    """
    worlds = list(worlds)
    accessibility = {}
    for agent in agents:
        groups = defaultdict(list)
        for world in worlds:
            groups[observation(agent, world)].append(world)
        agent_map = {}
        for members in groups.values():
            cell = frozenset(members)
            for world in members:
                agent_map[world] = cell
        accessibility[agent] = agent_map
    return EpistemicStructure(worlds, accessibility, labelling, agents=agents)


def structure_from_local_states(global_states, local_state_of, labelling, agents):
    """Build the S5 structure induced by *local-state equality*.

    This is the knowledge relation of interpreted systems: agent ``a``
    cannot distinguish two global states with the same ``a``-local state.

    ``local_state_of(agent, global_state)`` must return a hashable value.
    """
    return structure_from_observations(global_states, local_state_of, labelling, agents)


def structure_from_partition(partitions, labelling, agents=None):
    """Build an S5 structure from explicit per-agent partitions.

    ``partitions`` maps each agent to an iterable of blocks (iterables of
    worlds); the blocks must be pairwise disjoint and jointly cover the
    worlds of ``labelling``.
    """
    worlds = set(labelling)
    if agents is None:
        agents = list(partitions)
    accessibility = {}
    for agent in agents:
        blocks = [frozenset(block) for block in partitions.get(agent, [])]
        covered = set()
        agent_map = {}
        for block in blocks:
            if block & covered:
                raise ModelError(f"partition blocks of agent {agent!r} overlap")
            unknown = block - worlds
            if unknown:
                raise ModelError(
                    f"partition of agent {agent!r} mentions unknown worlds {sorted(map(repr, unknown))}"
                )
            covered |= block
            for world in block:
                agent_map[world] = block
        missing = worlds - covered
        for world in missing:
            agent_map[world] = frozenset({world})
        accessibility[agent] = agent_map
    return EpistemicStructure(list(labelling), accessibility, labelling, agents=agents)


def single_agent_structure(labelling, agent="a", blind=True):
    """Build a single-agent structure.

    With ``blind=True`` the agent considers *all* worlds possible everywhere
    (the "blind agent" of the variable-setting examples); otherwise the agent
    has perfect information (identity relation).
    """
    worlds = list(labelling)
    if blind:
        cell = frozenset(worlds)
        agent_map = {world: cell for world in worlds}
    else:
        agent_map = {world: frozenset({world}) for world in worlds}
    return EpistemicStructure(worlds, {agent: agent_map}, labelling, agents=[agent])
