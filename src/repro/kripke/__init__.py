"""Epistemic (Kripke) structures and operations on them.

An epistemic structure ``K = (W, (R_a)_{a in A}, L)`` consists of a set of
worlds ``W``, one accessibility relation per agent and a propositional
labelling ``L``.  In the examples of the paper the accessibility relations
are the equivalence relations induced by what each agent can observe; the
builders in :mod:`repro.kripke.builders` construct exactly those structures.
"""

from repro.kripke.structure import EpistemicStructure
from repro.kripke.builders import (
    structure_from_labels,
    structure_from_observations,
    structure_from_local_states,
    single_agent_structure,
)
from repro.kripke.operations import (
    generated_substructure,
    restrict_to_worlds,
    union_structures,
    disjoint_union,
    product_structure,
)
from repro.kripke.bisimulation import (
    bisimulation_classes,
    quotient_structure,
    are_bisimilar,
)

__all__ = [
    "EpistemicStructure",
    "structure_from_labels",
    "structure_from_observations",
    "structure_from_local_states",
    "single_agent_structure",
    "generated_substructure",
    "restrict_to_worlds",
    "union_structures",
    "disjoint_union",
    "product_structure",
    "bisimulation_classes",
    "quotient_structure",
    "are_bisimilar",
    "structure_from_partition",
]

from repro.kripke.builders import structure_from_partition  # noqa: E402  (re-export)
