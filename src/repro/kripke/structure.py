"""The core epistemic (Kripke) structure data type.

The structure stores, per agent, an *adjacency map* from worlds to frozensets
of accessible worlds.  When accessibility is an equivalence relation (the
usual S5 case of the paper) the helper constructors in
:mod:`repro.kripke.builders` build the adjacency maps from observation
functions or partitions; this module is agnostic about the relational
properties and provides predicates (:meth:`EpistemicStructure.is_s5`, ...) to
check them.
"""

from repro.util.errors import ModelError


class EpistemicStructure:
    """An epistemic structure ``(W, (R_a)_a, L)`` over propositions and agents.

    Parameters
    ----------
    worlds:
        Iterable of hashable world identifiers.
    accessibility:
        Mapping ``agent -> {world -> iterable of worlds}``.  Missing worlds
        are treated as having no successors for that agent.
    labelling:
        Mapping ``world -> iterable of proposition names`` that hold there.
    agents:
        Optional explicit agent list; defaults to the keys of
        ``accessibility``.

    The structure is immutable after construction.
    """

    __slots__ = (
        "_worlds",
        "_agents",
        "_accessibility",
        "_labelling",
        "_propositions",
        "_world_index",
        "_engine_cache",
    )

    def __init__(self, worlds, accessibility, labelling, agents=None):
        world_list = list(worlds)
        world_set = set(world_list)
        if len(world_list) != len(world_set):
            raise ModelError("duplicate worlds in epistemic structure")
        if agents is None:
            agents = list(accessibility)
        agent_tuple = tuple(agents)

        adjacency = {}
        for agent in agent_tuple:
            agent_map = {}
            source_map = accessibility.get(agent, {})
            for world in world_list:
                successors = frozenset(source_map.get(world, ()))
                unknown = successors - world_set
                if unknown:
                    raise ModelError(
                        f"accessibility of agent {agent!r} from world {world!r} "
                        f"mentions unknown worlds {sorted(map(repr, unknown))}"
                    )
                agent_map[world] = successors
            adjacency[agent] = agent_map
        unknown_sources = set(accessibility) - set(agent_tuple)
        if unknown_sources:
            raise ModelError(f"accessibility given for undeclared agents {sorted(unknown_sources)}")

        label_map = {}
        for world in world_list:
            props = labelling.get(world, ())
            label_map[world] = frozenset(props)
        unknown_labelled = set(labelling) - world_set
        if unknown_labelled:
            raise ModelError(f"labelling mentions unknown worlds {sorted(map(repr, unknown_labelled))}")

        self._worlds = tuple(world_list)
        self._agents = agent_tuple
        self._accessibility = adjacency
        self._labelling = label_map
        self._propositions = frozenset().union(*label_map.values()) if label_map else frozenset()
        # Dense world indexing: position in construction order.  The index is
        # the contract between the structure and the bit-level evaluation
        # backends of :mod:`repro.engine` (bit ``i`` of a world-set mask
        # stands for ``self._worlds[i]``).
        self._world_index = {world: index for index, world in enumerate(self._worlds)}
        # Memoisation area for engine-derived data (accessibility masks,
        # proposition masks, evaluators).  The structure is immutable, so
        # entries never need invalidation.
        self._engine_cache = {}

    # -- basic accessors -------------------------------------------------------

    @property
    def worlds(self):
        """The worlds as a tuple (construction order preserved)."""
        return self._worlds

    @property
    def agents(self):
        """The agents as a tuple."""
        return self._agents

    @property
    def propositions(self):
        """All proposition names used in the labelling."""
        return self._propositions

    @property
    def world_index(self):
        """The mapping ``world -> dense index`` (construction order).

        Treat the returned mapping as read-only; it is shared with the
        evaluation engine.
        """
        return self._world_index

    @property
    def engine_cache(self):
        """Per-structure memoisation area of :mod:`repro.engine`.

        Holds derived evaluation data (accessibility bitmask arrays,
        proposition masks, persistent evaluators) keyed by the engine; safe
        to clear at any time, never invalidated because the structure is
        immutable.
        """
        return self._engine_cache

    def index_of(self, world):
        """Return the dense index of ``world`` (its bit position in engine
        bitmasks)."""
        try:
            return self._world_index[world]
        except KeyError:
            raise ModelError(f"unknown world {world!r}") from None

    def world_at(self, index):
        """Return the world with dense index ``index``."""
        if not 0 <= index < len(self._worlds):
            raise ModelError(f"world index {index!r} out of range")
        return self._worlds[index]

    def __len__(self):
        return len(self._worlds)

    def __contains__(self, world):
        return world in self._labelling

    def has_agent(self, agent):
        return agent in self._accessibility

    def labels(self, world):
        """Return the frozenset of propositions true at ``world``."""
        try:
            return self._labelling[world]
        except KeyError:
            raise ModelError(f"unknown world {world!r}") from None

    def label_holds(self, world, proposition):
        """Return ``True`` if ``proposition`` is in the labelling of ``world``."""
        return proposition in self.labels(world)

    def accessible(self, agent, world):
        """Return the frozenset of worlds agent ``agent`` considers possible
        at ``world``."""
        try:
            agent_map = self._accessibility[agent]
        except KeyError:
            raise ModelError(f"unknown agent {agent!r}") from None
        try:
            return agent_map[world]
        except KeyError:
            raise ModelError(f"unknown world {world!r}") from None

    def relation(self, agent):
        """Return agent ``agent``'s accessibility relation as a set of pairs."""
        agent_map = self._accessibility.get(agent)
        if agent_map is None:
            raise ModelError(f"unknown agent {agent!r}")
        return {(w, v) for w, succs in agent_map.items() for v in succs}

    def adjacency(self, agent):
        """Return agent ``agent``'s adjacency map ``{world: frozenset(worlds)}``."""
        agent_map = self._accessibility.get(agent)
        if agent_map is None:
            raise ModelError(f"unknown agent {agent!r}")
        return dict(agent_map)

    # -- relational properties -------------------------------------------------

    def is_reflexive(self, agent=None):
        """Check reflexivity of one agent's relation (or of all relations)."""
        agents = [agent] if agent is not None else self._agents
        return all(w in self.accessible(a, w) for a in agents for w in self._worlds)

    def is_symmetric(self, agent=None):
        agents = [agent] if agent is not None else self._agents
        for a in agents:
            for w in self._worlds:
                for v in self.accessible(a, w):
                    if w not in self.accessible(a, v):
                        return False
        return True

    def is_transitive(self, agent=None):
        agents = [agent] if agent is not None else self._agents
        for a in agents:
            for w in self._worlds:
                for v in self.accessible(a, w):
                    if not self.accessible(a, v) <= self.accessible(a, w):
                        return False
        return True

    def is_euclidean(self, agent=None):
        agents = [agent] if agent is not None else self._agents
        for a in agents:
            for w in self._worlds:
                successors = self.accessible(a, w)
                for v in successors:
                    if not successors <= self.accessible(a, v):
                        return False
        return True

    def is_s5(self, agent=None):
        """Return ``True`` if the relation(s) are equivalence relations."""
        return self.is_reflexive(agent) and self.is_symmetric(agent) and self.is_transitive(agent)

    def equivalence_classes(self, agent):
        """Return the partition induced by agent ``agent``'s relation.

        Raises :class:`ModelError` if the relation is not an equivalence
        relation.
        """
        if not self.is_s5(agent):
            raise ModelError(f"relation of agent {agent!r} is not an equivalence relation")
        seen = set()
        classes = []
        for world in self._worlds:
            if world in seen:
                continue
            cls = self.accessible(agent, world)
            seen.update(cls)
            classes.append(frozenset(cls))
        return classes

    # -- derived structures ----------------------------------------------------

    def with_labelling(self, labelling):
        """Return a copy of the structure with a replaced labelling."""
        return EpistemicStructure(
            self._worlds,
            {agent: dict(self._accessibility[agent]) for agent in self._agents},
            labelling,
            agents=self._agents,
        )

    def group_relation(self, group, mode):
        """Return the adjacency map of a *group* relation.

        ``mode`` is ``"union"`` (used for everyone-knows / common knowledge)
        or ``"intersection"`` (used for distributed knowledge).

        The empty group is well defined in both modes: the union over no
        agents is the empty relation (so ``E[{}] phi`` is vacuously true),
        and the intersection over no agents is the *full* relation — every
        world sees every world — so ``D[{}] phi`` holds exactly when ``phi``
        holds everywhere (distributed knowledge of nobody is the weakest
        group knowledge).
        """
        group = tuple(group)
        for agent in group:
            if not self.has_agent(agent):
                raise ModelError(f"unknown agent {agent!r}")
        all_worlds = frozenset(self._worlds)
        result = {}
        for world in self._worlds:
            per_agent = [self.accessible(agent, world) for agent in group]
            if mode == "union":
                combined = frozenset().union(*per_agent) if per_agent else frozenset()
            elif mode == "intersection":
                combined = per_agent[0] if per_agent else all_worlds
                for succ in per_agent[1:]:
                    combined = combined & succ
            else:
                raise ValueError(f"unknown group relation mode {mode!r}")
            result[world] = combined
        return result

    def reachable_via(self, adjacency_map, start_worlds):
        """Return all worlds reachable from ``start_worlds`` through the given
        adjacency map (used for the transitive closure of common knowledge)."""
        frontier = list(start_worlds)
        seen = set(frontier)
        while frontier:
            world = frontier.pop()
            for successor in adjacency_map.get(world, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    # -- value semantics & debugging --------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, EpistemicStructure):
            return NotImplemented
        return (
            set(self._worlds) == set(other._worlds)
            and set(self._agents) == set(other._agents)
            and all(
                self.accessible(a, w) == other.accessible(a, w)
                for a in self._agents
                for w in self._worlds
            )
            and all(self.labels(w) == other.labels(w) for w in self._worlds)
        )

    def __hash__(self):
        return hash((frozenset(self._worlds), frozenset(self._agents)))

    def __repr__(self):
        return (
            f"EpistemicStructure(|W|={len(self._worlds)}, agents={list(self._agents)}, "
            f"|P|={len(self._propositions)})"
        )

    def describe(self):
        """Return a human-readable multi-line description of the structure."""
        lines = [f"EpistemicStructure with {len(self._worlds)} worlds"]
        for world in self._worlds:
            props = ", ".join(sorted(self.labels(world))) or "(no propositions)"
            lines.append(f"  {world!r}: {props}")
            for agent in self._agents:
                successors = sorted(map(repr, self.accessible(agent, world)))
                lines.append(f"    ~{agent}~> {successors}")
        return "\n".join(lines)
