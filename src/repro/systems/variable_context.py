"""Build contexts from finite-domain variable models.

This is the front-end used to state all the paper's examples: a context is
described by

* a :class:`repro.modeling.state_space.StateSpace` of variables;
* per-agent *observable variables* (inducing the local-state projection:
  the local state is the restriction of the assignment to the observables);
* per-agent actions given as named :class:`repro.modeling.state_space.Assignment`
  effects (a ``noop`` action is added automatically unless present);
* an initial-state constraint (boolean expression) or explicit state list;
* optional environment actions with their own effects and an environment
  protocol selecting which are available in which state;
* an optional global constraint restricting the state space.

The transition function applies the environment effect first and then every
agent's effect, all reading the *pre-round* state (so effects within a round
do not observe each other); writes to the same variable by different
participants must be avoided by the modeller and are reported as errors.
"""

from repro.modeling.expressions import Expression
from repro.modeling.state_space import Assignment, StateSpace
from repro.modeling.variables import Variable
from repro.systems.actions import Action, NOOP_NAME
from repro.systems.context import Context
from repro.util.errors import ModelError, ProgramError


class VariableContextSpec:
    """The ingredients of a variable-based context, kept for introspection.

    Instances are produced by :func:`variable_context` and attached to the
    resulting :class:`repro.systems.context.Context` as ``context.spec`` so
    that tools (e.g. the implementation search) can enumerate states and
    actions symbolically.  Besides the materialised ``initial_states``, the
    spec records the *raw* ingredients — the initial-state constraint
    expression, the global constraint, any custom environment protocol,
    admissibility predicate and extra-label function — so that
    :func:`repro.symbolic.model.compile_context` can rebuild the context as
    BDDs without enumerating anything.
    """

    def __init__(
        self,
        state_space,
        observables,
        actions,
        env_effects,
        initial_states,
        initial_condition=None,
        global_constraint=None,
        env_protocol=None,
        admissibility=None,
        extra_labels=None,
    ):
        self.state_space = state_space
        self.observables = observables
        self.actions = actions
        self.env_effects = env_effects
        self.initial_states = initial_states
        self.initial_condition = initial_condition
        self.global_constraint = global_constraint
        self.env_protocol = env_protocol
        self.admissibility = admissibility
        self.extra_labels = extra_labels

    def action(self, agent, name):
        """Return agent ``agent``'s :class:`Action` called ``name``."""
        try:
            return self.actions[agent][name]
        except KeyError:
            raise ProgramError(f"agent {agent!r} has no action {name!r}") from None


def _resolve_variable_names(state_space, names):
    resolved = []
    for name in names:
        if isinstance(name, Variable):
            name = name.name
        if name not in state_space:
            raise ModelError(f"unknown observable variable {name!r}")
        resolved.append(name)
    return tuple(sorted(set(resolved)))


def _normalise_actions(actions):
    """Normalise an action table to ``{agent: {name: Action}}``."""
    table = {}
    for agent, agent_actions in actions.items():
        resolved = {}
        for name, effect in dict(agent_actions).items():
            if isinstance(effect, Action):
                action = effect
            elif isinstance(effect, Assignment):
                action = Action(name, effect)
            elif isinstance(effect, dict):
                action = Action(name, Assignment(effect))
            else:
                raise ProgramError(
                    f"effect of action {name!r} of agent {agent!r} must be an "
                    f"Assignment, Action or dict, got {effect!r}"
                )
            resolved[name] = action
        if NOOP_NAME not in resolved:
            resolved[NOOP_NAME] = Action(NOOP_NAME, Assignment({}))
        table[agent] = resolved
    return table


def variable_context(
    name,
    state_space,
    observables,
    actions,
    initial,
    env_effects=None,
    env_protocol=None,
    global_constraint=None,
    admissibility=None,
    extra_labels=None,
):
    """Build a :class:`repro.systems.context.Context` from a variable model.

    Parameters
    ----------
    name:
        Identifier for reports.
    state_space:
        The :class:`StateSpace` of all variables.
    observables:
        Mapping ``agent -> iterable of variables/names`` the agent observes.
    actions:
        Mapping ``agent -> {action name -> effect}`` where the effect is an
        :class:`Assignment`, an :class:`Action` or a plain ``{var: expr}``
        dict.  A ``noop`` action is added when missing.
    initial:
        Either a boolean :class:`Expression` selecting the initial states or
        an explicit iterable of :class:`State` objects.
    env_effects:
        Optional mapping ``env action name -> Assignment`` of environment
        effects; the default environment has the single action ``None`` with
        no effect.
    env_protocol:
        Optional ``state -> iterable of env action names``; defaults to
        offering every environment action everywhere.
    global_constraint:
        Optional boolean expression; states violating it are excluded from
        the state space (both as initial states and as transition targets —
        a transition into an excluded state is a modelling error).
    admissibility:
        Optional predicate on finite state sequences (the paper's ``Psi``).
    extra_labels:
        Optional ``state -> iterable of extra proposition names`` merged into
        the variable labelling (useful for derived predicates).

    Returns
    -------
    Context
        With the attribute ``spec`` set to a :class:`VariableContextSpec`.
    """
    if not isinstance(state_space, StateSpace):
        raise ModelError("state_space must be a StateSpace instance")

    agents = tuple(observables)
    observable_names = {
        agent: _resolve_variable_names(state_space, names) for agent, names in observables.items()
    }
    action_table = _normalise_actions(actions)
    missing = set(agents) - set(action_table)
    for agent in sorted(missing):
        action_table[agent] = {NOOP_NAME: Action(NOOP_NAME, Assignment({}))}

    env_effects = {
        env_name: (effect if isinstance(effect, Assignment) else Assignment(effect))
        for env_name, effect in dict(env_effects or {}).items()
    }
    if not env_effects:
        env_effects = {None: Assignment({})}

    custom_env_protocol = env_protocol
    if env_protocol is None:
        all_env = tuple(env_effects)

        def env_protocol(state):  # noqa: F811 - intentional default closure
            return all_env

    allowed = None
    if global_constraint is not None:
        allowed = set(state_space.states(global_constraint))

    if isinstance(initial, Expression):
        initial_states = [
            state
            for state in state_space.states(initial)
            if allowed is None or state in allowed
        ]
    else:
        initial_states = list(initial)
        for state in initial_states:
            if allowed is not None and state not in allowed:
                raise ModelError(f"initial state {state} violates the global constraint")
    if not initial_states:
        raise ModelError("no initial states satisfy the initial condition")

    def transition(state, joint_action):
        env_name = joint_action.env
        if env_name not in env_effects:
            raise ModelError(f"unknown environment action {env_name!r}")
        new_values = state.as_dict()
        writers = {}

        def merge(effect, who):
            changes = {name: expr.evaluate(state.as_dict()) for name, expr in effect.updates.items()}
            for variable_name, value in changes.items():
                if variable_name in writers and new_values[variable_name] != value:
                    raise ModelError(
                        f"write conflict on variable {variable_name!r}: "
                        f"{writers[variable_name]!r} and {who!r} disagree"
                    )
                writers[variable_name] = who
                new_values[variable_name] = state_space.variable(variable_name).check(value)

        merge(env_effects[env_name], f"env:{env_name}")
        for agent in agents:
            act_name = joint_action.action_of(agent)
            action = action_table[agent].get(act_name)
            if action is None:
                raise ProgramError(f"agent {agent!r} has no action {act_name!r}")
            merge(action.effect, f"{agent}:{act_name}")

        next_state = state_space.state(new_values)
        if allowed is not None and next_state not in allowed:
            raise ModelError(
                f"transition target {next_state} violates the global constraint "
                f"(from {state} via {joint_action})"
            )
        return next_state

    def local_state(agent, state):
        return state.restrict(observable_names[agent])

    def labelling(state):
        labels = set(state_space.labelling(state))
        if extra_labels is not None:
            labels |= set(extra_labels(state))
        return labels

    context = Context(
        name=name,
        agents=agents,
        initial_states=initial_states,
        transition=transition,
        local_state=local_state,
        labelling=labelling,
        agent_actions={agent: tuple(action_table[agent]) for agent in agents},
        env_actions=env_protocol,
        admissibility=admissibility,
    )
    context.spec = VariableContextSpec(
        state_space=state_space,
        observables=observable_names,
        actions=action_table,
        env_effects=env_effects,
        initial_states=tuple(initial_states),
        initial_condition=initial if isinstance(initial, Expression) else None,
        global_constraint=global_constraint,
        env_protocol=custom_env_protocol,
        admissibility=admissibility,
        extra_labels=extra_labels,
    )
    return context
