"""Interpreted systems: contexts, protocols, runs and knowledge.

This package implements the semantic universe of knowledge-based programs:

* :class:`repro.systems.actions.JointAction` — one environment action plus
  one action per agent, performed simultaneously in a round;
* :class:`repro.systems.context.Context` — the paper's context
  ``gamma = (P_e, G_0, tau, Psi)``: the environment's protocol, the initial
  global states, the transition function and an admissibility condition,
  together with the agents' local-state projections and the propositional
  labelling of global states;
* :func:`repro.systems.variable_context.variable_context` — builds a context
  from the finite-domain variable models of :mod:`repro.modeling` (agents
  observe subsets of the variables; actions are simultaneous assignments);
* :class:`repro.systems.protocols.Protocol` /
  :class:`repro.systems.protocols.JointProtocol` — standard protocols mapping
  local states to non-empty sets of actions;
* :func:`repro.systems.transition_system.generate_transition_system` — the
  set of runs of a joint protocol in a context, represented finitely by the
  reachable global states and transition relation;
* :class:`repro.systems.interpreted_system.InterpretedSystem` — the
  interpreted system ``I_rep(P, gamma, pi)`` with knowledge evaluated over
  reachable states via local-state indistinguishability;
* :class:`repro.systems.runs.Run` / :class:`repro.systems.runs.Point` — runs
  and points for run-based (temporal) reasoning.
"""

from repro.systems.actions import Action, JointAction, NOOP_NAME, noop_action
from repro.systems.context import Context
from repro.systems.variable_context import variable_context, VariableContextSpec
from repro.systems.protocols import (
    Protocol,
    JointProtocol,
    constant_protocol,
    protocol_from_function,
)
from repro.systems.transition_system import TransitionSystem, generate_transition_system
from repro.systems.interpreted_system import InterpretedSystem, represent
from repro.systems.runs import Run, Point, enumerate_runs, enumerate_points

__all__ = [
    "Action",
    "JointAction",
    "NOOP_NAME",
    "noop_action",
    "Context",
    "variable_context",
    "VariableContextSpec",
    "Protocol",
    "JointProtocol",
    "constant_protocol",
    "protocol_from_function",
    "TransitionSystem",
    "generate_transition_system",
    "InterpretedSystem",
    "represent",
    "Run",
    "Point",
    "enumerate_runs",
    "enumerate_points",
]
