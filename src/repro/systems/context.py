"""Contexts: everything about a multi-agent setting except the agents' program.

A context is the paper's ``gamma = (P_e, G_0, tau, Psi)``:

* ``P_e`` — the environment's protocol, a function from global states to the
  non-empty set of environment actions it may perform;
* ``G_0`` — the set of initial global states;
* ``tau`` — the transition function mapping a global state and a joint
  action to the next global state;
* ``Psi`` — an admissibility condition on runs (e.g. channel fairness).

In addition the context records, for each agent, the *local-state
projection* (what part of a global state the agent sees), the set of actions
available to the agent, and the propositional labelling ``pi`` of global
states used to interpret formulas.  Packaging the interpretation with the
context keeps the implementation close to the paper's notion of an
*interpreted context* ``(gamma, pi)``.
"""

from repro.systems.actions import JointAction, NOOP_NAME
from repro.util.errors import ModelError, ProgramError


class Context:
    """An interpreted context ``(gamma, pi)`` over a finite global state space.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    agents:
        Ordered list of agent names.
    initial_states:
        Iterable of (hashable) initial global states.
    transition:
        ``transition(state, joint_action) -> state``; must be total on the
        joint actions offered by the environment protocol and the agents'
        action sets.
    local_state:
        ``local_state(agent, state) -> hashable`` — the agent's view.
    labelling:
        ``labelling(state) -> iterable of proposition names``.
    agent_actions:
        Mapping ``agent -> iterable of action labels`` available to the
        agent.  Every agent must offer at least one action; by convention the
        no-op action :data:`repro.systems.actions.NOOP_NAME` is included in
        all the library's example contexts.
    env_actions:
        ``env_actions(state) -> iterable of environment actions`` (the
        environment protocol ``P_e``).  Defaults to the single dummy action
        ``None``.
    admissibility:
        Optional predicate on finite runs (sequences of global states) used
        to prune inadmissible behaviours when enumerating runs; ``None``
        accepts everything.  This models the paper's ``Psi`` for the bounded
        analyses performed by the library.
    """

    def __init__(
        self,
        name,
        agents,
        initial_states,
        transition,
        local_state,
        labelling,
        agent_actions,
        env_actions=None,
        admissibility=None,
    ):
        agents = tuple(agents)
        if not agents:
            raise ModelError("a context needs at least one agent")
        if len(set(agents)) != len(agents):
            raise ModelError("duplicate agent names in context")
        initial_states = tuple(initial_states)
        if not initial_states:
            raise ModelError("a context needs at least one initial state")

        self.name = name
        self._agents = agents
        self._initial_states = initial_states
        self._transition = transition
        self._local_state = local_state
        self._labelling = labelling
        self._agent_actions = {
            agent: tuple(actions) for agent, actions in dict(agent_actions).items()
        }
        missing = set(agents) - set(self._agent_actions)
        if missing:
            raise ModelError(f"no action set given for agents {sorted(missing)}")
        for agent, actions in self._agent_actions.items():
            if not actions:
                raise ModelError(f"agent {agent!r} has an empty action set")
        self._env_actions = env_actions if env_actions is not None else (lambda state: (None,))
        self._admissibility = admissibility

    # -- accessors ---------------------------------------------------------------

    @property
    def agents(self):
        return self._agents

    @property
    def initial_states(self):
        return self._initial_states

    def agent_actions(self, agent):
        """Return the tuple of actions available to ``agent``."""
        try:
            return self._agent_actions[agent]
        except KeyError:
            raise ModelError(f"unknown agent {agent!r}") from None

    def env_actions(self, state):
        """Return the environment actions offered at ``state`` (``P_e``)."""
        actions = tuple(self._env_actions(state))
        if not actions:
            raise ModelError(f"environment protocol offers no action at state {state!r}")
        return actions

    def local_state(self, agent, state):
        """Return agent ``agent``'s local state at the global state."""
        if agent not in self._agent_actions:
            raise ModelError(f"unknown agent {agent!r}")
        return self._local_state(agent, state)

    def labelling(self, state):
        """Return the frozenset of propositions true at ``state``."""
        return frozenset(self._labelling(state))

    def transition(self, state, joint_action):
        """Apply the transition function ``tau``."""
        return self._transition(state, joint_action)

    def is_admissible(self, run_states):
        """Check the admissibility condition ``Psi`` on a finite run prefix."""
        if self._admissibility is None:
            return True
        return bool(self._admissibility(run_states))

    # -- convenience -------------------------------------------------------------

    def joint_actions(self, state, chosen):
        """Enumerate the joint actions at ``state`` given, per agent, the set
        of actions the agent's protocol allows (``chosen[agent]``)."""
        env_choices = self.env_actions(state)
        agent_choices = []
        for agent in self._agents:
            actions = tuple(chosen[agent])
            if not actions:
                raise ProgramError(
                    f"protocol of agent {agent!r} selects no action at state {state!r}"
                )
            agent_choices.append(actions)
        result = []
        for env in env_choices:
            result.extend(
                JointAction(env, dict(zip(self._agents, combo)))
                for combo in _cartesian(agent_choices)
            )
        return result

    def successors(self, state, chosen):
        """Return the set of successor states under the allowed choices."""
        return {self.transition(state, joint) for joint in self.joint_actions(state, chosen)}

    def noop_joint_action(self):
        """Return the joint action in which every agent performs the no-op
        (requires every agent to offer :data:`NOOP_NAME`)."""
        for agent in self._agents:
            if NOOP_NAME not in self.agent_actions(agent):
                raise ModelError(f"agent {agent!r} has no {NOOP_NAME!r} action")
        return JointAction(None, {agent: NOOP_NAME for agent in self._agents})

    def local_states_of(self, agent, states):
        """Return the set of local states of ``agent`` over the given global
        states."""
        return {self.local_state(agent, state) for state in states}

    def states_by_local_state(self, agent, states):
        """Group ``states`` by ``agent``-local state.

        Returns ``{local state: frozenset of global states}`` — the
        indistinguishability classes of ``agent`` over the given states.
        """
        grouped = {}
        for state in states:
            grouped.setdefault(self.local_state(agent, state), []).append(state)
        return {local: frozenset(members) for local, members in grouped.items()}

    def __repr__(self):
        return (
            f"Context({self.name!r}, agents={list(self._agents)}, "
            f"|G0|={len(self._initial_states)})"
        )


class LocalStateIndexMixin:
    """Memoised grouping of a knowledge view's states by agent-local state.

    Shared by every object that pairs a ``context`` with a fixed collection
    of ``states`` (interpreted systems, state-set views): ``_locals_of``
    lazily builds the per-agent indistinguishability index, and
    ``states_with_local_state`` answers the induced lookups — the states an
    agent considers possible at one of its local states.
    """

    def _locals_of(self, agent):
        try:
            index_map = self._local_index
        except AttributeError:
            index_map = self._local_index = {}
        index = index_map.get(agent)
        if index is None:
            index = self.context.states_by_local_state(agent, self.states)
            index_map[agent] = index
        return index

    def states_with_local_state(self, agent, local_state):
        """Return the view's states whose ``agent``-local state equals the
        given one."""
        return self._locals_of(agent).get(local_state, frozenset())


def _cartesian(choice_lists):
    """Yield tuples choosing one element from each list (deterministic order)."""
    if not choice_lists:
        yield ()
        return
    head, *tail = choice_lists
    for item in head:
        for rest in _cartesian(tail):
            yield (item,) + rest
