"""Actions and joint actions.

In every round each agent performs exactly one action and the environment
performs one environment action; the tuple of all of these is a *joint
action*.  Agent actions are identified by hashable labels (strings in all the
examples); for variable-based contexts an :class:`Action` additionally
carries the :class:`repro.modeling.state_space.Assignment` describing its
effect on the global state.
"""

from repro.modeling.state_space import Assignment, SKIP
from repro.util.errors import ProgramError

NOOP_NAME = "noop"
"""The canonical name of the do-nothing action (the paper's ``skip``)."""


class Action:
    """A named action with an effect on the variable state.

    Parameters
    ----------
    name:
        Hashable label used by programs and protocols.
    effect:
        An :class:`Assignment` applied to the global state when the action is
        performed.  Defaults to the empty assignment (``skip``).
    """

    __slots__ = ("name", "effect")

    def __init__(self, name, effect=None):
        if name is None or name == "":
            raise ProgramError("action name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "effect", effect if effect is not None else SKIP)

    def __setattr__(self, key, value):
        raise AttributeError("Action is immutable")

    def apply(self, state):
        """Apply the action's effect to a variable-based state."""
        return self.effect.apply(state)

    def __eq__(self, other):
        if not isinstance(other, Action):
            return NotImplemented
        return self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return f"Action({self.name!r})"

    def __str__(self):
        return str(self.name)


def noop_action():
    """Return a fresh no-op action (name :data:`NOOP_NAME`, empty effect)."""
    return Action(NOOP_NAME, Assignment({}))


class JointAction:
    """One environment action together with one action label per agent.

    Joint actions are immutable and hashable so they can label transitions.
    """

    __slots__ = ("env", "_acts", "_key")

    def __init__(self, env, acts):
        items = tuple(sorted(acts.items()))
        object.__setattr__(self, "env", env)
        object.__setattr__(self, "_acts", dict(items))
        object.__setattr__(self, "_key", (env, items))

    def __setattr__(self, key, value):
        raise AttributeError("JointAction is immutable")

    def action_of(self, agent):
        """Return the action label performed by ``agent``."""
        try:
            return self._acts[agent]
        except KeyError:
            raise ProgramError(f"joint action has no component for agent {agent!r}") from None

    def agents(self):
        """Return the agents that have a component in this joint action."""
        return tuple(self._acts)

    def as_dict(self):
        """Return the agent components as a plain dictionary."""
        return dict(self._acts)

    def __eq__(self, other):
        if not isinstance(other, JointAction):
            return NotImplemented
        return self._key == other._key

    def __hash__(self):
        return hash(self._key)

    def __repr__(self):
        inner = ", ".join(f"{agent}={act!r}" for agent, act in sorted(self._acts.items()))
        return f"JointAction(env={self.env!r}, {inner})"

    def __str__(self):
        inner = ", ".join(f"{agent}:{act}" for agent, act in sorted(self._acts.items()))
        env_part = f"env:{self.env}, " if self.env is not None else ""
        return f"<{env_part}{inner}>"
