"""Runs and points.

A *run* is an infinite sequence of global states describing one possible
execution; a *point* is a run together with a time.  For the finite analyses
performed by this library runs are represented by finite prefixes generated
from a :class:`repro.systems.transition_system.TransitionSystem`.  The
admissibility condition ``Psi`` of the context filters run prefixes (e.g.
fairness of a lossy channel can be approximated by requiring a successful
delivery within a bounded number of rounds).
"""

from repro.util.errors import ModelError


class Run:
    """A finite run prefix: states ``r(0), ..., r(k)`` and the joint actions
    performed between them."""

    __slots__ = ("states", "actions")

    def __init__(self, states, actions):
        states = tuple(states)
        actions = tuple(actions)
        if not states:
            raise ModelError("a run needs at least one state")
        if len(actions) != len(states) - 1:
            raise ModelError(
                f"a run with {len(states)} states needs {len(states) - 1} actions, "
                f"got {len(actions)}"
            )
        object.__setattr__(self, "states", states)
        object.__setattr__(self, "actions", actions)

    def __setattr__(self, key, value):
        raise AttributeError("Run is immutable")

    def __len__(self):
        """Number of rounds (transitions) in the prefix."""
        return len(self.actions)

    def state(self, time):
        """Return the global state at ``time`` (``r(time)``)."""
        try:
            return self.states[time]
        except IndexError:
            raise ModelError(f"run prefix has no state at time {time}") from None

    def point(self, time):
        """Return the point ``(self, time)``."""
        if not 0 <= time < len(self.states):
            raise ModelError(f"run prefix has no point at time {time}")
        return Point(self, time)

    def points(self):
        """Iterate over all points of the prefix."""
        return (Point(self, time) for time in range(len(self.states)))

    def local_history(self, context, agent, time):
        """Return the sequence of local states of ``agent`` up to ``time``
        (the agent's view under perfect recall)."""
        return tuple(context.local_state(agent, self.states[t]) for t in range(time + 1))

    def extend(self, joint_action, state):
        """Return a new run prefix with one more round appended."""
        return Run(self.states + (state,), self.actions + (joint_action,))

    def __eq__(self, other):
        if not isinstance(other, Run):
            return NotImplemented
        return self.states == other.states and self.actions == other.actions

    def __hash__(self):
        return hash((self.states, self.actions))

    def __repr__(self):
        return f"Run(length={len(self)}, states={list(self.states)})"


class Point:
    """A pair of a run prefix and a time within it."""

    __slots__ = ("run", "time")

    def __init__(self, run, time):
        if not 0 <= time < len(run.states):
            raise ModelError(f"time {time} outside run prefix of length {len(run)}")
        object.__setattr__(self, "run", run)
        object.__setattr__(self, "time", time)

    def __setattr__(self, key, value):
        raise AttributeError("Point is immutable")

    @property
    def state(self):
        """The global state at this point."""
        return self.run.state(self.time)

    def local_state(self, context, agent):
        """The local state of ``agent`` at this point."""
        return context.local_state(agent, self.state)

    def indistinguishable_from(self, other, context, agent):
        """Return ``True`` if ``agent`` cannot distinguish the two points
        (their local states coincide)."""
        return self.local_state(context, agent) == other.local_state(context, agent)

    def __eq__(self, other):
        if not isinstance(other, Point):
            return NotImplemented
        return self.run == other.run and self.time == other.time

    def __hash__(self):
        return hash((self.run, self.time))

    def __repr__(self):
        return f"Point(time={self.time}, state={self.state!r})"


def enumerate_runs(transition_system, horizon, require_admissible=True):
    """Enumerate all run prefixes of length ``horizon`` rounds.

    States without outgoing transitions repeat (stutter) to fill the horizon,
    matching the convention that a finished protocol keeps its final state
    forever.  When ``require_admissible`` is set, prefixes violating the
    context's admissibility condition are dropped.
    """
    context = transition_system.context
    results = []

    def extend(run):
        if len(run) == horizon:
            if not require_admissible or context.is_admissible(run.states):
                results.append(run)
            return
        successors = transition_system.successors(run.states[-1])
        if not successors:
            extend(run.extend(None, run.states[-1]))
            return
        for joint_action, target in successors:
            extend(run.extend(joint_action, target))

    for initial in transition_system.initial_states:
        if initial in transition_system:
            extend(Run((initial,), ()))
    return results


def enumerate_points(transition_system, horizon, require_admissible=True):
    """Enumerate all points of all run prefixes up to ``horizon`` rounds."""
    points = []
    for run in enumerate_runs(transition_system, horizon, require_admissible):
        points.extend(run.points())
    return points
