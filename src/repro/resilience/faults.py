"""Deterministic fault injection at the engine's instrumented hook points.

The obs layer already names every interesting moment of a computation —
``bdd.unique_growth``, ``bdd.cache_clear``, ``bdd.gc``, ``bdd.reorder``,
``construct.round``, ``fixpoint.iter``, ``evaluator.batch``, ... — and its
sinks run *synchronously inside the emitting call site*, so a sink that
raises interrupts the engine exactly where the record was produced.  A
:class:`FaultInjector` exploits that: it installs itself as an obs sink,
counts occurrences per site name, and performs a scheduled *action* at the
chosen occurrence:

``"raise"``
    raise :class:`InjectedFault` out of the hook point (the default, and
    the interesting one: it probes exception-safety);
``"cache_clear"``
    drop the operation caches of every live BDD manager mid-computation
    (must be invisible: clears only force recomputation);
``"reorder_request"``
    set the reorder-pending flag on every reorder-enabled manager, forcing
    a sift at the next safe point.

Two hook points are too structural to route through obs records:
``bdd.swap`` fires via the explicit :func:`fire` hook between elementary
level swaps inside ``BDD._swap_levels`` (so an injected raise lands
mid-sift, the case ``reorder()`` must survive), guarded by the module-level
:data:`ARMED` flag at zero cost while no injector is installed.

Everything is seeded and deterministic: :func:`seeded_plan` derives a
reproducible schedule from an integer seed (CI uses the run number), and a
plan's trigger occurrences depend only on the workload, never on wall
time.  The chaos suite (``tests/test_chaos.py``) runs workloads under
injection and asserts :func:`check_kernel_invariants` afterwards.
"""

import random

from repro.obs import registry as _registry

__all__ = [
    "ARMED",
    "FaultInjector",
    "InjectedFault",
    "SITES",
    "check_kernel_invariants",
    "fire",
    "seeded_plan",
    "suppressed",
]

ARMED = False
"""True while at least one injector is installed; the explicit fault
points (``BDD._swap_levels``) guard their :func:`fire` call with it."""

_INJECTORS = []
_SUPPRESS = 0

SITES = (
    "bdd.unique_growth",
    "bdd.cache_clear",
    "bdd.gc",
    "bdd.reorder",
    "bdd.swap",
    "construct.round",
    "fixpoint.iter",
    "fixpoint",
    "evaluator.batch",
    "synthesis.candidate",
    "spec.fuzz.check",
)
"""The registered injection sites: the obs hook-point names the engine
emits plus the explicit kernel hooks.  (A site only triggers on workloads
that actually reach it.)"""


class InjectedFault(Exception):
    """The deliberate failure an injector raises at a scheduled site.

    Deliberately *not* a :class:`~repro.util.errors.ReproError`: library
    code that catches its own error classes for recovery must not mistake
    an injected crash for a condition it knows how to handle.
    """

    def __init__(self, site, occurrence):
        super().__init__(f"injected fault at {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence


class suppressed:
    """Disable every installed injector for the body — used by recovery
    code (``BDD._repair_group_adjacency``) that must not be re-injected."""

    def __enter__(self):
        global _SUPPRESS
        _SUPPRESS += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        global _SUPPRESS
        _SUPPRESS -= 1
        return False


def fire(site):
    """The explicit hook-point entry: notify every installed injector that
    ``site`` was reached (no-op while nothing is armed or suppression is
    active)."""
    for injector in _INJECTORS:
        injector.observe(site)


def seeded_plan(seed, sites=SITES, faults=1, max_occurrence=25, actions=("raise",)):
    """A deterministic fault schedule from an integer seed.

    Picks ``faults`` (site, occurrence, action) triples with occurrences in
    ``[1, max_occurrence]``; the same seed always yields the same schedule.
    Returns a list of triples, ready for :class:`FaultInjector`.
    """
    rng = random.Random(seed)
    plan = []
    for _ in range(faults):
        site = rng.choice(list(sites))
        occurrence = rng.randint(1, max_occurrence)
        action = rng.choice(list(actions))
        plan.append((site, occurrence, action))
    return plan


class FaultInjector:
    """Install a fault schedule over the engine's hook points.

    ``plan`` is an iterable of ``(site, occurrence, action)`` triples: at
    the ``occurrence``-th time ``site`` is reached, perform ``action``.
    Used as a context manager::

        with FaultInjector([("bdd.swap", 7, "raise")]) as chaos:
            with pytest.raises(InjectedFault):
                workload()
        assert chaos.fired

    The injector doubles as an obs sink, so installing it flips obs on —
    occurrence counts include every record whose ``name`` matches a site,
    which is deterministic for a fixed workload.  ``counts`` exposes the
    per-site occurrence counters and ``fired`` the log of performed
    actions.
    """

    def __init__(self, plan):
        self.schedule = {}
        for site, occurrence, action in plan:
            self.schedule.setdefault(site, {})[occurrence] = action
        self.counts = {}
        self.fired = []

    # -- obs sink interface ------------------------------------------------------------

    def emit(self, record):
        self.observe(record["name"])

    def observe(self, site):
        if _SUPPRESS:
            return
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        action = self.schedule.get(site, {}).get(count)
        if action is not None:
            self._perform(site, count, action)

    def _perform(self, site, occurrence, action):
        self.fired.append((site, occurrence, action))
        if action == "raise":
            raise InjectedFault(site, occurrence)
        if action == "cache_clear":
            for manager in _registry.live_managers():
                if hasattr(manager, "clear_operation_caches"):
                    manager.clear_operation_caches()
        elif action == "reorder_request":
            for manager in _registry.live_managers():
                if getattr(manager, "reorder_enabled", False):
                    manager._reorder_pending = True
        else:
            raise ValueError(f"unknown fault action {action!r}")

    # -- installation ------------------------------------------------------------------

    def __enter__(self):
        global ARMED
        from repro import obs as _obs

        _INJECTORS.append(self)
        ARMED = True
        _obs.add_sink(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        global ARMED
        from repro import obs as _obs

        _obs.remove_sink(self)
        try:
            _INJECTORS.remove(self)
        except ValueError:
            pass
        ARMED = bool(_INJECTORS)
        return False


def check_kernel_invariants(bdd):
    """Assert the structural invariants of a BDD manager; returns a small
    stats dict on success, raises ``AssertionError`` naming the violation.

    Checked after every injected failure by the chaos suite:

    - the node arrays agree in length and the terminals are intact;
    - ``_var2level`` / ``_level2var`` are inverse permutations;
    - every unique-table entry's key matches its node's current triple;
    - every table node is reduced and its children test strictly deeper
      levels and are themselves terminals or live table entries;
    - the operation caches only reference valid (non-purged) nodes;
    - no reorder is marked in flight and its transient structures are torn
      down; a pending request implies the trigger is armed.
    """
    n = len(bdd._var)
    assert len(bdd._low) == n and len(bdd._high) == n, "node arrays disagree in length"
    assert bdd._var[0] == bdd.num_vars and bdd._var[1] == bdd.num_vars, "terminals corrupted"
    size = bdd.num_vars + 1
    assert sorted(bdd._var2level) == list(range(size)), "_var2level is not a permutation"
    assert sorted(bdd._level2var) == list(range(size)), "_level2var is not a permutation"
    for var in range(size):
        assert bdd._level2var[bdd._var2level[var]] == var, (
            f"_var2level/_level2var disagree at variable {var}"
        )
    live = set(bdd._unique.values())
    v2l = bdd._var2level
    for key, u in bdd._unique.items():
        assert 1 < u < n, f"unique entry {key!r} -> invalid node id {u}"
        triple = (bdd._var[u], bdd._low[u], bdd._high[u])
        assert key == triple, f"unique key {key!r} does not match node {u} triple {triple!r}"
        var, low, high = triple
        assert low != high, f"node {u} is not reduced"
        for child in (low, high):
            assert child <= 1 or child in live, f"node {u} points at purged node {child}"
            assert v2l[bdd._var[child]] > v2l[var], (
                f"node {u} violates the order invariant via child {child}"
            )
    for cache_name, cache in (("ite", bdd._ite_cache), ("op", bdd._op_cache)):
        for value in cache.values():
            if isinstance(value, int) and cache_name == "ite":
                assert value <= 1 or value in live, (
                    f"{cache_name} cache holds purged node {value}"
                )
    assert not bdd._in_reorder, "manager left marked in-reorder"
    assert bdd._live_ref is None, "reorder live-ref table not torn down"
    assert bdd._var_nodes is None, "reorder variable index not torn down"
    if bdd._reorder_pending:
        assert bdd._auto_trigger is not None, "pending reorder with no armed trigger"
    if bdd._group_order is not None:
        for group in bdd._group_order:
            levels = sorted(bdd._var2level[var] for var in group)
            assert levels == list(range(levels[0], levels[0] + len(group))), (
                f"keep-group {group!r} is split across levels {levels!r}"
            )
    return {"nodes": n - 2, "live": len(live)}
