"""Resource governance: budgets, cancellation, and graceful degradation.

Knowledge-based program interpretation is not guaranteed to terminate or
stabilise — the paper's fixed-point semantics admits programs with no (or
many) implementations, and a symbolic fixed point can blow up the BDD
unique table long before it converges.  This module bounds every
long-running computation in the engine with a cooperative :class:`Budget`:

* a **wall-clock deadline** (``wall_seconds``),
* a **BDD node ceiling** (``node_limit``, live unique-table entries),
* a **fixed-point iteration ceiling** (``max_iterations``),
* an optional **cancellation token** (:class:`CancellationToken`).

A budget is installed as a context manager (ambient, per thread) or passed
as a per-call ``budget=`` keyword to the governed entry points
(``construct_by_rounds``, ``iterate_interpretation``, the CTLK checkers,
the synthesis search, the spec fuzzer)::

    from repro import resilience

    with resilience.Budget(wall_seconds=10.0, node_limit=200_000):
        result = construct_by_rounds(program, model)

Checks run cooperatively at the *safe points* the obs layer already
instruments — BDD unique-table growth, every ``fixpoint.iter`` /
``construct.round`` boundary, evaluator batches, the synthesis candidate
loop — and raise :class:`~repro.util.errors.BudgetExceededError` carrying
structured diagnostics *and the partial result* (a
:class:`PartialProgress`), so callers can degrade instead of losing
everything: the interpretation loops accept the partial back through their
``resume=`` argument and continue to the identical fixed point.

Mitigation ladder
-----------------

A node-ceiling hit does not give up immediately.  At the next safe point
the budget climbs a ladder, emitting a ``resilience.mitigate`` obs event
per rung:

1. **rooted sift reorder** — when the governed loop can enumerate its live
   roots, a reorder both compacts the diagram and garbage-collects
   unreachable nodes; if the table drops back under the ceiling, the
   computation simply continues (and the ladder re-arms);
2. **operation-cache clear** — frees the memo tables' memory and gives the
   loop one more round;
3. **raise** ``BudgetExceededError(reason="nodes")`` with the partial
   result.  ``construct_by_rounds`` adds a fourth rung above the raise:
   when the model's universe is enumerable, it falls back from the
   symbolic to the explicit backend and re-runs under the same budget.

Near-zero cost when disabled
----------------------------

Mirroring :mod:`repro.obs`, the module-level :data:`ACTIVE` flag is false
until a budget is installed; governed loops guard their per-iteration
bookkeeping behind it, and the kernel's per-node check is one attribute
load and an ``is None`` branch.

Environmental activation: ``REPRO_BUDGET_DEADLINE`` (seconds),
``REPRO_BUDGET_NODES`` and ``REPRO_BUDGET_ITERATIONS`` install a global
ambient budget at import time, so any entry point (pytest, benchmarks,
``python -m repro.spec``) runs governed without code changes — this is
what the budget-armed CI leg uses.
"""

import os
import threading
import time

from repro import obs as _obs
from repro.obs import registry as _registry
from repro.util.errors import BudgetExceededError, EngineError

__all__ = [
    "ACTIVE",
    "Budget",
    "CancellationToken",
    "PartialProgress",
    "activate",
    "current_budget",
    "rooted_reorder",
]

ACTIVE = False
"""True while at least one budget is installed (any thread).  Governed
loops read this directly (``if resilience.ACTIVE: ...``) so the disabled
cost of a safe point is one attribute load and a branch."""

DEFAULT_CHECK_INTERVAL = 1024
"""How many freshly allocated BDD nodes may pass between two kernel-level
deadline checks (the node ceiling itself is exact up to this granularity)."""

DEFAULT_NODE_SLACK = 2.0
"""Multiplier above ``node_limit`` at which the *kernel* raises mid-operation.
Between the soft ceiling and this hard ceiling only loop safe points act,
giving the mitigation ladder room to run at a point where no kernel
recursion is in flight."""

_LOCAL = threading.local()


def _stack():
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_budget():
    """The innermost installed budget of this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


class CancellationToken:
    """A thread-safe cancellation flag a budget can watch.

    The owner (a server request handler, a signal handler, another thread)
    calls :meth:`cancel`; every governed loop holding a budget with this
    token raises ``BudgetExceededError(reason="cancelled")`` at its next
    safe point.  Cancellation is level-triggered and permanent.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self):
        self._event.set()

    @property
    def cancelled(self):
        return self._event.is_set()

    def __repr__(self):
        return f"CancellationToken(cancelled={self.cancelled})"


class PartialProgress:
    """The progress a governed loop had made when its budget fired.

    ``kind`` names the producing loop (``"construct_by_rounds_symbolic"``,
    ``"iterate_interpretation"``, ...); the remaining keyword arguments are
    loop-specific state, readable both as attributes and through the
    ``state`` dict.  Loops accept their own partials back via ``resume=``
    and continue from them — node ids referenced by a symbolic partial stay
    valid because they live in the model's manager, whose unique table is
    never cleared.
    """

    def __init__(self, kind, **state):
        self.kind = kind
        self.state = dict(state)
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self):
        inner = ", ".join(f"{name}={value!r}" for name, value in self.state.items())
        return f"PartialProgress({self.kind!r}, {inner})"


def rooted_reorder(manager, roots, groups=None):
    """Run a rooted sift as a mitigation step and return ``(before, after)``.

    When the manager has no keep-groups declared yet (models built with
    reordering off never declare them), ``groups`` — typically the
    encoding's interleaved current/primed pairs — is declared first so the
    sift cannot break the order-preservation of the prime renames.
    """
    if groups is not None and manager.variable_groups() is None:
        manager.declare_groups(groups)
    return manager.reorder(list(roots))


def _resolve(value):
    """Partials/roots/groups may be supplied lazily as callables."""
    return value() if callable(value) else value


class Budget:
    """A cooperative resource budget for the engine's long-running loops.

    Parameters
    ----------
    wall_seconds:
        Wall-clock allowance.  The deadline starts at the first
        installation (``with budget:`` or the first governed call the
        budget is passed to) and spans the budget's whole lifetime —
        re-entering does not reset it.
    node_limit:
        Ceiling on the *live* unique-table entries of every governed BDD
        manager.  Crossing it at a loop safe point climbs the mitigation
        ladder; crossing ``node_limit * node_slack`` raises from inside the
        kernel (the table stays consistent — the node that crossed the line
        is fully inserted first).
    max_iterations:
        Ceiling on the iteration count of any single governed fixed-point
        loop (construction rounds, CTLK iterates, evaluator batches).
    token:
        A :class:`CancellationToken` checked at every safe point.
    mitigate:
        Whether the node-ceiling ladder (reorder, cache clear, explicit
        fallback) may run before the raise.  ``False`` raises immediately.
    """

    def __init__(
        self,
        wall_seconds=None,
        node_limit=None,
        max_iterations=None,
        token=None,
        mitigate=True,
        node_slack=DEFAULT_NODE_SLACK,
        check_interval=DEFAULT_CHECK_INTERVAL,
    ):
        if wall_seconds is not None and wall_seconds <= 0:
            raise EngineError("wall_seconds must be a positive duration")
        if node_limit is not None and node_limit < 1:
            raise EngineError("node_limit must be a positive node count")
        if max_iterations is not None and max_iterations < 1:
            raise EngineError("max_iterations must be a positive iteration count")
        if node_slack < 1.0:
            raise EngineError("node_slack must be >= 1.0")
        self.wall_seconds = wall_seconds
        self.node_limit = node_limit
        self.max_iterations = max_iterations
        self.token = token
        self.mitigate = mitigate
        self.node_slack = node_slack
        self.check_interval = check_interval
        self.deadline = None
        self.hard_node_limit = (
            int(node_limit * node_slack) if node_limit is not None else None
        )
        self._mitigated = {}  # manager id -> set of ladder rungs already tried

    # -- installation ------------------------------------------------------------------

    def __enter__(self):
        global ACTIVE
        self._start_clock()
        _stack().append(self)
        ACTIVE = True
        self._arm_managers(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        global ACTIVE
        stack = _stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        ACTIVE = bool(stack)
        self._arm_managers(stack[-1] if stack else None)
        return False

    def _start_clock(self):
        if self.wall_seconds is not None and self.deadline is None:
            self.deadline = time.perf_counter() + self.wall_seconds

    def _arm_managers(self, budget):
        for manager in _registry.live_managers():
            _arm_manager(manager, budget)

    # -- state -------------------------------------------------------------------------

    @property
    def cancelled(self):
        return self.token is not None and self.token.cancelled

    @property
    def expired(self):
        return self.deadline is not None and time.perf_counter() > self.deadline

    def remaining(self):
        """Seconds left before the deadline (``None`` without one)."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def _diagnostics(self, manager=None, iterations=None):
        info = {
            "wall_seconds": self.wall_seconds,
            "remaining": self.remaining(),
            "node_limit": self.node_limit,
            "max_iterations": self.max_iterations,
        }
        if iterations is not None:
            info["iterations"] = iterations
        if manager is not None:
            info["live_nodes"] = len(manager._unique)
            info["mitigation_tried"] = sorted(self._mitigated.get(id(manager), ()))
        return info

    def _raise(self, reason, site, *, manager=None, iterations=None, partial=None):
        messages = {
            "deadline": f"wall-clock budget of {self.wall_seconds}s exhausted",
            "cancelled": "computation cancelled",
            "iterations": f"iteration budget of {self.max_iterations} exhausted",
            "nodes": f"BDD node budget of {self.node_limit} exhausted",
        }
        if _obs.ENABLED:
            _obs.event("resilience.exceeded", reason=reason, site=site)
        raise BudgetExceededError(
            f"{messages[reason]} at {site}",
            reason=reason,
            site=site,
            diagnostics=self._diagnostics(manager=manager, iterations=iterations),
            partial=_resolve(partial),
        )

    # -- the check protocol ------------------------------------------------------------

    def tick(
        self,
        site,
        *,
        iterations=None,
        manager=None,
        roots=None,
        groups=None,
        partial=None,
    ):
        """The loop-level safe-point check.

        ``site`` is the obs hook-point name of the caller.  ``iterations``
        is the loop's own counter (checked against ``max_iterations``);
        ``manager`` the BDD manager whose live size the node ceiling
        governs; ``roots``/``groups`` (values or thunks) enable the
        reorder rung of the mitigation ladder; ``partial`` (value or
        thunk) is attached to any raise.
        """
        if self.token is not None and self.token.cancelled:
            self._raise("cancelled", site, manager=manager, partial=partial)
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self._raise("deadline", site, manager=manager, partial=partial)
        if (
            self.max_iterations is not None
            and iterations is not None
            and iterations >= self.max_iterations
        ):
            self._raise(
                "iterations", site, manager=manager, iterations=iterations, partial=partial
            )
        if (
            self.node_limit is not None
            and manager is not None
            and len(manager._unique) > self.node_limit
        ):
            self._node_pressure(site, manager, roots, groups, partial)

    def _node_pressure(self, site, manager, roots, groups, partial):
        """Climb the mitigation ladder; raise when it is exhausted."""
        tried = self._mitigated.setdefault(id(manager), set())
        if self.mitigate and roots is not None and "reorder" not in tried:
            tried.add("reorder")
            before = len(manager._unique)
            if _obs.ENABLED:
                _obs.event(
                    "resilience.mitigate", step="reorder", site=site, nodes=before
                )
            rooted_reorder(manager, _resolve(roots), _resolve(groups))
            if len(manager._unique) <= self.node_limit:
                # Recovered: the ladder re-arms for the next pressure episode.
                tried.clear()
                if _obs.ENABLED:
                    _obs.event(
                        "resilience.recovered",
                        step="reorder",
                        site=site,
                        nodes=len(manager._unique),
                    )
            return
        if self.mitigate and "cache_clear" not in tried:
            tried.add("cache_clear")
            if _obs.ENABLED:
                _obs.event(
                    "resilience.mitigate",
                    step="cache_clear",
                    site=site,
                    nodes=len(manager._unique),
                )
            manager.clear_operation_caches()
            return  # one grace round; still over the ceiling next tick -> raise
        self._raise("nodes", site, manager=manager, partial=partial)

    def _kernel_check(self, manager):
        """The kernel-level check, called from ``BDD._node`` every
        ``check_interval`` fresh allocations.  Never fires during a reorder
        (a raise between level swaps is exactly what the safe-point
        protocol exists to avoid); the surrounding loop re-checks at its
        next boundary.
        """
        manager._budget_check_at = len(manager._var) + self.check_interval
        if manager._in_reorder:
            return
        if self.token is not None and self.token.cancelled:
            self._raise("cancelled", "bdd.unique_growth", manager=manager)
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self._raise("deadline", "bdd.unique_growth", manager=manager)
        if (
            self.hard_node_limit is not None
            and len(manager._unique) > self.hard_node_limit
        ):
            self._raise("nodes", "bdd.unique_growth", manager=manager)

    def __repr__(self):
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall_seconds={self.wall_seconds}")
        if self.node_limit is not None:
            parts.append(f"node_limit={self.node_limit}")
        if self.max_iterations is not None:
            parts.append(f"max_iterations={self.max_iterations}")
        if self.token is not None:
            parts.append(f"token={self.token!r}")
        return f"Budget({', '.join(parts)})"


class activate:
    """Resolve a per-call ``budget=`` argument against the ambient stack.

    ``with activate(budget) as bud:`` installs ``budget`` for the body when
    one is given (so nested calls and the kernel see it) and yields the
    effective budget — the explicit one, else the innermost ambient one,
    else ``None``.  This is the standard prologue of every governed entry
    point; with no budget anywhere it allocates one object and touches one
    thread-local.
    """

    __slots__ = ("_budget", "_installed")

    def __init__(self, budget=None):
        self._budget = budget
        self._installed = False

    def __enter__(self):
        if self._budget is not None:
            self._budget.__enter__()
            self._installed = True
            return self._budget
        return current_budget()

    def __exit__(self, exc_type, exc, tb):
        if self._installed:
            return self._budget.__exit__(exc_type, exc, tb)
        return False


def _arm_manager(manager, budget):
    """Point a manager's kernel hook at ``budget`` (or disarm with None)."""
    try:
        if budget is None:
            manager._budget = None
        else:
            manager._budget = budget
            manager._budget_check_at = len(manager._var)
    except AttributeError:  # a foreign manager-like object; nothing to arm
        pass


@_registry.add_register_hook
def _on_new_manager(manager):
    # Managers created inside an installed budget's scope are governed too.
    if ACTIVE:
        _arm_manager(manager, current_budget())


def _configure_from_env():
    """Honour ``REPRO_BUDGET_DEADLINE`` / ``REPRO_BUDGET_NODES`` /
    ``REPRO_BUDGET_ITERATIONS``: install a global ambient budget at import,
    never popped — the process-wide governor the budget-armed CI leg uses."""
    deadline = os.environ.get("REPRO_BUDGET_DEADLINE")
    nodes = os.environ.get("REPRO_BUDGET_NODES")
    iterations = os.environ.get("REPRO_BUDGET_ITERATIONS")
    if not (deadline or nodes or iterations):
        return None
    budget = Budget(
        wall_seconds=float(deadline) if deadline else None,
        node_limit=int(nodes) if nodes else None,
        max_iterations=int(iterations) if iterations else None,
    )
    return budget.__enter__()


_ENV_BUDGET = _configure_from_env()
