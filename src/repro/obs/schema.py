"""The trace-record schema and its validator.

One record is one JSON object; a JSONL trace is one record per line.  All
kinds share ``kind`` (one of :data:`KINDS`), ``name`` (a non-empty dotted
string) and ``ts`` (seconds since process start, a non-negative number).
Kind-specific fields:

======== ==========================================================
kind      fields
======== ==========================================================
span      ``dur`` ≥ 0, ``self`` in ``[0, dur]``, ``depth`` ≥ 0,
          optional ``attrs`` (object), optional ``error`` (string)
counter   ``value`` (number), optional ``attrs``
gauge     ``value`` (number), optional ``attrs``
event     optional ``attrs``
======== ==========================================================

The CI trace leg runs ``python -m repro.obs trace.jsonl --validate``,
which applies :func:`validate_record` to every line and fails on the
first violation; ``tests/test_obs.py`` exercises the same checks on a
generated trace.
"""

import json

__all__ = ["KINDS", "validate_record", "validate_trace_file", "validate_trace_lines"]

KINDS = ("span", "counter", "gauge", "event")

_COMMON_FIELDS = {"kind", "name", "ts", "attrs"}
_EXTRA_FIELDS = {
    "span": {"dur", "self", "depth", "error"},
    "counter": {"value"},
    "gauge": {"value"},
    "event": set(),
}


def _fail(message, record):
    raise ValueError(f"{message}: {record!r}")


def _check_number(record, field, minimum=None):
    value = record.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(f"field {field!r} must be a number", record)
    if minimum is not None and value < minimum:
        _fail(f"field {field!r} must be >= {minimum}", record)
    return value


def validate_record(record):
    """Check one record against the schema; raises :class:`ValueError` on
    the first violation and returns the record otherwise."""
    if not isinstance(record, dict):
        _fail("record must be an object", record)
    kind = record.get("kind")
    if kind not in KINDS:
        _fail(f"unknown kind {kind!r}", record)
    name = record.get("name")
    if not isinstance(name, str) or not name:
        _fail("field 'name' must be a non-empty string", record)
    _check_number(record, "ts", minimum=0)
    allowed = _COMMON_FIELDS | _EXTRA_FIELDS[kind]
    unknown = set(record) - allowed
    if unknown:
        _fail(f"unknown fields {sorted(unknown)} for kind {kind!r}", record)
    if "attrs" in record and not isinstance(record["attrs"], dict):
        _fail("field 'attrs' must be an object", record)
    if kind == "span":
        dur = _check_number(record, "dur", minimum=0)
        self_time = _check_number(record, "self", minimum=0)
        if self_time > dur + 1e-9:
            _fail("span 'self' time exceeds 'dur'", record)
        depth = record.get("depth")
        if not isinstance(depth, int) or isinstance(depth, bool) or depth < 0:
            _fail("span 'depth' must be a non-negative integer", record)
        if "error" in record and not isinstance(record["error"], str):
            _fail("span 'error' must be a string", record)
    elif kind in ("counter", "gauge"):
        _check_number(record, "value")
    return record


def validate_trace_lines(lines):
    """Validate an iterable of JSONL lines; returns the parsed records.

    Blank lines are ignored.  Raises :class:`ValueError` naming the
    offending line number on a parse or schema failure.
    """
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise ValueError(f"line {number}: not valid JSON ({error})") from None
        try:
            validate_record(record)
        except ValueError as error:
            raise ValueError(f"line {number}: {error}") from None
        records.append(record)
    return records


def validate_trace_file(path):
    """Validate the JSONL trace at ``path``; returns the parsed records."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_lines(handle)
