"""The converged metric schema behind every ``cache_info()`` surface.

Before this module each caching component named its introspection keys ad
hoc (``ite_high_water`` here, ``hits`` there, ``set_memo`` elsewhere).
The schema below fixes one dotted vocabulary; every ``cache_info()``
implementation now returns the canonical keys and — for one release —
keeps its historical names as read-only aliases via
:func:`attach_aliases`.

Canonical vocabulary
--------------------

``unique.nodes``
    Internal nodes a BDD manager has allocated (monotone: the node arrays
    never shrink, so this is also the peak allocation).
``cache.ite.size`` / ``cache.op.size``
    Current entry counts of the kernel's two operation memos.
``cache.ite.high_water`` / ``cache.op.high_water``
    Largest size each memo ever reached; survives every clear.
``cache.ite.hits`` / ``cache.ite.misses`` / ``cache.op.hits`` /
``cache.op.misses``
    Lifetime lookup accounting of the kernel memos (never reset — clears
    drop entries, not history).
``cache.hits`` / ``cache.misses``
    Lookup accounting of a non-kernel memoising component (the evaluator's
    extension cache, the CTLK checkers' formula caches).
``cache.clears``
    How often a bounded cache was dropped (overflow clears in the kernel;
    explicit ``clear_cache`` calls elsewhere).
``cache.ceiling``
    The configured entry bound (``None`` = unbounded).
``gc.passes`` / ``gc.purged``
    Rooted-reorder garbage collections run and nodes purged by them.
``reorder.enabled`` / ``reorder.pending`` / ``reorder.count`` /
``reorder.swaps`` / ``reorder.last_size`` / ``reorder.trigger``
    Dynamic-reordering state: armed?, safe-point requested?, sift passes,
    elementary level swaps, ``(before, after)`` live sizes of the last
    pass, the table size arming the next request.
``memo.*``
    Sizes of a component's memo tables: ``memo.formulas`` (evaluator and
    CTLK formula caches; ``memo.formulas.high_water`` survives
    ``clear_cache``), ``memo.frozensets``, ``memo.sets`` / ``memo.masks``
    (state-set encodings), ``memo.cubes`` / ``memo.expressions``
    (variable encodings), ``memo.relations`` (compiled per-agent
    relations).

The same table is rendered in ARCHITECTURE.md's Observability section.

BDD manager registry
--------------------

The kernel registers every :class:`~repro.symbolic.bdd.BDD` it creates
(weakly — registration never extends a manager's lifetime).
:func:`checkpoint` + :func:`bdd_metrics` let a harness ask "what did the
managers created since this point do?", which is how
``benchmarks/run_all.py`` attaches kernel metrics to every workload
without threading handles through the workloads themselves.
"""

import weakref

__all__ = [
    "SCHEMA",
    "add_register_hook",
    "attach_aliases",
    "bdd_metrics",
    "checkpoint",
    "hit_rate",
    "live_managers",
    "register_manager",
]

SCHEMA = {
    "unique.nodes": "internal nodes allocated by a BDD manager (monotone peak)",
    "cache.ite.size": "current entries in the kernel ite memo",
    "cache.op.size": "current entries in the kernel quantify/rename/count memo",
    "cache.ite.high_water": "largest ite memo size ever (survives clears)",
    "cache.op.high_water": "largest op memo size ever (survives clears)",
    "cache.ite.hits": "lifetime ite memo lookup hits",
    "cache.ite.misses": "lifetime ite memo lookup misses",
    "cache.op.hits": "lifetime op memo lookup hits",
    "cache.op.misses": "lifetime op memo lookup misses",
    "cache.hits": "lifetime lookup hits of a component's primary cache",
    "cache.misses": "lifetime lookup misses of a component's primary cache",
    "cache.clears": "times a bounded cache was dropped (overflow or explicit)",
    "cache.ceiling": "configured entry bound of the operation caches (None = unbounded)",
    "gc.passes": "rooted-reorder garbage collections run",
    "gc.purged": "nodes purged by rooted-reorder garbage collections",
    "reorder.enabled": "dynamic-reordering growth trigger armed",
    "reorder.pending": "a safe-point reorder request is outstanding",
    "reorder.count": "sift passes run",
    "reorder.swaps": "elementary level swaps run",
    "reorder.last_size": "(before, after) live node counts of the last sift",
    "reorder.trigger": "unique-table size arming the next reorder request",
    "memo.formulas": "memoised formula extensions",
    "memo.formulas.high_water": "largest formula memo ever (survives clear_cache)",
    "memo.frozensets": "memoised frozenset conversions",
    "memo.sets": "memoised world-set nodes of a state-set encoding",
    "memo.masks": "memoised mask nodes of a state-set encoding",
    "memo.cubes": "memoised quantification cubes of a variable encoding",
    "memo.expressions": "memoised compiled expressions of a variable encoding",
    "memo.relations": "compiled per-agent/transition relations cached",
}


def attach_aliases(info, aliases):
    """Add the legacy spellings to a canonical ``cache_info()`` dict.

    ``aliases`` maps canonical key → historical key; canonical keys absent
    from ``info`` are skipped.  Returns ``info`` (mutated) for chaining.
    The aliases are scheduled for removal one release after every caller
    has moved to the canonical names.
    """
    for canonical, legacy in aliases.items():
        if canonical in info:
            info[legacy] = info[canonical]
    return info


def hit_rate(hits, misses):
    """``hits / (hits + misses)`` guarded against an empty denominator."""
    total = hits + misses
    return hits / total if total else None


# -- BDD manager registry ----------------------------------------------------------------

_managers = weakref.WeakValueDictionary()
_next_serial = 0
_register_hooks = []


def add_register_hook(hook):
    """Call ``hook(manager)`` for every BDD manager registered from now on.

    This is how cross-cutting layers attach themselves to managers they did
    not create — :mod:`repro.resilience` arms new managers with the ambient
    budget through one.  Hooks must be cheap and must not raise (a manager
    under construction is not a safe place to fail); they are never removed.
    """
    _register_hooks.append(hook)
    return hook


def register_manager(manager):
    """Weakly register a BDD manager; returns its creation serial."""
    global _next_serial
    serial = _next_serial
    _next_serial += 1
    _managers[serial] = manager
    for hook in _register_hooks:
        hook(manager)
    return serial


def live_managers(since=0):
    """The live registered managers created at or after ``since`` (a
    :func:`checkpoint` value; 0 = all), in creation order."""
    return [manager for serial, manager in sorted(_managers.items()) if serial >= since]


def checkpoint():
    """An opaque marker: managers created from now on have serial >= it."""
    return _next_serial


def bdd_metrics(since=0):
    """Aggregate kernel metrics over the *live* managers created at or
    after ``since`` (a :func:`checkpoint` value; 0 = all).

    Returns a flat dict — manager count, peak/total node allocations,
    summed cache hit/miss/clear accounting, reorder and GC totals, plus
    the derived ``bdd.cache.hit_rate`` over both operation caches — or an
    empty dict when no matching manager is alive (explicit-path workloads
    never touch the kernel, so their snapshot simply has no ``bdd.*``
    keys).
    """
    infos = [
        manager.cache_info()
        for serial, manager in sorted(_managers.items())
        if serial >= since
    ]
    if not infos:
        return {}
    metrics = {
        "bdd.managers": len(infos),
        "bdd.nodes.peak": max(info["unique.nodes"] for info in infos),
        "bdd.nodes.total": sum(info["unique.nodes"] for info in infos),
    }
    for key in (
        "cache.ite.hits",
        "cache.ite.misses",
        "cache.op.hits",
        "cache.op.misses",
        "cache.clears",
        "gc.passes",
        "gc.purged",
        "reorder.count",
        "reorder.swaps",
    ):
        metrics["bdd." + key] = sum(info[key] for info in infos)
    rate = hit_rate(
        metrics["bdd.cache.ite.hits"] + metrics["bdd.cache.op.hits"],
        metrics["bdd.cache.ite.misses"] + metrics["bdd.cache.op.misses"],
    )
    if rate is not None:
        metrics["bdd.cache.hit_rate"] = round(rate, 4)
    return metrics
