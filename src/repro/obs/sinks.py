"""The bundled sinks: in-memory aggregation, JSONL streaming, Chrome traces.

A *sink* is any object with ``emit(record)`` (and optionally ``close()``);
records are the plain dicts described in :mod:`repro.obs`.  Three
implementations cover the common consumers:

- :class:`AggregateSink` — in-memory rollups for tests, benchmarks and
  programmatic use (``obs.capture()`` installs one);
- :class:`JsonlSink` — one JSON object per line, the on-disk trace format
  (``REPRO_TRACE=path`` installs one at import);
- :class:`ChromeTraceSink` — the ``chrome://tracing`` / Perfetto
  ``trace_event`` JSON format for flame-chart viewing, also reachable as a
  post-hoc conversion via :func:`chrome_trace` or
  ``python -m repro.obs trace.jsonl --chrome out.json``.

:class:`RecordingSink` keeps the raw record stream (optionally filtered by
kind) for consumers that need individual samples — per-spec fuzz timing
percentiles, schema tests.
"""

import atexit
import json

__all__ = [
    "AggregateSink",
    "ChromeTraceSink",
    "JsonlSink",
    "RecordingSink",
    "chrome_trace",
]


class AggregateSink:
    """In-memory rollups of the record stream.

    - ``counters``: name → summed value;
    - ``gauges``: name → ``{"last", "min", "max"}``;
    - ``spans``: name → ``{"count", "total", "self", "max"}`` (seconds);
    - ``events``: name → occurrence count.

    With ``keep_records=True`` the raw dicts are appended to ``records``
    too.  :meth:`snapshot` returns the whole state as one plain dict;
    :meth:`metrics` flattens it into the scalar form the benchmark harness
    embeds in ``BENCH_N.json``.
    """

    def __init__(self, keep_records=False):
        self.counters = {}
        self.gauges = {}
        self.spans = {}
        self.events = {}
        self.records = [] if keep_records else None

    def emit(self, record):
        kind = record["kind"]
        name = record["name"]
        if kind == "counter":
            self.counters[name] = self.counters.get(name, 0) + record["value"]
        elif kind == "span":
            entry = self.spans.get(name)
            if entry is None:
                entry = self.spans[name] = {"count": 0, "total": 0.0, "self": 0.0, "max": 0.0}
            entry["count"] += 1
            entry["total"] += record["dur"]
            entry["self"] += record["self"]
            entry["max"] = max(entry["max"], record["dur"])
        elif kind == "gauge":
            value = record["value"]
            entry = self.gauges.get(name)
            if entry is None:
                self.gauges[name] = {"last": value, "min": value, "max": value}
            else:
                entry["last"] = value
                entry["min"] = min(entry["min"], value)
                entry["max"] = max(entry["max"], value)
        elif kind == "event":
            self.events[name] = self.events.get(name, 0) + 1
        if self.records is not None:
            self.records.append(record)

    def snapshot(self):
        """The aggregated state as one plain (JSON-serialisable) dict."""
        return {
            "counters": dict(self.counters),
            "gauges": {name: dict(stats) for name, stats in self.gauges.items()},
            "spans": {name: dict(stats) for name, stats in self.spans.items()},
            "events": dict(self.events),
        }

    def metrics(self):
        """A flat scalar dict: counters verbatim, gauges as their max."""
        flat = dict(self.counters)
        for name, stats in self.gauges.items():
            flat[name] = stats["max"]
        return flat


class RecordingSink:
    """Keep the raw record stream (optionally only the given ``kinds``)."""

    def __init__(self, kinds=None):
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.records = []

    def emit(self, record):
        if self.kinds is None or record["kind"] in self.kinds:
            self.records.append(record)


def _json_safe(value):
    """json.dumps default hook: degrade unknown values to their repr."""
    return repr(value)


class JsonlSink:
    """Stream records to a file, one JSON object per line.

    The file is opened line-buffered so a trace survives a crashed process
    up to the last complete record.  ``path`` may also be an open text file
    (it is then not closed by :meth:`close`).  Pass ``mode="a"`` when
    several processes may share the path — O_APPEND writes land at the end
    instead of truncating each other's output (this is what the
    ``REPRO_TRACE`` hook uses, since child processes inherit the variable).
    """

    def __init__(self, path, mode="w"):
        if hasattr(path, "write"):
            self._file = path
            self._owns = False
        else:
            self._file = open(path, mode, buffering=1, encoding="utf-8")
            self._owns = True
            # Traces opened by path (notably the REPRO_TRACE import hook)
            # are flushed and closed at interpreter exit even when nobody
            # calls close() — the last buffered line of a crashed or
            # short-lived process would otherwise be lost.
            atexit.register(self.close)

    def emit(self, record):
        self._file.write(json.dumps(record, default=_json_safe) + "\n")

    def close(self):
        if self._owns and not self._file.closed:
            self._file.flush()
            self._file.close()


def chrome_trace(records):
    """Convert an iterable of obs records to a Chrome ``trace_event``
    document (a dict; dump it as JSON and load it in Perfetto or
    ``chrome://tracing``).

    Spans become complete (``"X"``) events, counters and gauges counter
    (``"C"``) samples, events instants (``"i"``).  Timestamps are
    microseconds, as the format requires.
    """
    trace = []
    totals = {}
    for record in records:
        kind = record["kind"]
        name = record["name"]
        ts = record["ts"] * 1e6
        if kind == "span":
            entry = {
                "name": name,
                "ph": "X",
                "ts": ts,
                "dur": record["dur"] * 1e6,
                "pid": 1,
                "tid": 1,
            }
            if record.get("attrs"):
                entry["args"] = record["attrs"]
            trace.append(entry)
        elif kind in ("counter", "gauge"):
            if kind == "counter":
                totals[name] = totals.get(name, 0) + record["value"]
                value = totals[name]
            else:
                value = record["value"]
            trace.append(
                {"name": name, "ph": "C", "ts": ts, "pid": 1, "tid": 1, "args": {name: value}}
            )
        elif kind == "event":
            entry = {"name": name, "ph": "i", "ts": ts, "pid": 1, "tid": 1, "s": "t"}
            if record.get("attrs"):
                entry["args"] = record["attrs"]
            trace.append(entry)
    trace.sort(key=lambda entry: entry["ts"])
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


class ChromeTraceSink:
    """Accumulate records and write a Chrome ``trace_event`` JSON file on
    :meth:`close` (the format is a single document, not a stream)."""

    def __init__(self, path):
        self._path = path
        self._records = []

    def emit(self, record):
        self._records.append(record)

    def close(self):
        with open(self._path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(self._records), handle, default=_json_safe)
