"""Unified instrumentation: spans, counters, gauges and structured events.

Every layer of the engine — the ROBDD kernel, the world-set backends, the
evaluator, the fixed-point loops of construction/CTLK/synthesis, the spec
lowerings — emits telemetry through this one module.  The core is a tiny
pub/sub fan-out: producers call :func:`span`, :func:`counter`,
:func:`gauge` or :func:`event`; consumers register *sinks*
(:mod:`repro.obs.sinks`) that receive each record as a plain dict.

Near-zero cost when disabled
----------------------------

Instrumentation is off unless at least one sink is installed.  The
module-level :data:`ENABLED` flag tracks that, and every emitting helper
returns immediately when it is false — :func:`span` hands back a shared
no-op context manager, the scalar helpers return before building a record.
Hot loops guard their call sites with ``if obs.ENABLED:`` so the disabled
cost is one attribute load and a branch; the ultra-hot kernel counters
(op-cache hits/misses) bypass the event stream entirely and live as plain
integers surfaced through ``cache_info()`` (see :mod:`repro.obs.registry`
for the converged metric schema).

Records
-------

Four record kinds flow to sinks, all JSON-serialisable dicts sharing
``kind``, ``name`` and ``ts`` (seconds since process start, monotonic):

``span``
    A closed timer: ``dur`` (wall seconds), ``self`` (``dur`` minus the
    time spent in child spans on the same thread), ``depth`` (nesting depth
    at emission), optional ``attrs`` and — when the body raised — the
    exception type under ``error``.  Spans are emitted *on exit*, so a
    trace lists children before their parents; ``ts``/``dur`` recover the
    tree.
``counter``
    A monotonic increment: ``value`` (default 1).  Aggregators sum them.
``gauge``
    A sampled level: ``value``.  Aggregators keep last/min/max.
``event``
    A point-in-time structured fact with free-form ``attrs``.

:mod:`repro.obs.schema` validates the shapes; ``python -m repro.obs``
summarises a JSONL trace of them.

Activation
----------

Programmatic: :func:`add_sink` / :func:`remove_sink`, or the
:func:`capture` context manager, which installs a fresh
:class:`~repro.obs.sinks.AggregateSink` for the duration of a block::

    from repro import obs

    with obs.capture() as agg:
        run_workload()
    print(agg.counters["construct.rounds"])

Environmental: setting ``REPRO_TRACE=/path/to/trace.jsonl`` before the
process starts installs a :class:`~repro.obs.sinks.JsonlSink` at import
time, so any entry point (pytest, benchmarks, ``python -m repro.spec``)
streams a trace without code changes.
"""

import os
import threading
import time

__all__ = [
    "ENABLED",
    "add_sink",
    "capture",
    "counter",
    "enabled",
    "event",
    "gauge",
    "installed_sinks",
    "remove_sink",
    "span",
]

ENABLED = False
"""True while at least one sink is installed.  Hot call sites read this
directly (``if obs.ENABLED: obs.event(...)``) so the disabled cost of an
instrumentation point is one attribute load and a branch."""

_ORIGIN = time.perf_counter()
_SINKS = []
_LOCAL = threading.local()


def enabled():
    """Whether any sink is installed (the function form of :data:`ENABLED`)."""
    return ENABLED


def installed_sinks():
    """The currently installed sinks, in installation order.  (Named to
    avoid colliding with the :mod:`repro.obs.sinks` submodule attribute.)"""
    return tuple(_SINKS)


def add_sink(sink):
    """Install ``sink`` (any object with an ``emit(record)`` method) and
    return it.  Installing the first sink flips :data:`ENABLED` on."""
    global ENABLED
    _SINKS.append(sink)
    ENABLED = True
    return sink


def remove_sink(sink):
    """Remove ``sink``; removing the last one flips :data:`ENABLED` off.
    Unknown sinks are ignored (removal is idempotent)."""
    global ENABLED
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass
    ENABLED = bool(_SINKS)


def _emit(record):
    for sink in _SINKS:
        sink.emit(record)


def _stack():
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class _NoopSpan:
    """The shared do-nothing span handed out while instrumentation is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "_start", "_child")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        _stack().append(self)
        self._child = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = time.perf_counter()
        stack = _stack()
        # Exception-safe unwind: even if an inner span leaked (its __exit__
        # never ran), pop down to and including this frame so depths stay
        # coherent for the rest of the thread.
        while stack:
            top = stack.pop()
            if top is self:
                break
        duration = end - self._start
        if stack:
            stack[-1]._child += duration
        record = {
            "kind": "span",
            "name": self.name,
            "ts": self._start - _ORIGIN,
            "dur": duration,
            "self": max(0.0, duration - self._child),
            "depth": len(stack),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        _emit(record)
        return False


def span(name, **attrs):
    """A context manager timing its body as a named span.

    Nested spans (per thread) accumulate child time into their parent so
    sinks can report *self* time; an exception propagates unchanged but is
    recorded on the span under ``error``.  While disabled this returns a
    shared no-op object and allocates nothing.
    """
    if not ENABLED:
        return _NOOP_SPAN
    return _Span(name, attrs)


def counter(name, value=1, **attrs):
    """Record a monotonic increment of ``value`` on counter ``name``."""
    if not ENABLED:
        return
    record = {"kind": "counter", "name": name, "ts": time.perf_counter() - _ORIGIN, "value": value}
    if attrs:
        record["attrs"] = attrs
    _emit(record)


def gauge(name, value, **attrs):
    """Record a sampled level ``value`` for gauge ``name``."""
    if not ENABLED:
        return
    record = {"kind": "gauge", "name": name, "ts": time.perf_counter() - _ORIGIN, "value": value}
    if attrs:
        record["attrs"] = attrs
    _emit(record)


def event(name, **attrs):
    """Record a point-in-time structured event with free-form ``attrs``."""
    if not ENABLED:
        return
    record = {"kind": "event", "name": name, "ts": time.perf_counter() - _ORIGIN}
    if attrs:
        record["attrs"] = attrs
    _emit(record)


class capture:
    """Install a fresh :class:`~repro.obs.sinks.AggregateSink` for a block.

    ``with obs.capture() as agg:`` enables instrumentation for the body and
    yields the aggregator; on exit the sink is removed (other sinks are
    untouched) and its snapshot stays readable.  Pass ``keep_records=True``
    to retain the raw record stream on ``agg.records`` as well.
    """

    def __init__(self, keep_records=False):
        from repro.obs.sinks import AggregateSink

        self.sink = AggregateSink(keep_records=keep_records)

    def __enter__(self):
        add_sink(self.sink)
        return self.sink

    def __exit__(self, exc_type, exc, tb):
        remove_sink(self.sink)
        return False


def _configure_from_env():
    """Honour ``REPRO_TRACE=path``: stream every record to a JSONL file."""
    path = os.environ.get("REPRO_TRACE")
    if path:
        from repro.obs.sinks import JsonlSink

        # Append mode: the variable is inherited by child processes (e.g.
        # subprocess-based tests), which must not truncate the parent's
        # stream mid-write.
        add_sink(JsonlSink(path, mode="a"))


_configure_from_env()
